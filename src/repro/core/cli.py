"""``python -m repro gil`` — the GIL ablation, live.

Runs the cpu-bound and io-bound microworkloads on the simulated machine
with and without the interpreter lock, prints the speedup contrast and
the convoy-effect timeline, and (with ``--probe``) reports which *real*
executor backends this host can run. ``--chrome OUT.json`` exports the
GIL-mode run — holder spans on the GIL lane, hand-off instants — for
the trace viewer.
"""

from __future__ import annotations

from repro.core.machine import GilConfig, IoWait, SimMachine, SyncCosts, Work

USAGE = """\
usage: python -m repro gil [--threads N] [--switch-interval CYCLES]
                           [--acquire-cost CYCLES] [--probe]
                           [--chrome OUT.json]

Runs cpu-bound and io-bound workloads under the simulated interpreter
lock and without it, printing the speedup contrast (the GIL ablation,
bench E19) and the convoy-effect timeline.

  --threads N          thread count for the ablation (default 4)
  --switch-interval C  simulated sys.setswitchinterval, in cycles
                       (default 100)
  --acquire-cost C     cycles charged per lock hand-off (default 5)
  --probe              also print the real-backend capability table
                       for this host
  --chrome OUT.json    export the GIL-mode convoy run as a Chrome
                       trace (holder spans + hand-off instants)"""

FREE = SyncCosts(lock=0, unlock=0, barrier=0, cond=0, sem=0, spawn=0)


def _cpu(n: float):
    yield Work(n)


def _io(rounds: int, work: float, wait: float):
    for _ in range(rounds):
        yield Work(work)
        yield IoWait(wait)


def _makespan(n_threads: int, body, args: tuple, *,
              gil: GilConfig | None, recorder=None) -> SimMachine:
    machine = SimMachine(n_threads, costs=FREE, gil=gil, recorder=recorder)
    for _ in range(n_threads):
        machine.spawn(body, *args)
    machine.run()
    return machine


def _ablation(threads: int, gil: GilConfig) -> list[str]:
    lines = [f"microworkload ablation at {threads} threads "
             f"(interval={gil.switch_interval_cycles:g}, "
             f"acquire={gil.acquire_cost:g} cycles):", ""]
    work = 10_000.0
    serial_cpu = work * threads
    rows = []
    for label, body, args, serial in [
            ("cpu-bound", _cpu, (work,), serial_cpu),
            ("io-bound", _io, (4, 100.0, 2000.0),
             (100.0 + 2000.0) * 4 * threads)]:
        with_gil = _makespan(threads, body, args, gil=gil)
        without = _makespan(threads, body, args, gil=None)
        rows.append((label, serial, with_gil.makespan, without.makespan))
    lines.append(f"  {'workload':<11} {'serial':>10} {'gil':>10} "
                 f"{'no-gil':>10} {'gil speedup':>12} {'no-gil':>8}")
    for label, serial, gil_ms, nogil_ms in rows:
        lines.append(f"  {label:<11} {serial:>10.0f} {gil_ms:>10.0f} "
                     f"{nogil_ms:>10.0f} {serial / gil_ms:>11.2f}x "
                     f"{serial / nogil_ms:>7.2f}x")
    lines.append("")
    lines.append("  cpu-bound threads serialize on the lock (speedup ~1x);")
    lines.append("  io-bound threads overlap because blocking I/O "
                 "releases it.")
    return lines


def _convoy(gil: GilConfig, recorder=None) -> tuple[list[str], SimMachine]:
    machine = SimMachine(2, costs=FREE, gil=gil, recorder=recorder)
    machine.spawn(_cpu, 20 * gil.switch_interval_cycles, name="hog")
    machine.spawn(_io, 4, 10.0, 50.0, name="io")
    machine.run()
    lines = ["convoy effect — an io thread behind a cpu hog:", ""]
    for _, name, start, end in machine.timeline:
        if name != "io":
            continue
        lines.append(f"  io runs [{start:>6.0f}, {end:>6.0f})  "
                     f"(round trip would be 60 cycles alone)")
    stats = machine.gil_stats
    lines.append("")
    lines.append(f"  gil stats: {stats.acquisitions} acquisitions, "
                 f"{stats.handoffs} hand-offs, {stats.slices} slices, "
                 f"{stats.wait_cycles:.0f} cycles spent waiting")
    return lines, machine


def _probe_table() -> list[str]:
    from repro.core.backends import gil_enabled, probe_backends
    lines = ["real executor backends on this host "
             f"(interpreter GIL: {'on' if gil_enabled() else 'off'}):", ""]
    for cap in probe_backends():
        mark = "yes" if cap.available else "no"
        par = "parallel" if cap.parallel else "serial-equivalent"
        lines.append(f"  {cap.name:<15} available={mark:<4} "
                     f"{par:<18} {cap.detail}")
    return lines


def run(argv: list[str]) -> int:
    threads = 4
    interval = 100.0
    acquire = 5.0
    probe = False
    chrome_path = None
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg in ("-h", "--help"):
            print(USAGE)
            return 0
        if arg == "--threads":
            if not args or not args[0].isdigit() or int(args[0]) < 1:
                print("error: --threads needs a positive integer")
                return 2
            threads = int(args.pop(0))
        elif arg == "--switch-interval":
            if not args:
                print("error: --switch-interval needs a cycle count")
                return 2
            interval = float(args.pop(0))
        elif arg == "--acquire-cost":
            if not args:
                print("error: --acquire-cost needs a cycle count")
                return 2
            acquire = float(args.pop(0))
        elif arg == "--probe":
            probe = True
        elif arg == "--chrome":
            if not args:
                print("error: --chrome needs a file path")
                return 2
            chrome_path = args.pop(0)
        else:
            print(f"error: unexpected argument {arg!r}\n{USAGE}")
            return 2
    try:
        gil = GilConfig(switch_interval_cycles=interval,
                        acquire_cost=acquire)
    except Exception as exc:
        print(f"error: {exc}")
        return 2

    print("the GIL ablation — simulated interpreter lock")
    print("=" * 52)
    print()
    for line in _ablation(threads, gil):
        print(line)
    print()
    recorder = None
    if chrome_path is not None:
        from repro.obs.recorder import TraceRecorder
        recorder = TraceRecorder()
    convoy_lines, _machine = _convoy(gil, recorder=recorder)
    for line in convoy_lines:
        print(line)
    if chrome_path is not None:
        from repro.obs.chrome import write_chrome
        count = write_chrome(recorder, chrome_path)
        print()
        print(f"wrote {count} Chrome trace events to {chrome_path} "
              "(load in https://ui.perfetto.dev; see the GIL lane)")
    if probe:
        print()
        for line in _probe_table():
            print(line)
    return 0
