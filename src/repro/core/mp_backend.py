"""Real parallelism via multiprocessing (the GIL workaround).

CPython's GIL means ``threading`` cannot speed up CPU-bound work, so the
library's *real* parallel backend uses processes — the standard Python
counterpart to the pthreads programs the course writes in C. The
simulated machine (:mod:`repro.core.machine`) carries the deterministic
speedup experiments; this backend exists so the same partitioned
workloads can run with actual OS-level parallelism on multicore hosts,
and so measured wall-clock numbers can be reported alongside simulated
ones (benches E3 and E12 do both).

The backend keeps a **persistent worker pool**: spawning processes costs
tens of milliseconds, so a fresh pool per call buries small workloads in
startup overhead — exactly the pitfall that makes students conclude
"parallelism made it slower". :class:`WorkerPool` spawns lazily on first
use, is reused warm across :func:`parallel_map` calls, and records an
:class:`~repro.core.metrics.OverheadBreakdown` (spawn/dispatch/compute/
sync seconds) per call so benchmarks can report *where* time goes.

Chunk scheduling is pluggable (``block``, ``cyclic``, ``dynamic``,
``guided`` — see :mod:`repro.core.partition`); the work-queue modes help
imbalanced loads at the cost of more dispatch.

Measured speedup here is bounded by the host's physical cores; on a
single-core CI machine it will hover near (or below) 1×. That is the
expected, documented behaviour — see EXPERIMENTS.md.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.metrics import OverheadBreakdown
from repro.core.partition import CHUNK_MODES, chunk_indices
from repro.errors import ReproError


def available_cores() -> int:
    return os.cpu_count() or 1


# Top-level so it can be pickled by multiprocessing.
def _run_chunk(args: tuple) -> tuple:
    fn, indices, items = args
    t0 = time.perf_counter()
    results = [fn(x) for x in items]
    return indices, results, time.perf_counter() - t0


class WorkerPool:
    """A reusable process pool with pluggable chunk scheduling.

    Lazy: no processes exist until the first :meth:`map`. Warm: later
    calls reuse the same workers, so only the first call pays spawn cost
    (``last_breakdown.spawn`` is 0.0 on a warm call). Start-method aware:
    pass ``start_method="spawn"`` (or ``"fork"``/``"forkserver"``) to
    override the platform default; under *spawn*, mapped functions and
    items must be importable/picklable in a fresh interpreter.

    Call :meth:`shutdown` (or use it as a context manager) when done;
    the module-level default pool (:func:`get_pool`) is shut down at
    interpreter exit automatically.
    """

    def __init__(self, workers: int | None = None, *,
                 start_method: str | None = None, recorder=None) -> None:
        from repro.obs.recorder import coalesce
        if workers is not None and workers <= 0:
            raise ReproError("workers must be positive")
        self.workers = workers if workers is not None else available_cores()
        self._ctx = mp.get_context(start_method)
        self._pool: mp.pool.Pool | None = None
        self.spawn_count = 0            # how many times workers were created
        self.last_breakdown = OverheadBreakdown()
        #: shared trace recorder (see repro.obs); NULL_RECORDER when off
        self.recorder = coalesce(recorder)

    @property
    def is_alive(self) -> bool:
        return self._pool is not None

    def _ensure_started(self) -> float:
        """Spawn the workers if needed; returns the spawn seconds paid."""
        if self._pool is not None:
            return 0.0
        t0 = time.perf_counter()
        self._pool = self._ctx.Pool(processes=self.workers)
        self.spawn_count += 1
        return time.perf_counter() - t0

    def map(self, fn: Callable, items: Sequence, *,
            chunk_mode: str = "block",
            chunk_size: int | None = None) -> list:
        """Map ``fn`` over ``items`` on the (possibly warm) pool.

        Results keep input order for every chunk mode. The call's
        overhead breakdown lands in :attr:`last_breakdown`.
        """
        if chunk_mode not in CHUNK_MODES:
            raise ReproError(f"unknown chunk mode {chunk_mode!r}; "
                             f"valid modes: {', '.join(CHUNK_MODES)}")
        n = len(items)
        wall0 = time.perf_counter()
        if n == 0:
            self.last_breakdown = OverheadBreakdown()
            return []
        if n == 1:
            # Deliberate inline fast path: one item never spawns or
            # touches workers (pinned by tests), so the whole call is
            # compute — but it must still announce itself on the mp
            # track, or span-based comparisons (E12/E19) silently lose
            # warm-up calls.
            result = [fn(items[0])]
            wall = time.perf_counter() - wall0
            self.last_breakdown = OverheadBreakdown(compute=wall, wall=wall)
            if self.recorder.enabled:
                self.recorder.complete(
                    "inline", ts=self.recorder.now(), dur=wall * 1e6,
                    pid="mp", tid="pool", cat="mp",
                    args={"seconds": wall, "items": 1,
                          "chunk_mode": chunk_mode})
            return result
        spawn = self._ensure_started()

        t0 = time.perf_counter()
        chunks = [(fn, chunk, [items[i] for i in chunk])
                  for chunk in chunk_indices(n, self.workers, chunk_mode,
                                             chunk_size)
                  if chunk]
        assert self._pool is not None
        # chunksize=1 so the pool's internal task queue *is* the work
        # queue: idle workers pull the next chunk (dynamic scheduling);
        # for block/cyclic there is exactly one chunk per worker anyway.
        pending = self._pool.map_async(_run_chunk, chunks, chunksize=1)
        dispatch = time.perf_counter() - t0

        t0 = time.perf_counter()
        parts = pending.get()
        wait = time.perf_counter() - t0

        out: list = [None] * n
        compute = 0.0
        for indices, results, seconds in parts:
            compute += seconds
            for i, r in zip(indices, results):
                out[i] = r
        # the ideal wait is compute spread over the chunks that actually
        # ran, not the pool width: short queues (fewer chunks than
        # workers) can't use every worker, and dividing by self.workers
        # would book that idle width as compute rather than sync
        k = min(self.workers, len(chunks))
        self.last_breakdown = OverheadBreakdown(
            spawn=spawn, dispatch=dispatch, compute=compute,
            sync=max(0.0, wait - compute / k),
            wall=time.perf_counter() - wall0)
        if self.recorder.enabled:
            self._record_map(len(chunks), chunk_mode, spawn, dispatch, wait)
        return out

    def _record_map(self, n_chunks: int, chunk_mode: str,
                    spawn: float, dispatch: float, wait: float) -> None:
        """Emit the call's phases as back-to-back spans on the mp track.

        Wall-clock seconds become microsecond durations (the Chrome
        trace unit) laid out from the recorder's logical clock, so one
        map() call reads as spawn → dispatch → wait in the viewer.
        """
        ts = self.recorder.now()
        phases = [("dispatch", dispatch), ("wait", wait)]
        if spawn:
            phases.insert(0, ("spawn", spawn))
        for name, seconds in phases:
            dur = seconds * 1e6
            self.recorder.complete(
                name, ts=ts, dur=dur, pid="mp", tid="pool", cat="mp",
                args={"seconds": seconds, "workers": self.workers,
                      "chunks": n_chunks, "chunk_mode": chunk_mode})
            ts += dur

    def shutdown(self) -> None:
        """Stop the workers (idempotent). The pool can be restarted —
        the next :meth:`map` lazily spawns fresh workers."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        try:
            pool.close()
            pool.join()
        except Exception:
            pool.terminate()
            pool.join()
            raise

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# -- the module-level default pool (warm reuse across parallel_map calls) --

_default_pool: WorkerPool | None = None
_last_breakdown = OverheadBreakdown()


def get_pool(workers: int | None = None) -> WorkerPool:
    """The shared persistent pool, (re)created to match ``workers``.

    Repeated calls with the same worker count return the same warm pool;
    asking for a different count shuts the old one down first.
    """
    global _default_pool
    wanted = workers if workers is not None else available_cores()
    if wanted <= 0:
        raise ReproError("workers must be positive")
    if _default_pool is None or _default_pool.workers != wanted:
        if _default_pool is not None:
            _default_pool.shutdown()
        _default_pool = WorkerPool(wanted)
    return _default_pool


def shutdown_pool() -> None:
    """Shut down the shared pool (idempotent; safe to call anytime)."""
    global _default_pool
    if _default_pool is not None:
        _default_pool.shutdown()
        _default_pool = None


atexit.register(shutdown_pool)


def last_breakdown() -> OverheadBreakdown:
    """The overhead breakdown of the most recent :func:`parallel_map`."""
    return _last_breakdown


def parallel_map(fn: Callable, items: Sequence, *,
                 workers: int | None = None,
                 chunk_mode: str = "block",
                 chunk_size: int | None = None,
                 pool: WorkerPool | None = None,
                 reuse_pool: bool = True,
                 backend: str | None = None) -> list:
    """Map ``fn`` over ``items`` using a process pool.

    ``fn`` must be picklable (defined at module top level). Results keep
    input order under every ``chunk_mode`` (``block``, ``cyclic``,
    ``dynamic``, ``guided`` — see :mod:`repro.core.partition`). With one
    worker (or ≤1 item) no pool is touched.

    By default the shared persistent pool (:func:`get_pool`) does the
    work, so only the first call pays process spawn. Pass an explicit
    ``pool`` to manage the lifecycle yourself, or ``reuse_pool=False``
    to get the old cold-start behaviour (a fresh pool per call — kept
    for the E12 overhead comparison; don't use it on hot paths).

    ``backend`` selects an executor by name instead (``serial`` /
    ``thread`` / ``process`` / ``subinterpreter`` — see
    :mod:`repro.core.backends`); unavailable backends fall back
    gracefully, and the backend's breakdown lands in
    :func:`last_breakdown` like any other call.
    """
    global _last_breakdown
    if backend is not None and backend != "process":
        from repro.core.backends import get_backend
        with get_backend(backend, workers) as chosen:
            out = chosen.map(fn, items, chunk_mode=chunk_mode,
                             chunk_size=chunk_size)
            _last_breakdown = chosen.last_breakdown
        return out
    if chunk_mode not in CHUNK_MODES:
        raise ReproError(f"unknown chunk mode {chunk_mode!r}; "
                         f"valid modes: {', '.join(CHUNK_MODES)}")
    if workers is not None and workers <= 0:
        raise ReproError("workers must be positive")
    n_workers = workers if workers is not None else available_cores()
    if n_workers == 1 or len(items) <= 1:
        t0 = time.perf_counter()
        out = [fn(x) for x in items]
        wall = time.perf_counter() - t0
        _last_breakdown = OverheadBreakdown(compute=wall, wall=wall)
        return out
    if pool is not None:
        out = pool.map(fn, items, chunk_mode=chunk_mode,
                       chunk_size=chunk_size)
        _last_breakdown = pool.last_breakdown
        return out
    if reuse_pool:
        shared = get_pool(n_workers)
        out = shared.map(fn, items, chunk_mode=chunk_mode,
                         chunk_size=chunk_size)
        _last_breakdown = shared.last_breakdown
        return out
    with WorkerPool(n_workers) as throwaway:
        out = throwaway.map(fn, items, chunk_mode=chunk_mode,
                            chunk_size=chunk_size)
        _last_breakdown = throwaway.last_breakdown
    return out


@dataclass(frozen=True)
class MeasuredRun:
    """Wall-clock measurement of one worker count."""
    workers: int
    seconds: float


def measure_parallel_map(fn: Callable, items: Sequence,
                         worker_counts: list[int],
                         *, repeats: int = 1,
                         chunk_mode: str = "block",
                         reuse_pool: bool = True) -> list[MeasuredRun]:
    """Time parallel_map at several worker counts (best of ``repeats``)."""
    runs = []
    for w in worker_counts:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            parallel_map(fn, items, workers=w, chunk_mode=chunk_mode,
                         reuse_pool=reuse_pool)
            best = min(best, time.perf_counter() - t0)
        runs.append(MeasuredRun(w, best))
    return runs


# A picklable CPU-bound kernel for demos and tests.
def burn(n: int) -> int:
    """Spin ``n`` iterations of integer work; returns a checksum."""
    acc = 0
    for i in range(n):
        acc = (acc * 1103515245 + 12345 + i) & 0x7FFFFFFF
    return acc
