"""Real parallelism via multiprocessing (the GIL workaround).

CPython's GIL means ``threading`` cannot speed up CPU-bound work, so the
library's *real* parallel backend uses processes — the standard Python
counterpart to the pthreads programs the course writes in C. The
simulated machine (:mod:`repro.core.machine`) carries the deterministic
speedup experiments; this backend exists so the same partitioned
workloads can run with actual OS-level parallelism on multicore hosts,
and so measured wall-clock numbers can be reported alongside simulated
ones (bench E3 does both).

Measured speedup here is bounded by the host's physical cores; on a
single-core CI machine it will hover near (or below) 1×. That is the
expected, documented behaviour — see EXPERIMENTS.md.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.partition import block_partition
from repro.errors import ReproError


def available_cores() -> int:
    return os.cpu_count() or 1


# Top-level so it can be pickled by multiprocessing.
def _run_chunk(args: tuple) -> list:
    fn, items = args
    return [fn(x) for x in items]


def parallel_map(fn: Callable, items: Sequence, *,
                 workers: int | None = None,
                 chunk_mode: str = "block") -> list:
    """Map ``fn`` over ``items`` using a process pool.

    ``fn`` must be picklable (defined at module top level). Results keep
    input order. With one worker (or one item) no pool is spawned.
    """
    if chunk_mode not in ("block",):
        raise ReproError(f"unknown chunk mode {chunk_mode!r}")
    if workers is not None and workers <= 0:
        raise ReproError("workers must be positive")
    n_workers = workers if workers is not None else available_cores()
    if n_workers == 1 or len(items) <= 1:
        return [fn(x) for x in items]
    chunks = [(fn, [items[i] for i in chunk])
              for chunk in block_partition(len(items), n_workers)
              if len(chunk)]
    with mp.Pool(processes=n_workers) as pool:
        parts = pool.map(_run_chunk, chunks)
    out: list = []
    for part in parts:
        out.extend(part)
    return out


@dataclass(frozen=True)
class MeasuredRun:
    """Wall-clock measurement of one worker count."""
    workers: int
    seconds: float


def measure_parallel_map(fn: Callable, items: Sequence,
                         worker_counts: list[int],
                         *, repeats: int = 1) -> list[MeasuredRun]:
    """Time parallel_map at several worker counts (best of ``repeats``)."""
    runs = []
    for w in worker_counts:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            parallel_map(fn, items, workers=w)
            best = min(best, time.perf_counter() - t0)
        runs.append(MeasuredRun(w, best))
    return runs


# A picklable CPU-bound kernel for demos and tests.
def burn(n: int) -> int:
    """Spin ``n`` iterations of integer work; returns a checksum."""
    acc = 0
    for i in range(n):
        acc = (acc * 1103515245 + 12345 + i) & 0x7FFFFFFF
    return acc
