"""Data partitioning for parallel work.

Lab 10 requires that "solutions must partition the game grid vertically
or horizontally, assigning responsibility for different regions to each
of the threads" (§III-B). These helpers compute those assignments —
block and cyclic 1-D partitions and row/column grid partitions — with
the balance guarantees tests can check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReproError


def block_partition(n: int, parts: int) -> list[range]:
    """Split ``range(n)`` into ``parts`` contiguous chunks, sizes within 1.

    Extra items go to the earliest chunks (the convention the lab uses).
    Chunks may be empty when parts > n.
    """
    if parts <= 0:
        raise ReproError("parts must be positive")
    if n < 0:
        raise ReproError("n cannot be negative")
    base, extra = divmod(n, parts)
    out: list[range] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        out.append(range(start, start + size))
        start += size
    return out


def cyclic_partition(n: int, parts: int) -> list[list[int]]:
    """Deal indices round-robin: worker i gets i, i+parts, i+2·parts, ..."""
    if parts <= 0:
        raise ReproError("parts must be positive")
    return [list(range(i, n, parts)) for i in range(parts)]


@dataclass(frozen=True)
class GridRegion:
    """A rectangular region of a 2-D grid (half-open bounds)."""
    row_start: int
    row_end: int
    col_start: int
    col_end: int

    @property
    def rows(self) -> range:
        return range(self.row_start, self.row_end)

    @property
    def cols(self) -> range:
        return range(self.col_start, self.col_end)

    @property
    def cell_count(self) -> int:
        return ((self.row_end - self.row_start)
                * (self.col_end - self.col_start))


def partition_grid(rows: int, cols: int, parts: int,
                   orientation: str = "row") -> list[GridRegion]:
    """Partition a grid by rows ("row"/horizontal strips) or columns.

    The two options Lab 10 offers; regions cover the grid exactly.
    """
    if orientation not in ("row", "col"):
        raise ReproError("orientation must be 'row' or 'col'")
    if orientation == "row":
        return [GridRegion(r.start, r.stop, 0, cols)
                for r in block_partition(rows, parts)]
    return [GridRegion(0, rows, c.start, c.stop)
            for c in block_partition(cols, parts)]


def balance_ratio(regions: list[GridRegion]) -> float:
    """max/min cell count over non-empty regions (1.0 = perfectly even)."""
    counts = [r.cell_count for r in regions if r.cell_count > 0]
    if not counts:
        return 1.0
    return max(counts) / min(counts)
