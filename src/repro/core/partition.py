"""Data partitioning for parallel work.

Lab 10 requires that "solutions must partition the game grid vertically
or horizontally, assigning responsibility for different regions to each
of the threads" (§III-B). These helpers compute those assignments —
block and cyclic 1-D partitions and row/column grid partitions — with
the balance guarantees tests can check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ReproError


def block_partition(n: int, parts: int) -> list[range]:
    """Split ``range(n)`` into ``parts`` contiguous chunks, sizes within 1.

    Extra items go to the earliest chunks (the convention the lab uses).
    Chunks may be empty when parts > n.
    """
    if parts <= 0:
        raise ReproError("parts must be positive")
    if n < 0:
        raise ReproError("n cannot be negative")
    base, extra = divmod(n, parts)
    out: list[range] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        out.append(range(start, start + size))
        start += size
    return out


def cyclic_partition(n: int, parts: int) -> list[list[int]]:
    """Deal indices round-robin: worker i gets i, i+parts, i+2·parts, ..."""
    if parts <= 0:
        raise ReproError("parts must be positive")
    return [list(range(i, n, parts)) for i in range(parts)]


#: chunk-scheduling policies the parallel backend understands (the OpenMP
#: schedule() clauses at CS 31 depth: static block, static cyclic, and the
#: work-queue policies for imbalanced loads)
CHUNK_MODES = ("block", "cyclic", "dynamic", "guided")


def dynamic_chunks(n: int, chunk_size: int) -> list[range]:
    """Split ``range(n)`` into fixed-size chunks for a work queue.

    Idle workers pull the next chunk as they finish — OpenMP's
    ``schedule(dynamic, chunk_size)``. Smaller chunks balance better but
    pay more dispatch overhead.
    """
    if chunk_size <= 0:
        raise ReproError("chunk_size must be positive")
    if n < 0:
        raise ReproError("n cannot be negative")
    return [range(i, min(i + chunk_size, n)) for i in range(0, n, chunk_size)]


def guided_chunks(n: int, parts: int, *, min_chunk: int = 1) -> list[range]:
    """Decreasing-size chunks: each is ``remaining / parts``, floored.

    OpenMP's ``schedule(guided)``: big chunks up front keep dispatch
    overhead low, small chunks at the tail absorb imbalance.
    """
    if parts <= 0:
        raise ReproError("parts must be positive")
    if min_chunk <= 0:
        raise ReproError("min_chunk must be positive")
    if n < 0:
        raise ReproError("n cannot be negative")
    out: list[range] = []
    start = 0
    while start < n:
        size = max(min_chunk, (n - start) // parts)
        size = min(size, n - start)
        out.append(range(start, start + size))
        start += size
    return out


def chunk_indices(n: int, workers: int, mode: str,
                  chunk_size: int | None = None) -> list[list[int]]:
    """The task list a scheduling policy produces for ``range(n)``.

    ``block``/``cyclic`` return exactly one chunk per worker (static
    assignment); ``dynamic``/``guided`` return a longer queue that idle
    workers drain. Chunks always cover ``range(n)`` exactly, each index
    once.
    """
    if mode not in CHUNK_MODES:
        raise ReproError(f"unknown chunk mode {mode!r}; "
                         f"valid modes: {', '.join(CHUNK_MODES)}")
    if workers <= 0:
        raise ReproError("workers must be positive")
    if mode == "block":
        return [list(r) for r in block_partition(n, workers)]
    if mode == "cyclic":
        return cyclic_partition(n, workers)
    if mode == "dynamic":
        size = chunk_size if chunk_size is not None else max(
            1, -(-n // (workers * 4)))
        return [list(r) for r in dynamic_chunks(n, size)]
    # guided
    return [list(r) for r in guided_chunks(n, workers)]


def schedule_makespan(costs: list[float], workers: int, mode: str,
                      chunk_size: int | None = None) -> float:
    """Deterministic makespan of a chunk schedule (the cost model).

    Static modes pin chunk *i* to worker *i*; the work-queue modes play
    greedy list scheduling — each chunk goes to the earliest-free worker,
    which is what a shared task queue does. This is the analytic
    counterpart of the real pool, used to show dynamic beating static on
    skewed loads without needing a multicore host.
    """
    chunks = chunk_indices(len(costs), workers, mode, chunk_size)
    chunk_costs = [sum(costs[i] for i in chunk) for chunk in chunks]
    if mode in ("block", "cyclic"):
        return max(chunk_costs, default=0.0)
    finish = [0.0] * workers
    for cost in chunk_costs:
        slot = min(range(workers), key=finish.__getitem__)
        finish[slot] += cost
    return max(finish)


@dataclass(frozen=True)
class GridRegion:
    """A rectangular region of a 2-D grid (half-open bounds)."""
    row_start: int
    row_end: int
    col_start: int
    col_end: int

    @property
    def rows(self) -> range:
        return range(self.row_start, self.row_end)

    @property
    def cols(self) -> range:
        return range(self.col_start, self.col_end)

    @property
    def cell_count(self) -> int:
        return ((self.row_end - self.row_start)
                * (self.col_end - self.col_start))


def partition_grid(rows: int, cols: int, parts: int,
                   orientation: str = "row") -> list[GridRegion]:
    """Partition a grid by rows ("row"/horizontal strips) or columns.

    The two options Lab 10 offers; regions cover the grid exactly.
    Always returns exactly ``parts`` regions: when ``parts`` exceeds the
    available rows (or columns), the extra regions are empty, placed
    after the single-row ones — cluster shard placement relies on this
    (rank *i* always has a region; a rank with an empty band just idles).
    """
    if orientation not in ("row", "col"):
        raise ReproError("orientation must be 'row' or 'col'")
    if orientation == "row":
        return [GridRegion(r.start, r.stop, 0, cols)
                for r in block_partition(rows, parts)]
    return [GridRegion(0, rows, c.start, c.stop)
            for c in block_partition(cols, parts)]


def balance_ratio(regions: list[GridRegion]) -> float:
    """max/min cell count as a load-imbalance measure (1.0 = even).

    The degenerate cases are well-defined rather than divide-by-zero:
    an empty list or all-empty regions balance trivially (1.0), while a
    *mix* of empty and non-empty regions is unboundedly imbalanced —
    some worker idles while another carries cells — and reports
    ``math.inf`` so shard-placement code can reject the split.
    """
    counts = [r.cell_count for r in regions]
    if not counts or max(counts) == 0:
        return 1.0
    if min(counts) == 0:
        return math.inf
    return max(counts) / min(counts)
