"""Deadlock detection via the wait-for graph.

"Once we introduce synchronization, we discuss the potential for
deadlock" (§III-A). A :class:`WaitForGraph` has an edge T1 → T2 when T1
is blocked on a resource T2 holds (or, for joins, on T2 itself); a cycle
is a deadlock. The machine builds one automatically whenever it stalls,
and the class is usable standalone for the written homework's
"is this schedule deadlocked?" questions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.sync import Mutex, Semaphore
from repro.core.machine import SimThread


@dataclass
class WaitForGraph:
    """Directed graph over thread names."""
    edges: dict[str, set[str]] = field(default_factory=dict)

    def add_edge(self, waiter: str, holder: str) -> None:
        self.edges.setdefault(waiter, set()).add(holder)
        self.edges.setdefault(holder, set())

    @classmethod
    def from_threads(cls, blocked: list[SimThread]) -> "WaitForGraph":
        graph = cls()
        for t in blocked:
            target = t.waiting_on
            if isinstance(target, Mutex) and target.owner is not None:
                graph.add_edge(t.name, target.owner.name)
            elif isinstance(target, SimThread):
                graph.add_edge(t.name, target.name)
            elif isinstance(target, Semaphore):
                if target.holders:
                    # a waiter depends on every thread holding an
                    # un-posted unit (binary-sem-as-lock usage); with
                    # no holders any thread could post, so no edge
                    for holder in target.holders:
                        graph.add_edge(t.name, holder.name)
                else:
                    graph.edges.setdefault(t.name, set())
            else:
                graph.edges.setdefault(t.name, set())
        return graph

    def find_cycle(self) -> list[str] | None:
        """A cycle as [a, b, ..., a], or None."""
        WHITE, GREY, BLACK = 0, 1, 2
        color = {n: WHITE for n in self.edges}
        stack: list[str] = []

        def dfs(node: str) -> list[str] | None:
            color[node] = GREY
            stack.append(node)
            for succ in sorted(self.edges.get(node, ())):
                if color[succ] == GREY:
                    i = stack.index(succ)
                    return stack[i:] + [succ]
                if color[succ] == WHITE:
                    found = dfs(succ)
                    if found:
                        return found
            color[node] = BLACK
            stack.pop()
            return None

        for node in sorted(self.edges):
            if color[node] == WHITE:
                found = dfs(node)
                if found:
                    return found
        return None

    @property
    def has_deadlock(self) -> bool:
        return self.find_cycle() is not None


def lock_order_violations(acquisition_orders: list[list[str]]
                          ) -> list[tuple[str, str]]:
    """Static check the course teaches: do threads agree on lock order?

    ``acquisition_orders`` lists the order each thread takes its locks.
    Returns pairs (a, b) that appear in both orders (a before b in one
    thread, b before a in another) — the classic AB/BA deadlock recipe.
    """
    seen: set[tuple[str, str]] = set()
    for order in acquisition_orders:
        for i, a in enumerate(order):
            for b in order[i + 1:]:
                seen.add((a, b))
    return sorted((a, b) for (a, b) in seen
                  if (b, a) in seen and a < b)
