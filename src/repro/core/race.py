"""Data-race detection: lockset + vector-clock happens-before.

"We use some small examples, such as access to a shared counter, to
introduce data races, critical sections, and atomic operations"
(§III-A). :class:`RaceDetector` watches the :class:`Access` events
threads yield on the simulated machine and reports conflicting pairs:
two threads touching the same variable, at least one write, no common
lock held, and no happens-before ordering between the accesses.

Happens-before is tracked with per-thread vector clocks over the events
the course identifies as ordering: thread creation, barrier episodes
(all arrivals happen-before all departures), and thread finish + join.
Mutexes are handled by the lockset rule instead — two accesses under a
common lock are never reported, even though they're unordered.

To bound memory, only the most recent access per (variable, thread,
kind) is retained; a race against an older superseded access by the
same thread/kind would also exist against the newer one in the programs
the course writes.
"""

from __future__ import annotations

from dataclasses import dataclass


def _vc_leq(a: dict[int, int], b: dict[int, int]) -> bool:
    """Componentwise a ≤ b."""
    return all(v <= b.get(k, 0) for k, v in a.items())


def _vc_join(a: dict[int, int], b: dict[int, int]) -> dict[int, int]:
    out = dict(a)
    for k, v in b.items():
        if v > out.get(k, 0):
            out[k] = v
    return out


@dataclass(frozen=True)
class RecordedAccess:
    thread_name: str
    tid: int
    kind: str                # 'read' | 'write'
    locks: frozenset
    clock: tuple             # frozen vector clock items
    time: float

    def vc(self) -> dict[int, int]:
        return dict(self.clock)


@dataclass(frozen=True)
class Race:
    """One reported data race."""
    var: str
    first: RecordedAccess
    second: RecordedAccess

    def __str__(self) -> str:
        return (f"data race on {self.var!r}: "
                f"{self.first.thread_name} {self.first.kind} "
                f"(locks={sorted(m.name for m in self.first.locks)}) vs "
                f"{self.second.thread_name} {self.second.kind} "
                f"(locks={sorted(m.name for m in self.second.locks)})")


class RaceDetector:
    """Attach via ``SimMachine(race_detector=RaceDetector())``."""

    def __init__(self) -> None:
        #: latest access per (var, tid, kind)
        self._latest: dict[tuple[str, int, str], RecordedAccess] = {}
        self._clocks: dict[int, dict[int, int]] = {}
        self._final_clocks: dict[int, dict[int, int]] = {}
        self.races: list[Race] = []
        self._reported: set[tuple] = set()

    # -- clock plumbing -----------------------------------------------------------

    def _clock_of(self, tid: int) -> dict[int, int]:
        return self._clocks.setdefault(tid, {tid: 0})

    def _tick(self, tid: int) -> None:
        clock = self._clock_of(tid)
        clock[tid] = clock.get(tid, 0) + 1

    # -- hooks called by the machine -------------------------------------------

    def record(self, thread, var: str, kind: str,
               locks: frozenset, time: float) -> None:
        self._tick(thread.tid)
        clock = self._clock_of(thread.tid)
        acc = RecordedAccess(thread.name, thread.tid, kind, locks,
                             tuple(sorted(clock.items())), time)
        for (v, tid, k), prior in list(self._latest.items()):
            if v != var or tid == thread.tid:
                continue
            if self._conflict(prior, acc):
                key = (var, min(prior.tid, acc.tid),
                       max(prior.tid, acc.tid),
                       frozenset((prior.kind, acc.kind)))
                if key not in self._reported:
                    self._reported.add(key)
                    self.races.append(Race(var, prior, acc))
        self._latest[(var, thread.tid, kind)] = acc

    def barrier_released(self, barrier, participants, generation: int
                         ) -> None:
        """One barrier episode completed: all-to-all ordering.

        Every participant's pre-barrier clock happens-before every
        participant's post-barrier clock: join all clocks, then give the
        merged clock (plus a fresh tick) to each participant.
        """
        merged: dict[int, int] = {}
        for t in participants:
            self._tick(t.tid)
            merged = _vc_join(merged, self._clock_of(t.tid))
        for t in participants:
            self._clocks[t.tid] = _vc_join(self._clock_of(t.tid), merged)

    def thread_finished(self, thread, time: float) -> None:
        self._tick(thread.tid)
        self._final_clocks[thread.tid] = dict(self._clock_of(thread.tid))

    def joined(self, joiner, target) -> None:
        """joiner returned from Join(target): inherit target's clock."""
        final = self._final_clocks.get(target.tid,
                                       self._clock_of(target.tid))
        self._clocks[joiner.tid] = _vc_join(self._clock_of(joiner.tid),
                                            final)

    # -- the conflict rule ----------------------------------------------------------

    @staticmethod
    def _conflict(a: RecordedAccess, b: RecordedAccess) -> bool:
        if a.tid == b.tid:
            return False
        if a.kind == "read" and b.kind == "read":
            return False
        if a.locks & b.locks:
            return False            # common lock: mutual exclusion
        va, vb = a.vc(), b.vc()
        if _vc_leq(va, vb) or _vc_leq(vb, va):
            return False            # ordered by happens-before
        return True

    # -- reporting -----------------------------------------------------------------------

    @property
    def race_count(self) -> int:
        return len(self.races)

    def report(self) -> str:
        if not self.races:
            return "race detector: no data races observed"
        lines = [f"race detector: {len(self.races)} race(s)"]
        lines.extend(f"  {r}" for r in self.races)
        return "\n".join(lines)

    def assert_clean(self) -> None:
        from repro.errors import RaceError
        if self.races:
            raise RaceError(self.report())
