"""Exception hierarchy shared by every repro subsystem.

Each simulated subsystem raises errors rooted at :class:`ReproError` so
callers (examples, homework checkers, the shell) can catch simulation
failures without accidentally swallowing real Python bugs.

The naming deliberately mirrors what a CS 31 student would see on real
hardware/tools: a wild pointer dereference is a :class:`SegmentationFault`,
a Valgrind finding is a :class:`MemcheckError`, a blown assembler parse is
an :class:`AssemblerError`, and so on.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Binary representation / arithmetic
# ---------------------------------------------------------------------------

class BinaryError(ReproError):
    """Invalid binary/hex/decimal conversion or malformed bit pattern."""


class RangeError(BinaryError):
    """A value does not fit in the requested fixed-width representation."""


# ---------------------------------------------------------------------------
# Circuits
# ---------------------------------------------------------------------------

class CircuitError(ReproError):
    """Structural circuit problem (bad wiring, width mismatch, cycles)."""


class WidthMismatch(CircuitError):
    """Connected wires/components disagree on bit width."""


# ---------------------------------------------------------------------------
# ISA / assembly
# ---------------------------------------------------------------------------

class IsaError(ReproError):
    """Base for assembler/machine errors."""


class AssemblerError(IsaError):
    """Syntax or semantic error while assembling source text."""


class IllegalInstruction(IsaError):
    """The machine fetched or was asked to execute an unknown instruction."""


class MachineFault(IsaError):
    """Runtime fault in the ISA machine (bad memory access, stack blowout)."""


# ---------------------------------------------------------------------------
# C memory model
# ---------------------------------------------------------------------------

class CMemoryError(ReproError):
    """Base for address-space/heap errors."""


class SegmentationFault(CMemoryError):
    """Access to an unmapped or protected address."""

    def __init__(self, address: int, note: str = "") -> None:
        self.address = address
        msg = f"segmentation fault at address {address:#x}"
        if note:
            msg += f" ({note})"
        super().__init__(msg)


class HeapError(CMemoryError):
    """Invalid malloc/free usage (double free, free of non-heap pointer)."""


class MemcheckError(CMemoryError):
    """A Valgrind-style memcheck finding promoted to an error."""


# ---------------------------------------------------------------------------
# Memory hierarchy / caches / VM
# ---------------------------------------------------------------------------

class CacheConfigError(ReproError):
    """Cache geometry is invalid (non-power-of-two sizes, etc.)."""


class VmError(ReproError):
    """Virtual memory configuration or translation failure."""


class ProtectionFault(VmError):
    """Access violated page protection bits."""


# ---------------------------------------------------------------------------
# OS simulation
# ---------------------------------------------------------------------------

class OsError_(ReproError):
    """Base for simulated-kernel errors (trailing underscore: stdlib clash)."""


class NoSuchProcess(OsError_):
    """Operation on a PID that does not exist."""


class InvalidSyscall(OsError_):
    """A program invoked a syscall incorrectly."""


class ShellError(OsError_):
    """Shell/parser usage error."""


# ---------------------------------------------------------------------------
# Shared-memory parallelism
# ---------------------------------------------------------------------------

class ConcurrencyError(ReproError):
    """Base for thread-machine errors."""


class DeadlockError(ConcurrencyError):
    """The machine proved that every runnable thread is blocked."""


class SyncUsageError(ConcurrencyError):
    """Misuse of a synchronization primitive (unlock of unowned mutex...)."""


class RaceError(ConcurrencyError):
    """A data race detected by the race checker, promoted to an error."""


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------

class ObsError(ReproError):
    """Tracing misuse or an invalid exported trace (unmatched spans...)."""


# ---------------------------------------------------------------------------
# Full-system bus
# ---------------------------------------------------------------------------

class BusError(ReproError):
    """Memory-bus misconfiguration (unknown kind, missing pid/process...)."""


# ---------------------------------------------------------------------------
# Cluster / simulated network
# ---------------------------------------------------------------------------

class ClusterError(ReproError):
    """Cluster misuse: bad rank, recv with no matching message, bad shard."""
