"""The memory bus: one pluggable seam between the CPU and its memory.

The course's whole point is the *vertical slice* — one program travels
C → assembly → memory hierarchy → caches → OS/VM — but the simulators
were silos: :class:`~repro.isa.machine.Machine` executed over a flat
:class:`~repro.clib.address_space.AddressSpace` while the cache and VM
simulators replayed detached traces. :class:`MemoryBus` is the seam
that joins them: every load/store/fetch the machine performs goes
through a bus, and the bus decides what sits behind it.

Three composable implementations:

* :class:`FlatBus` — today's behaviour, bit-identical: accesses go
  straight to an :class:`AddressSpace`; each costs one RAM access.
* :class:`CachedBus` — a :class:`~repro.memory.multilevel.CacheHierarchy`
  sits in front of memory; latency follows from which level hits.
* :class:`VirtualBus` — per-pid page tables: each access is translated
  by the existing :class:`~repro.vm.mmu.MMU` (TLB probe, page walk,
  fault service, frame allocation), the resulting *physical* address
  probes the caches, and the bytes live in a per-process address space
  (the paged regions' backing store). Context switches happen through
  ``MMU.context_switch`` — an untagged TLB flushes — and process exit
  releases frames via ``MMU.destroy_process``.

Timing is accounted in :class:`BusStats.cycles` against one unified
:class:`CostModel`, so a run on any bus yields a cycles/CPI breakdown
the :mod:`repro.system.runner` report can compare across
configurations. Recording (``recorder=``) follows the :mod:`repro.obs`
rules: hooks guard on ``recorder.enabled`` and never change behaviour.
"""

from __future__ import annotations

from collections import Counter
from operator import itemgetter
from typing import Protocol, runtime_checkable

from repro.clib.address_space import AddressSpace, ByteAddressable
from repro.errors import BusError
from repro.memory.cache import CacheConfig
from repro.memory.multilevel import CacheHierarchy
# the cycle-accounting vocabulary lives in repro.system.costing (shared
# with the cluster network); these re-imports keep the original import
# paths — repro.system.bus.CostModel / .BusStats — working unchanged
from repro.system.costing import BusStats, CostModel
from repro.vm.mmu import MMU
from repro.vm.physical import PhysicalMemory

#: bus kinds the CLI and the runner accept
BUS_KINDS = ("flat", "cached", "virtual")


@runtime_checkable
class MemoryBus(Protocol):
    """What the ISA machine (and the debugger) require of memory.

    Structurally, a bus is a :class:`ByteAddressable` plus ``view`` and
    accounting: ``read``/``write``/``fetch`` move bytes, ``view(pid)``
    binds a process identity for per-pid buses, and :attr:`stats`
    accumulates the traffic and its cycle cost. A plain
    :class:`AddressSpace` satisfies the byte seam but not the
    accounting — wrap it in a :class:`FlatBus` to get both.
    """

    kind: str
    stats: BusStats

    def read(self, address: int, size: int) -> bytes: ...

    def write(self, address: int, data: bytes) -> None: ...

    def fetch(self, address: int, size: int) -> bytes: ...

    def view(self, pid: int | None = None) -> ByteAddressable: ...


def _charge_hit_levels(stats: BusStats, hierarchy: CacheHierarchy,
                       cost: CostModel, hit_level) -> None:
    """Charge a batch of cache probes from their per-access hit levels.

    The batch analogue of ``_account``'s per-probe charging: a hit at
    level *i* costs the cumulative hit times through *i* (bucket
    ``cache``); a full miss costs every level plus ``memory_time``
    (bucket ``memory``). With the default integer-valued cost models,
    ``count * cycles`` equals the scalar path's repeated additions
    exactly, so stats-equality asserts hold bit-for-bit.
    """
    import numpy as np
    levels = hierarchy.levels
    counts = np.bincount(np.asarray(hit_level, dtype=np.int64) + 1,
                         minlength=len(levels) + 1)
    cum = 0.0
    cache_cycles = 0.0
    hits = 0
    for i, level in enumerate(levels):
        cum += level.config.hit_time
        c = int(counts[i + 1])
        if c:
            cache_cycles += c * cum
            hits += c
    misses = int(counts[0])
    if hits:
        stats.charge("cache", cache_cycles)
    if misses:
        stats.charge("memory", misses * (cum + cost.memory_time))


def default_hierarchy(*, recorder=None) -> CacheHierarchy:
    """The two-level cache stack the cached/virtual buses use by default."""
    return CacheHierarchy(
        [CacheConfig(num_lines=64, block_size=16, associativity=2,
                     hit_time=1),
         CacheConfig(num_lines=256, block_size=16, associativity=4,
                     hit_time=10)],
        recorder=recorder)


class FlatBus(ByteAddressable):
    """Today's model, behind the seam: one address space, no translation.

    Bit-identical to handing the :class:`AddressSpace` to the machine
    directly — same region/permission faults, same access trace, same
    watcher notifications — plus traffic and cycle accounting (each
    access costs one ``memory_time``).
    """

    kind = "flat"

    def __init__(self, space: AddressSpace | None = None, *,
                 cost: CostModel | None = None, recorder=None) -> None:
        from repro.obs.recorder import coalesce
        self.space = space or AddressSpace.standard()
        self.cost = cost or CostModel()
        self.stats = BusStats()
        #: shared trace recorder (see repro.obs); NULL_RECORDER when off
        self.recorder = coalesce(recorder)
        self._ctr_series = None   # trace handle, resolved on first use

    def view(self, pid: int | None = None) -> "FlatBus":
        """A flat bus has no per-process state; every view is the bus."""
        return self

    def read(self, address: int, size: int) -> bytes:
        data = self.space.read(address, size)
        self.stats.loads += 1
        self.stats.charge("memory", self.cost.memory_time)
        return data

    def write(self, address: int, data: bytes) -> None:
        self.space.write(address, data)
        self.stats.stores += 1
        self.stats.charge("memory", self.cost.memory_time)

    def fetch(self, address: int, size: int) -> bytes:
        data = self.space.fetch(address, size)
        self.stats.fetches += 1
        self.stats.charge("memory", self.cost.memory_time)
        return data

    def replay_block(self, accesses) -> None:
        """Account a block of deferred ``(kind, address, size)`` accesses.

        The JIT moves a compiled block's bytes through the backing
        space directly and hands the accounting here in one call; on a
        flat bus only the counts matter (every access costs one
        ``memory_time``), so the whole block charges at once.
        """
        if not accesses:
            return
        kinds = Counter(map(itemgetter(0), accesses))
        self.stats.loads += kinds["load"]
        self.stats.stores += kinds["store"]
        self.stats.fetches += kinds["fetch"]
        self.stats.charge("memory", len(accesses) * self.cost.memory_time)
        if self.recorder.enabled:
            # one cumulative sample per replayed block, so JIT-batched
            # runs stay visible in the trace
            if self._ctr_series is None:
                self._ctr_series = self.recorder.counter_series(
                    "bus", ("loads", "stores", "fetches"),
                    pid="memory", tid="bus", cat="cache")
            self._ctr_series.sample(
                self.recorder.now(),
                (self.stats.loads, self.stats.stores, self.stats.fetches))

    def describe(self) -> str:
        return "flat: address space -> RAM (no caches, no translation)"


class CachedBus(ByteAddressable):
    """A cache hierarchy in front of physical memory.

    Bytes still live in (and faults still come from) the backing
    address space; the hierarchy models *timing*: an access probes L1,
    then L2..., and only a last-level miss pays ``memory_time``. The
    cache simulators are the very ones the caching homeworks trace, so
    their stats (per-level hit rates, AMAT) stay available on
    :attr:`hierarchy`.
    """

    kind = "cached"

    def __init__(self, space: AddressSpace | None = None, *,
                 hierarchy: CacheHierarchy | None = None,
                 cost: CostModel | None = None, recorder=None) -> None:
        self.space = space or AddressSpace.standard()
        self.cost = cost or CostModel()
        self.hierarchy = hierarchy or default_hierarchy(recorder=recorder)
        self.stats = BusStats()

    def view(self, pid: int | None = None) -> "CachedBus":
        """Caches are shared hardware; every view is the bus."""
        return self

    # one probe per CPU access, at the access's first byte — the same
    # granularity the course's trace replays use
    def _account(self, address: int, kind: str) -> None:
        result = self.hierarchy.access(address, kind)
        cycles = 0.0
        for i, level in enumerate(self.hierarchy.levels):
            cycles += level.config.hit_time
            if result.hit_level == i:
                break
        else:
            cycles += self.cost.memory_time
        self.stats.charge("cache" if result.hit_level >= 0 else "memory",
                          cycles)

    def read(self, address: int, size: int) -> bytes:
        data = self.space.read(address, size)
        self.stats.loads += 1
        self._account(address, "load")
        return data

    def write(self, address: int, data: bytes) -> None:
        self.space.write(address, data)
        self.stats.stores += 1
        self._account(address, "store")

    def fetch(self, address: int, size: int) -> bytes:
        data = self.space.fetch(address, size)
        self.stats.fetches += 1
        self._account(address, "load")    # i-fetch probes like a load
        return data

    def replay_block(self, accesses) -> None:
        """Account a block of deferred ``(kind, address, size)`` accesses.

        One :meth:`CacheHierarchy.simulate_trace` call replaces the
        per-access scalar probes; the hierarchy sees the identical
        probe sequence (fetches probe like loads, as in :meth:`fetch`),
        so level stats, final set state, and cycle charges match the
        scalar path exactly.
        """
        if not accesses:
            return
        loads = stores = fetches = 0
        probes = []
        for kind, address, _ in accesses:
            if kind == "load":
                loads += 1
            elif kind == "store":
                stores += 1
            else:
                fetches += 1
            probes.append((address, "store" if kind == "store" else "load"))
        self.stats.loads += loads
        self.stats.stores += stores
        self.stats.fetches += fetches
        _charge_hit_levels(self.stats, self.hierarchy, self.cost,
                           self.hierarchy.simulate_trace(probes))

    def describe(self) -> str:
        levels = " -> ".join(
            f"L{i + 1}({c.config.capacity_bytes}B/"
            f"{c.config.associativity}-way)"
            for i, c in enumerate(self.hierarchy.levels))
        return f"cached: {levels} -> RAM"


class _Segment:
    """One mapped region's place in a process's linear page space."""

    __slots__ = ("start", "end", "base_vpn")

    def __init__(self, start: int, end: int, base_vpn: int) -> None:
        self.start = start
        self.end = end
        self.base_vpn = base_vpn


class _Process:
    """Per-pid state: backing bytes plus the region→page mapping."""

    __slots__ = ("space", "segments", "num_pages")

    def __init__(self, space: AddressSpace, page_size: int) -> None:
        self.space = space
        self.segments: list[_Segment] = []
        vpn = 0
        for region in space.layout():
            if region.start % page_size or region.size % page_size:
                raise BusError(
                    f"region {region.name!r} is not page-aligned "
                    f"(page size {page_size})")
            self.segments.append(_Segment(region.start, region.end, vpn))
            vpn += region.size // page_size
        self.num_pages = vpn

    def segment_for(self, address: int) -> _Segment:
        for seg in self.segments:
            if seg.start <= address < seg.end:
                return seg
        # out-of-range addresses fault in the address space with the
        # standard message; translation never sees them
        raise BusError(f"address {address:#010x} is outside every segment")


class ProcessView(ByteAddressable):
    """A :class:`VirtualBus` with the pid baked in.

    This is what the machine (and the debugger) hold: the same
    byte-addressable interface an :class:`AddressSpace` offers, with
    every access routed through the owning bus as this process.
    """

    def __init__(self, bus: "VirtualBus", pid: int) -> None:
        self.bus = bus
        self.pid = pid
        #: the backing space — exposed so watchers/trace attach per-pid
        self.space = bus.space_of(pid)

    kind = "virtual-view"

    @property
    def stats(self) -> BusStats:
        return self.bus.stats

    def view(self, pid: int | None = None) -> "ProcessView":
        return self if pid in (None, self.pid) else self.bus.view(pid)

    def read(self, address: int, size: int) -> bytes:
        return self.bus.read_for(self.pid, address, size)

    def write(self, address: int, data: bytes) -> None:
        self.bus.write_for(self.pid, address, data)

    def fetch(self, address: int, size: int) -> bytes:
        return self.bus.fetch_for(self.pid, address, size)

    def replay_block(self, accesses) -> None:
        self.bus.replay_block_for(self.pid, accesses)


class VirtualBus:
    """Per-pid page tables → TLB/MMU → caches → physical frames.

    Each process gets its own page table (one entry per page of its
    mapped regions) and its own backing :class:`AddressSpace` — that
    isolation is the point: two processes reading the *same virtual
    address* see their own bytes, exactly the course's VM story. The
    existing :class:`~repro.vm.mmu.MMU` does all translation work
    (TLB probe, page walk, fault handling, LRU frame eviction, untagged
    TLB flush on context switch); the *physical* address it returns is
    what probes the shared cache hierarchy, so cache contention between
    processes is visible after a switch.

    Accesses that span a page boundary translate each touched page, as
    hardware does. Permissions stay with the regions (the page-table
    ``writable`` bit is left permissive), so a stray store faults with
    the same :class:`~repro.errors.SegmentationFault` a flat run raises.
    """

    kind = "virtual"

    def __init__(self, *, mmu: MMU | None = None,
                 hierarchy: CacheHierarchy | None = None,
                 cost: CostModel | None = None,
                 page_size: int = 4096, num_frames: int = 64,
                 tlb_entries: int = 16, trace: bool = False,
                 recorder=None) -> None:
        self.cost = cost or CostModel()
        self.mmu = mmu or MMU(PhysicalMemory(num_frames, page_size),
                              page_size=page_size, tlb_entries=tlb_entries,
                              recorder=recorder)
        self.page_size = self.mmu.page_size
        self.hierarchy = hierarchy or default_hierarchy(recorder=recorder)
        self.trace = trace
        self.stats = BusStats()
        self._procs: dict[int, _Process] = {}

    # -- process lifecycle -------------------------------------------------

    def create_process(self, pid: int,
                       space: AddressSpace | None = None) -> ProcessView:
        """Give ``pid`` a page table and a backing address space."""
        if pid in self._procs:
            raise BusError(f"pid {pid} already has an address space")
        proc = _Process(space or AddressSpace.standard(trace=self.trace),
                        self.page_size)
        self.mmu.create_process(pid, proc.num_pages)
        self._procs[pid] = proc
        return ProcessView(self, pid)

    def destroy_process(self, pid: int) -> None:
        """Process exit: release frames, swap slots, table, and bytes."""
        self._proc(pid)
        self.mmu.destroy_process(pid)
        del self._procs[pid]

    def view(self, pid: int | None = None) -> ProcessView:
        if pid is None:
            raise BusError("a virtual bus needs a pid "
                           "(use bus.view(pid) / Machine(..., pid=...))")
        self._proc(pid)
        return ProcessView(self, pid)

    def space_of(self, pid: int) -> AddressSpace:
        """The backing bytes of one process (its private regions)."""
        return self._proc(pid).space

    def pids(self) -> list[int]:
        return sorted(self._procs)

    def _proc(self, pid: int) -> _Process:
        proc = self._procs.get(pid)
        if proc is None:
            raise BusError(f"no process {pid} on this bus "
                           "(create_process first)")
        return proc

    # -- translation + accounting ------------------------------------------

    def _account(self, pid: int, address: int, size: int, kind: str) -> None:
        """Translate every page the access touches; charge its latency."""
        proc = self._procs[pid]
        write = kind == "store"
        offset_bits = self.page_size.bit_length() - 1
        offset_mask = self.page_size - 1
        addr = address
        end = address + size
        while addr < end:
            # linear address in the process's page space: pages are
            # numbered contiguously segment by segment, so the page
            # table covers only the mapped regions
            seg = proc.segment_for(addr)
            vpn = seg.base_vpn + ((addr - seg.start) >> offset_bits)
            linear = (vpn << offset_bits) | (addr & offset_mask)
            t = self.mmu.access(linear, write=write, pid=pid)
            cycles = self.cost.tlb_time
            where = "tlb"
            if not t.tlb_hit:
                cycles += self.cost.memory_time      # page-table walk
                where = "walk"
            self.stats.charge(where, cycles)
            if t.page_fault:
                self.stats.charge("fault", self.cost.fault_service_time)
            self._probe_cache(t.paddr, kind)
            addr = (addr | offset_mask) + 1          # next page (if any)

    def _probe_cache(self, paddr: int, kind: str) -> None:
        result = self.hierarchy.access(paddr, kind)
        cycles = 0.0
        for i, level in enumerate(self.hierarchy.levels):
            cycles += level.config.hit_time
            if result.hit_level == i:
                break
        else:
            cycles += self.cost.memory_time
        self.stats.charge("cache" if result.hit_level >= 0 else "memory",
                          cycles)

    # -- current-process access (the MemoryBus protocol face) ----------------
    # The CPU is always running *some* process; un-pidded accesses route
    # to whichever one last ran, exactly as the hardware bus would.

    def _current(self) -> int:
        pid = self.mmu.current_pid
        if pid is None:
            raise BusError("no process on this bus (create_process first)")
        return pid

    def read(self, address: int, size: int) -> bytes:
        return self.read_for(self._current(), address, size)

    def write(self, address: int, data: bytes) -> None:
        self.write_for(self._current(), address, data)

    def fetch(self, address: int, size: int) -> bytes:
        return self.fetch_for(self._current(), address, size)

    # -- per-pid byte access ------------------------------------------------

    def read_for(self, pid: int, address: int, size: int) -> bytes:
        data = self._proc(pid).space.read(address, size)
        self.stats.loads += 1
        self._account(pid, address, size, "load")
        return data

    def write_for(self, pid: int, address: int, data: bytes) -> None:
        self._proc(pid).space.write(address, data)
        self.stats.stores += 1
        self._account(pid, address, len(data), "store")

    def fetch_for(self, pid: int, address: int, size: int) -> bytes:
        data = self._proc(pid).space.fetch(address, size)
        self.stats.fetches += 1
        self._account(pid, address, size, "load")
        return data

    def replay_block_for(self, pid: int, accesses) -> None:
        """Account a block of deferred ``(kind, address, size)`` accesses.

        The batch analogue of :meth:`_account` over a whole block: one
        :meth:`MMU.translate_many` call covers every touched page (same
        TLB/page-table/frame transitions as the scalar walk, pinned by
        the MMU's own tests), and the resulting physical addresses
        probe the caches through one ``simulate_trace`` call. MMU and
        cache state are independent, and each sees its exact scalar
        sequence, so end state and charges are identical even though
        translation and probing are no longer interleaved.
        """
        if not accesses:
            return
        proc = self._proc(pid)
        offset_bits = self.page_size.bit_length() - 1
        offset_mask = self.page_size - 1
        linears: list[int] = []
        writes: list[bool] = []
        probe_kinds: list[str] = []
        loads = stores = fetches = 0
        for kind, address, size in accesses:
            write = kind == "store"
            probe = "store" if write else "load"
            if kind == "load":
                loads += 1
            elif kind == "store":
                stores += 1
            else:
                fetches += 1
            addr = address
            end = address + size
            while addr < end:
                seg = proc.segment_for(addr)
                vpn = seg.base_vpn + ((addr - seg.start) >> offset_bits)
                linears.append((vpn << offset_bits) | (addr & offset_mask))
                writes.append(write)
                probe_kinds.append(probe)
                addr = (addr | offset_mask) + 1
        self.stats.loads += loads
        self.stats.stores += stores
        self.stats.fetches += fetches
        t = self.mmu.translate_many(linears, writes=writes, pid=pid)
        hits = t.tlb_hits
        misses = t.accesses - hits
        if hits:
            self.stats.charge("tlb", hits * self.cost.tlb_time)
        if misses:
            self.stats.charge(
                "walk", misses * (self.cost.tlb_time + self.cost.memory_time))
        if t.page_faults:
            self.stats.charge(
                "fault", t.page_faults * self.cost.fault_service_time)
        probes = list(zip(t.paddrs.tolist(), probe_kinds))
        _charge_hit_levels(self.stats, self.hierarchy, self.cost,
                           self.hierarchy.simulate_trace(probes))

    def describe(self) -> str:
        levels = " -> ".join(
            f"L{i + 1}" for i in range(len(self.hierarchy.levels)))
        return (f"virtual: page tables ({self.page_size}B pages) -> TLB"
                f"({self.mmu.tlb.capacity}) -> {levels} -> "
                f"{self.mmu.physical.num_frames} frames")


def make_bus(kind: str, *, cost: CostModel | None = None,
             trace: bool = False, recorder=None, **kwargs):
    """Build a bus by name — the CLI's ``--bus {flat,cached,virtual}``."""
    if kind == "flat":
        return FlatBus(AddressSpace.standard(trace=trace),
                       cost=cost, recorder=recorder, **kwargs)
    if kind == "cached":
        return CachedBus(AddressSpace.standard(trace=trace),
                         cost=cost, recorder=recorder, **kwargs)
    if kind == "virtual":
        return VirtualBus(cost=cost, trace=trace, recorder=recorder,
                          **kwargs)
    raise BusError(f"unknown bus kind {kind!r} "
                   f"(choose from {', '.join(BUS_KINDS)})")
