"""``python -m repro run`` — run a compiled program over a chosen bus.

The whole-course demo in one command: compile a ``.c`` (or assemble a
``.s``) file, execute it over the flat, cached, or virtual memory bus,
and print the full-system report (CPI, cache/TLB/fault breakdown,
per-process exit statuses)::

    python -m repro run examples/c/sum.c
    python -m repro run examples/c/sum.c --bus cached
    python -m repro run examples/c/sum.c --bus virtual --procs 2 \\
        --chrome run.json
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.system.bus import BUS_KINDS
from repro.system.runner import load_program, run_system

USAGE = """\
usage: python -m repro run PROG.c|PROG.s [options]

options:
  --bus {flat,cached,virtual}   memory bus to run over (default: flat)
  --procs N                     processes to timeshare (virtual bus only)
  --timeslice N                 scheduler units per quantum (default: 2)
  --batch N                     instructions per scheduler unit (default: 100)
  --max-steps N                 per-run instruction cap (default: 1000000)
  --entry NAME                  entry label (default: main)
  --jit / --no-jit              superblock-JIT hot code (default: on;
                                every reported number is identical
                                either way, only wall-clock changes)
  --opt / --no-opt              run the translation-validated optimizer
                                pipeline first (default: off; final
                                machine state is proved unchanged)
  --trace OUT.json              also write a Chrome trace of the run
  --chrome OUT.json             alias for --trace

Compiles PROG with the course's C-subset compiler, runs it through the
selected memory hierarchy, and prints instructions, cycles, CPI, and
the cache/TLB/page-fault breakdown from the same run. Tracing composes
with the JIT (block-level spans) and costs <1.2x on the hot loops."""

_INT_OPTS = {"--procs": "procs", "--timeslice": "timeslice",
             "--batch": "batch", "--max-steps": "max_steps"}


def run(argv: list[str]) -> int:
    prog_path = None
    chrome_path = None
    kwargs: dict = {"bus": "flat"}
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg in ("-h", "--help"):
            print(USAGE)
            return 0
        if arg == "--bus":
            if not args or args[0] not in BUS_KINDS:
                print(f"error: --bus needs one of {', '.join(BUS_KINDS)}")
                return 2
            kwargs["bus"] = args.pop(0)
        elif arg == "--entry":
            if not args:
                print("error: --entry needs a label name")
                return 2
            kwargs["entry"] = args.pop(0)
        elif arg == "--jit":
            kwargs["jit"] = True
        elif arg == "--no-jit":
            kwargs["jit"] = False
        elif arg == "--opt":
            kwargs["opt"] = True
        elif arg == "--no-opt":
            kwargs["opt"] = False
        elif arg in ("--trace", "--chrome"):
            if not args:
                print(f"error: {arg} needs a file path")
                return 2
            chrome_path = args.pop(0)
        elif arg in _INT_OPTS:
            if not args or not args[0].isdigit():
                print(f"error: {arg} needs a positive integer")
                return 2
            kwargs[_INT_OPTS[arg]] = int(args.pop(0))
        elif arg.startswith("-"):
            print(f"error: unknown option {arg!r}\n{USAGE}")
            return 2
        elif prog_path is None:
            prog_path = arg
        else:
            print(f"error: unexpected argument {arg!r}\n{USAGE}")
            return 2
    if prog_path is None:
        print(USAGE)
        return 2

    recorder = None
    if chrome_path is not None:
        from repro.obs.recorder import TraceRecorder
        recorder = TraceRecorder()
    try:
        program = load_program(prog_path,
                               entry=kwargs.get("entry", "main"))
        report = run_system(program, recorder=recorder, **kwargs)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}")
        return 1
    print(report.render())
    if chrome_path is not None:
        from repro.obs.chrome import write_chrome
        count = write_chrome(recorder, chrome_path)
        print(f"\nwrote {count} Chrome trace events to {chrome_path} "
              "(load in https://ui.perfetto.dev)")
    return 0
