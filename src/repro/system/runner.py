"""Run one compiled program through the whole stack, on any bus.

This is the vertical slice as a single call: C source (or assembly) is
compiled and assembled once, then executed over a chosen
:mod:`repro.system.bus` — flat, cached, or virtual (processes on the
simulated kernel, with MMU/TLB translation per pid). One run yields a
:class:`RunReport`: instructions, bus cycles, CPI, per-level cache miss
rates, TLB/fault counters, and kernel scheduling stats, all from the
same simulators the homeworks use individually.

    >>> from repro.system import run_system
    >>> report = run_system("int main() { return 40 + 2; }", bus="flat")
    >>> report.exit_statuses
    {0: 42}
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro._util import format_table
from repro.errors import BusError
from repro.isa.assembler import assemble
from repro.isa.ccompiler import compile_c
from repro.isa.instructions import Program
from repro.isa.machine import Machine
from repro.system.bus import BUS_KINDS, CostModel, make_bus


def load_program(path: str | Path, *, entry: str = "main") -> Program:
    """Compile/assemble a ``.c`` or ``.s`` file into a Program."""
    path = Path(path)
    source = path.read_text()
    if path.suffix == ".c":
        return assemble(compile_c(source), entry=entry)
    if path.suffix == ".s":
        return assemble(source, entry=entry)
    raise BusError(f"don't know how to load {path.name!r} "
                   "(expected a .c or .s file)")


def program_from_source(source: str, *, entry: str = "main") -> Program:
    """Compile C-subset source text (the docstring/test convenience)."""
    return assemble(compile_c(source), entry=entry)


@dataclass
class RunReport:
    """Everything one full-system run observed, cross-referenced.

    ``counters()`` flattens the interesting numbers into one dict — the
    stats-equality currency of the E16 bench and the CI smoke job.
    """
    bus_kind: str
    pipeline: str                 # bus.describe()
    instructions: int
    cycles: float                 # bus cycles + instruction base cost
    bus_counters: dict[str, float]
    exit_statuses: dict[int, int]            # pid → status (0 = direct run)
    cache_levels: list[dict] = field(default_factory=list)
    tlb: dict | None = None
    vm: dict | None = None
    kernel: dict | None = None
    faults: dict[int, str] = field(default_factory=dict)  # pid → crash msg
    #: superblock-JIT stats (blocks compiled, side exits, coverage);
    #: None when the run interpreted everything. Deliberately NOT part
    #: of counters() — JIT on/off must not change the stats-equality
    #: currency the benches compare.
    jit: dict | None = None
    #: optimizer summary (per-pass rewrite counts, validator verdicts)
    #: when the run was given ``opt=True``; None otherwise. Also not in
    #: counters() — the *effect* of optimizing shows up there already,
    #: as fewer instructions/cycles.
    opt: dict | None = None

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    def counters(self) -> dict[str, float]:
        out = {"instructions": self.instructions, "cycles": self.cycles,
               "cpi": self.cpi}
        out.update({f"bus_{k}": v for k, v in self.bus_counters.items()})
        for i, level in enumerate(self.cache_levels):
            out.update({f"l{i + 1}_{k}": v for k, v in level.items()})
        for prefix, stats in (("tlb", self.tlb), ("vm", self.vm),
                              ("kernel", self.kernel)):
            if stats:
                out.update({f"{prefix}_{k}": v for k, v in stats.items()})
        return out

    def render(self) -> str:
        lines = [f"bus: {self.pipeline}",
                 f"instructions: {self.instructions}",
                 f"cycles: {self.cycles:.0f}   CPI: {self.cpi:.2f}"]
        rows = [(k, f"{v:.0f}" if isinstance(v, float) else str(v))
                for k, v in self.bus_counters.items()]
        lines.append(format_table(["bus counter", "value"], rows,
                                  align_right=[False, True]))
        if self.cache_levels:
            rows = [(f"L{i + 1}", str(s["accesses"]), f"{s['hit_rate']:.1%}")
                    for i, s in enumerate(self.cache_levels)]
            lines.append(format_table(
                ["level", "accesses", "local hit rate"], rows,
                align_right=[False, True, True]))
        if self.tlb:
            lines.append(
                f"TLB: {self.tlb['hits']} hits / {self.tlb['misses']} misses "
                f"({self.tlb['hit_rate']:.1%}), {self.tlb['flushes']} flushes")
        if self.vm:
            lines.append(
                f"VM: {self.vm['page_faults']} page faults, "
                f"{self.vm['evictions']} evictions, "
                f"{self.vm['writebacks']} writebacks, "
                f"{self.vm['context_switches']} context switches")
        if self.kernel:
            lines.append(
                f"kernel: {self.kernel['context_switches']} context "
                f"switches over {self.kernel['total_units']} units")
        if self.jit:
            covered = self.jit["jit_steps"] / self.instructions \
                if self.instructions else 0.0
            lines.append(
                f"jit: {self.jit['blocks_compiled']} blocks compiled, "
                f"{self.jit['entries']} entries, "
                f"{self.jit['side_exits']} side exits, "
                f"{covered:.1%} of instructions in compiled blocks")
            if self.jit.get("guards_elided"):
                lines.append(f"jit: {self.jit['guards_elided']} bounds "
                             "guards elided (proved stack-safe)")
        if self.opt:
            lines.append(f"opt: {self.opt['summary']}")
        for pid, status in sorted(self.exit_statuses.items()):
            who = f"pid {pid}" if pid else "program"
            crash = f"  [killed: {self.faults[pid]}]" \
                if pid in self.faults else ""
            lines.append(f"{who}: exit status {status}{crash}")
        return "\n".join(lines)


def _cache_level_stats(hierarchy) -> list[dict]:
    return [{"accesses": c.stats.accesses, "hits": c.stats.hits,
             "misses": c.stats.misses, "hit_rate": c.stats.hit_rate,
             "miss_rate": c.stats.miss_rate}
            for c in hierarchy.levels]


def run_system(program: Program | str, *, bus: str = "flat",
               procs: int = 1, cost: CostModel | None = None,
               recorder=None, timeslice: int = 2, batch: int = 100,
               max_steps: int = 1_000_000, entry: str = "main",
               jit: bool = True, opt: bool = False,
               **bus_kwargs) -> RunReport:
    """Execute ``program`` over the chosen bus and report the trip.

    ``program`` is an assembled :class:`Program` or C-subset source
    text. ``flat``/``cached`` run the machine directly (the predecoded
    fast path); ``virtual`` boots a :class:`~repro.ossim.kernel.Kernel`
    and runs ``procs`` copies of the program as timeshared processes,
    each with its own page table on one shared
    :class:`~repro.system.bus.VirtualBus`.

    ``jit`` (default on) compiles hot superblocks per machine (see
    :mod:`repro.isa.jit`); every reported number except wall-clock time
    is identical either way — the differential tests pin that. Tracing
    composes with the JIT: an enabled recorder gets one complete-span
    per compiled-block execution (per-instruction spans only where the
    interpreter runs), with identical reported stats either way.

    ``opt`` (default off) runs the program through the translation-
    validated optimizer pipeline (:mod:`repro.analysis.opt`) first;
    the report's ``opt`` field carries the pass summary. Final machine
    state is unchanged by construction — every rewritten block is
    proved equivalent or reverted.
    """
    if isinstance(program, str):
        program = program_from_source(program, entry=entry)
    opt_stats = None
    if opt:
        from repro.analysis.opt import optimize_program
        result = optimize_program(program)
        program = result.program
        opt_stats = {
            "summary": result.summary(),
            "static_before": result.static_before,
            "static_after": result.static_after,
            "proved_safe": result.proved_safe,
            "pass_stats": dict(result.pass_stats),
            "rejections": [str(r) for r in result.rejections],
            "bailed": result.bailed,
        }
    if bus not in BUS_KINDS:
        raise BusError(f"unknown bus kind {bus!r} "
                       f"(choose from {', '.join(BUS_KINDS)})")
    if procs < 1:
        raise BusError("procs must be >= 1")
    if procs > 1 and bus != "virtual":
        raise BusError("multiple processes need --bus virtual "
                       "(flat/cached have no per-pid isolation)")
    cost = cost or CostModel()
    the_bus = make_bus(bus, cost=cost, recorder=recorder, **bus_kwargs)

    if bus == "virtual":
        from repro.ossim.kernel import Kernel
        kernel = Kernel(timeslice=timeslice, recorder=recorder)
        pids = [kernel.exec_binary(f"{entry}#{i}", program, bus=the_bus,
                                   batch=batch, recorder=recorder, jit=jit)
                for i in range(procs)]
        kernel.run(max_units=max(max_steps // batch, 1) * procs + procs)
        instructions = sum(kernel.machines[pid].steps for pid in pids)
        jit_stats = _fold_jit_stats(kernel.machines[pid] for pid in pids)
        exit_statuses = {pid: kernel.exit_status_of(pid) for pid in pids}
        faults = {pid: kernel.process(pid).fault for pid in pids
                  if kernel.process(pid).fault}
        kernel_stats = {
            "context_switches": kernel.stats.context_switches,
            "total_units": kernel.stats.total_units,
            "forks": kernel.stats.forks,
        }
        mmu = the_bus.mmu
        tlb = {"hits": mmu.tlb.stats.hits, "misses": mmu.tlb.stats.misses,
               "flushes": mmu.tlb.stats.flushes,
               "hit_rate": mmu.tlb.stats.hit_rate}
        vm = {"accesses": mmu.stats.accesses,
              "page_faults": mmu.stats.page_faults,
              "evictions": mmu.stats.evictions,
              "writebacks": mmu.stats.writebacks,
              "context_switches": mmu.stats.context_switches}
        cache_levels = _cache_level_stats(the_bus.hierarchy)
    else:
        machine = Machine(program, bus=the_bus, record_fetches=True,
                          recorder=recorder, jit=jit)
        status = machine.run(max_steps=max_steps)
        instructions = machine.steps
        jit_stats = _fold_jit_stats([machine])
        exit_statuses = {0: status}
        faults = {}
        kernel_stats = None
        tlb = vm = None
        cache_levels = (_cache_level_stats(the_bus.hierarchy)
                        if bus == "cached" else [])

    return RunReport(
        bus_kind=bus,
        pipeline=the_bus.describe(),
        instructions=instructions,
        cycles=instructions * cost.instruction_time + the_bus.stats.cycles,
        bus_counters=the_bus.stats.counters(),
        exit_statuses=exit_statuses,
        cache_levels=cache_levels,
        tlb=tlb, vm=vm, kernel=kernel_stats,
        faults=faults,
        jit=jit_stats,
        opt=opt_stats,
    )


def _fold_jit_stats(machines) -> dict | None:
    """Sum per-machine JitStats into one report dict (None if no JIT)."""
    total: dict[str, int] = {}
    for machine in machines:
        stats = machine.jit_stats
        if stats is None:
            continue
        for key, value in stats.as_dict().items():
            total[key] = total.get(key, 0) + value
    return total or None
