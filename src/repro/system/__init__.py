"""Full-system composition: one pluggable memory bus under the ISA machine.

This package is where the course's strands meet: the same compiled
program runs over a :class:`FlatBus` (plain memory, today's behaviour,
bit-identical), a :class:`CachedBus` (the cache hierarchy in front of
memory), or a :class:`VirtualBus` (per-process page tables, TLB and MMU
translation, then caches) — and the kernel timeshares compiled binaries
as real processes over the virtual bus. ``python -m repro run`` is the
command-line face of :func:`run_system`.
"""

from repro.system.bus import (
    BUS_KINDS,
    BusStats,
    CachedBus,
    CostModel,
    FlatBus,
    MemoryBus,
    ProcessView,
    VirtualBus,
    default_hierarchy,
    make_bus,
)
from repro.system.costing import CycleStats
from repro.system.runner import (
    RunReport,
    load_program,
    program_from_source,
    run_system,
)

__all__ = [
    "BUS_KINDS",
    "BusStats",
    "CachedBus",
    "CostModel",
    "CycleStats",
    "FlatBus",
    "MemoryBus",
    "ProcessView",
    "RunReport",
    "VirtualBus",
    "default_hierarchy",
    "load_program",
    "make_bus",
    "program_from_source",
    "run_system",
]
