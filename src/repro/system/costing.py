"""The cycle-accounting vocabulary every cost-modelled layer shares.

PR 5 gave the memory bus one :class:`CostModel` and one stats record
with a per-category cycle ``breakdown`` dict; the cluster layer's
network needs the identical vocabulary (messages cost cycles, cycles go
to named buckets, reports flatten the buckets into ``cycles_<where>``
counters). Rather than redefine the breakdown machinery per subsystem,
this module owns it:

* :class:`CycleStats` — the accounting core: a ``cycles`` total, a
  per-category ``breakdown``, :meth:`~CycleStats.charge` to add to
  both, and :meth:`~CycleStats.breakdown_counters` /
  :meth:`~CycleStats.merge` for reports and cluster-wide aggregation.
* :class:`CostModel` — the single-machine latency parameters (moved
  here from :mod:`repro.system.bus`; that import path still works).
* :class:`BusStats` — memory-bus traffic + cycles, a
  :class:`CycleStats` with load/store/fetch counts.

:class:`~repro.cluster.network.NetStats` and
:class:`~repro.cluster.node.NodeStats` subclass :class:`CycleStats`
the same way, so a per-node comm/compute report and a per-bus
cache/walk/fault report read (and merge) identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Unified latency parameters for the whole pipeline (in cycles).

    One model covers what :class:`~repro.vm.mmu.CostModel` and the cache
    configs' ``hit_time`` previously modelled separately, so a single
    run can report CPI: each instruction costs ``instruction_time`` plus
    whatever its memory traffic costs on the bus it runs over.
    ``fault_service_time`` is deliberately smaller than the lecture
    formula's 8 ms-as-cycles value so CPI stays readable in demos; pass
    your own model to reproduce the EAT homework numbers exactly.
    """
    instruction_time: float = 1.0     # base cost of executing one instruction
    memory_time: float = 100.0        # one RAM access (also a page-table walk)
    tlb_time: float = 1.0             # TLB probe
    fault_service_time: float = 8_000.0   # page-fault handler + disk


@dataclass
class CycleStats:
    """Cycles accumulated against named categories.

    The shared skeleton of every "where did the time go" record: one
    running total plus a breakdown dict keyed by bucket name
    (``"cache"``, ``"walk"``, ``"latency"``, ``"compute"``, ...).
    Subclasses add their own event counters and include
    :meth:`breakdown_counters` in their flat ``counters()`` dicts.
    """
    cycles: float = 0.0
    #: cycles broken down by where they went
    breakdown: dict[str, float] = field(default_factory=dict)

    def charge(self, where: str, cycles: float) -> None:
        self.cycles += cycles
        self.breakdown[where] = self.breakdown.get(where, 0.0) + cycles

    def breakdown_counters(self, prefix: str = "cycles_"
                           ) -> dict[str, float]:
        """The breakdown flattened to ``{prefix}<where>`` keys, sorted."""
        return {f"{prefix}{where}": cycles
                for where, cycles in sorted(self.breakdown.items())}

    def merge(self, other: "CycleStats") -> None:
        """Fold another record's cycles into this one, bucket by bucket."""
        self.cycles += other.cycles
        for where, cycles in other.breakdown.items():
            self.breakdown[where] = self.breakdown.get(where, 0.0) + cycles


@dataclass
class BusStats(CycleStats):
    """What travelled over the bus, and what it cost."""
    loads: int = 0
    stores: int = 0
    fetches: int = 0

    @property
    def accesses(self) -> int:
        return self.loads + self.stores + self.fetches

    def counters(self) -> dict[str, float]:
        """A flat dict for reports and stats-equality assertions."""
        out: dict[str, float] = {"loads": self.loads, "stores": self.stores,
                                 "fetches": self.fetches,
                                 "accesses": self.accesses,
                                 "cycles": self.cycles}
        out.update(self.breakdown_counters())
        return out
