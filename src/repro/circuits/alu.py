"""The Lab 3 ALU: eight operations, five status flags, built from gates.

Students combine their sign extender and one-bit adder "with additional
logic to produce an ALU that supports eight operations and five status
flags" (§III-B, Lab 3). :class:`ALU` is that circuit: a parameterised-width
datapath whose internals are entirely gate-level sub-circuits, plus
:func:`alu_reference`, a functional model used to cross-check it (and by
the ISA machine, which doesn't need to pay gate-simulation costs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.binary import arith
from repro.binary.bits import BitVector
from repro.circuits.combinational import (
    BusMux,
    Constant,
    ShiftLeftOne,
    ShiftRightOne,
    SubCircuit,
    Subtractor,
    RippleCarryAdder,
    ZeroDetector,
)
from repro.circuits.gates import And, Buffer, Not, Or, Xnor, Xor
from repro.circuits.signals import Bus, Wire
from repro.errors import CircuitError


class ALUOp(enum.IntEnum):
    """The eight operations, encoded on the 3-bit op-select bus."""
    ADD = 0
    SUB = 1
    AND = 2
    OR = 3
    XOR = 4
    NOT = 5   # bitwise NOT of operand A
    SHL = 6   # logical shift left by one
    SHR = 7   # logical shift right by one


@dataclass(frozen=True)
class ALUFlags:
    """The five status flags Lab 3 requires."""
    carry: bool      # CF — carry out / borrow / shifted-out bit
    overflow: bool   # OF — two's-complement overflow (add/sub only)
    zero: bool       # ZF — result is all zeros
    sign: bool       # SF — MSB of the result
    parity: bool     # PF — even parity of the low byte of the result


class ALU(SubCircuit):
    """Gate-level ALU. Drive ``a``, ``b``, ``op``; read ``result`` + flags.

    All eight operation datapaths evaluate in parallel and an 8-way bus
    mux selects the result — exactly the structure Lab 3 asks for.
    """

    def __init__(self, width: int = 8) -> None:
        super().__init__(name=f"ALU{width}")
        if width < 2:
            raise CircuitError("ALU width must be >= 2")
        self.width = width
        n = width

        self.a = Bus(n, "a")
        self.b = Bus(n, "b")
        self.op = Bus(3, "op")
        self.result = Bus(n, "result")
        self.cf = Wire("CF")
        self.of = Wire("OF")
        self.zf = Wire("ZF")
        self.sf = Wire("SF")
        self.pf = Wire("PF")

        zero = Wire("zero")
        self.add(Constant(zero, 0))

        # -- operation datapaths -------------------------------------------
        add_out = Bus(n, "add_out")
        add_cout = Wire("add_cout")
        adder = RippleCarryAdder(self.a, self.b, zero, add_out, add_cout)
        self.add(adder)

        sub_out = Bus(n, "sub_out")
        sub_cout = Wire("sub_cout")
        subber = Subtractor(self.a, self.b, sub_out, sub_cout)
        self.add(subber)

        and_out = Bus(n, "and_out")
        or_out = Bus(n, "or_out")
        xor_out = Bus(n, "xor_out")
        not_out = Bus(n, "not_out")
        for i in range(n):
            self.add(And([self.a[i], self.b[i]], and_out[i]))
            self.add(Or([self.a[i], self.b[i]], or_out[i]))
            self.add(Xor([self.a[i], self.b[i]], xor_out[i]))
            self.add(Not(self.a[i], not_out[i]))

        shl_out = Bus(n, "shl_out")
        shl_spill = Wire("shl_spill")
        self.add(ShiftLeftOne(self.a, shl_out, shl_spill))

        shr_out = Bus(n, "shr_out")
        shr_spill = Wire("shr_spill")
        self.add(ShiftRightOne(self.a, shr_out, shr_spill))

        op_buses = [add_out, sub_out, and_out, or_out,
                    xor_out, not_out, shl_out, shr_out]
        self.add(BusMux(op_buses, self.op, self.result))

        # -- CF per op, muxed by the same select ----------------------------
        borrow = Wire("borrow")
        self.add(Not(sub_cout, borrow))  # x86: CF on subtract = NOT carry-out
        cf_candidates = [add_cout, borrow, zero, zero,
                         zero, zero, shl_spill, shr_spill]
        self._mux_flag(cf_candidates, self.cf, "cf")

        # -- OF: carry into MSB XOR carry out of MSB (add/sub only) ---------
        of_add = Wire("of_add")
        self.add(Xor([adder.carries[n - 1], adder.carries[n]], of_add))
        of_sub = Wire("of_sub")
        self.add(Xor([subber.carries[n - 1], subber.carries[n]], of_sub))
        of_candidates = [of_add, of_sub, zero, zero, zero, zero, zero, zero]
        self._mux_flag(of_candidates, self.of, "of")

        # -- ZF, SF, PF are functions of the selected result ----------------
        self.add(ZeroDetector(self.result, self.zf))
        self.add(Buffer(self.result[n - 1], self.sf))
        parity_bits = [self.result[i] for i in range(min(8, n))]
        if len(parity_bits) == 1:
            self.add(Not(parity_bits[0], self.pf))
        else:
            self.add(Xnor(parity_bits, self.pf))  # 1 iff even number of ones

    def _mux_flag(self, candidates: list[Wire], out: Wire, tag: str) -> None:
        from repro.circuits.combinational import MuxN
        self.add(MuxN(candidates, self.op, out))

    # -- convenience driver -------------------------------------------------

    def compute(self, op: ALUOp, a: int, b: int = 0) -> tuple[int, ALUFlags]:
        """Drive inputs, settle this sub-circuit, and read result + flags.

        ``a``/``b`` are raw unsigned patterns of the ALU's width.
        """
        self.a.set(a)
        self.b.set(b)
        self.op.set(int(op))
        # Settle locally: the ALU is purely combinational, so iterating
        # its parts to a fixed point is sufficient.
        for _ in range(4 * max(1, len(self.parts))):
            if not self.evaluate():
                break
        else:
            raise CircuitError("ALU failed to settle")
        flags = ALUFlags(
            carry=bool(self.cf.value), overflow=bool(self.of.value),
            zero=bool(self.zf.value), sign=bool(self.sf.value),
            parity=bool(self.pf.value))
        return self.result.value, flags


def alu_reference(op: ALUOp, a: int, b: int, width: int) -> tuple[int, ALUFlags]:
    """Functional model of the Lab 3 ALU, for cross-checking the circuit."""
    av = BitVector(a & ((1 << width) - 1), width)
    bv = BitVector(b & ((1 << width) - 1), width)

    def from_arith(r: arith.ArithResult) -> tuple[int, ALUFlags]:
        return r.value.raw, _flags(r.value, carry=r.flags.carry,
                                   overflow=r.flags.overflow)

    def _flags(v: BitVector, *, carry: bool = False,
               overflow: bool = False) -> ALUFlags:
        low = v.raw & ((1 << min(8, width)) - 1)
        return ALUFlags(
            carry=carry, overflow=overflow, zero=v.raw == 0,
            sign=bool(v.msb), parity=bin(low).count("1") % 2 == 0)

    if op == ALUOp.ADD:
        return from_arith(arith.add(av, bv))
    if op == ALUOp.SUB:
        return from_arith(arith.sub(av, bv))
    if op == ALUOp.AND:
        v = av & bv
        return v.raw, _flags(v)
    if op == ALUOp.OR:
        v = av | bv
        return v.raw, _flags(v)
    if op == ALUOp.XOR:
        v = av ^ bv
        return v.raw, _flags(v)
    if op == ALUOp.NOT:
        v = ~av
        return v.raw, _flags(v)
    if op == ALUOp.SHL:
        v = av.shift_left(1)
        return v.raw, _flags(v, carry=bool(av.msb))
    if op == ALUOp.SHR:
        v = av.shift_right_logical(1)
        return v.raw, _flags(v, carry=bool(av.lsb))
    raise CircuitError(f"unknown ALU op {op!r}")
