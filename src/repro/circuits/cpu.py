"""A complete simple CPU — the capstone of the architecture module.

"We then add control circuitry, a program counter, and instruction
registers to complete a simple CPU. We discuss instruction execution
stages and how a clock circuit drives the execution." (§III-A)

:class:`SimpleCPU` executes a 16-bit teaching ISA through explicit
FETCH → DECODE → EXECUTE → STORE micro-stages, one stage per clock tick
(the multicycle design the lecture draws on the board). The datapath
blocks are the Lab 3 ALU's functional model, a register file, a PC, an
instruction register, and a small word-addressed memory.

Instruction format (16 bits)::

    [15:12] opcode   [11:9] rd   [8:6] rs   [5:3] rt   [5:0] imm6 (signed)

R-format ops use rd/rs/rt; I-format ops use rd/rs + imm6.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.binary.bits import BitVector
from repro.circuits.alu import ALUOp, alu_reference
from repro.circuits.regfile import RegisterFile
from repro.errors import CircuitError, IllegalInstruction, MachineFault

WORD = 16
NUM_REGS = 8


class Op(enum.IntEnum):
    """Opcodes of the teaching ISA."""
    HALT = 0
    LOADI = 1    # rd = sign_extend(imm6)
    ADD = 2      # rd = rs + rt
    SUB = 3      # rd = rs - rt
    AND = 4
    OR = 5
    XOR = 6
    NOT = 7      # rd = ~rs
    SHL = 8      # rd = rs << 1
    SHR = 9      # rd = rs >> 1 (logical)
    LOAD = 10    # rd = mem[rs + imm_lo3]  (imm from rt field, unsigned)
    STORE = 11   # mem[rs + imm_lo3] = rd
    JMP = 12     # pc = imm6 (unsigned absolute, small programs)
    BEQZ = 13    # if rs == 0: pc = imm_lo3-extended target in rt|... use imm6? see decode
    MOV = 14     # rd = rs
    NOP = 15


class Stage(enum.Enum):
    """The four execution stages the course teaches."""
    FETCH = "fetch"
    DECODE = "decode"
    EXECUTE = "execute"
    STORE = "store"


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction."""
    op: Op
    rd: int = 0
    rs: int = 0
    rt: int = 0
    imm: int = 0  # sign-extended 6-bit immediate

    def encode(self) -> int:
        if self.op in (Op.LOADI, Op.BEQZ) and not -32 <= self.imm <= 31:
            raise IllegalInstruction(
                f"immediate {self.imm} does not fit in signed 6 bits")
        if self.op == Op.JMP and not 0 <= self.imm <= 63:
            raise IllegalInstruction(f"jump target {self.imm} out of range")
        if self.op in (Op.LOAD, Op.STORE) and not 0 <= self.imm <= 7:
            raise IllegalInstruction(
                f"memory offset {self.imm} does not fit in 3 bits")
        word = (int(self.op) & 0xF) << 12
        word |= (self.rd & 0x7) << 9
        word |= (self.rs & 0x7) << 6
        if self.op in (Op.LOADI, Op.JMP, Op.BEQZ):
            word |= self.imm & 0x3F
        elif self.op in (Op.LOAD, Op.STORE):
            word |= (self.imm & 0x7) << 3 | 0  # low-3 offset in rt slot
        else:
            word |= (self.rt & 0x7) << 3
        return word

    @staticmethod
    def decode(word: int) -> "Instruction":
        if not 0 <= word < (1 << 16):
            raise IllegalInstruction(f"not a 16-bit word: {word:#x}")
        opcode = (word >> 12) & 0xF
        try:
            op = Op(opcode)
        except ValueError:  # pragma: no cover - all 16 codes are defined
            raise IllegalInstruction(f"bad opcode {opcode}") from None
        rd = (word >> 9) & 0x7
        rs = (word >> 6) & 0x7
        rt = (word >> 3) & 0x7
        imm6 = BitVector(word & 0x3F, 6).to_signed()
        if op in (Op.LOAD, Op.STORE):
            return Instruction(op, rd=rd, rs=rs, imm=(word >> 3) & 0x7)
        if op in (Op.LOADI, Op.BEQZ):
            return Instruction(op, rd=rd, rs=rs, imm=imm6)
        if op == Op.JMP:
            return Instruction(op, imm=word & 0x3F)  # unsigned target
        return Instruction(op, rd=rd, rs=rs, rt=rt)

    def __str__(self) -> str:
        o = self.op.name.lower()
        if self.op in (Op.HALT, Op.NOP):
            return o
        if self.op == Op.LOADI:
            return f"{o} r{self.rd}, {self.imm}"
        if self.op in (Op.NOT, Op.SHL, Op.SHR, Op.MOV):
            return f"{o} r{self.rd}, r{self.rs}"
        if self.op == Op.LOAD:
            return f"{o} r{self.rd}, [r{self.rs}+{self.imm}]"
        if self.op == Op.STORE:
            return f"{o} [r{self.rs}+{self.imm}], r{self.rd}"
        if self.op == Op.JMP:
            return f"{o} {self.imm}"
        if self.op == Op.BEQZ:
            return f"{o} r{self.rs}, {self.imm}"
        return f"{o} r{self.rd}, r{self.rs}, r{self.rt}"


_ALU_FOR_OP = {
    Op.ADD: ALUOp.ADD, Op.SUB: ALUOp.SUB, Op.AND: ALUOp.AND,
    Op.OR: ALUOp.OR, Op.XOR: ALUOp.XOR, Op.NOT: ALUOp.NOT,
    Op.SHL: ALUOp.SHL, Op.SHR: ALUOp.SHR,
}


class SimpleCPU:
    """Multicycle execution of the teaching ISA, one stage per clock tick.

    Observable state after every tick: ``pc``, ``ir`` (instruction
    register), ``stage`` (what the *next* tick will do), register file,
    memory, cycle and instruction counters, and the last ALU flags.
    """

    def __init__(self, program: list[int] | None = None,
                 mem_words: int = 256) -> None:
        if mem_words <= 0:
            raise CircuitError("memory size must be positive")
        self.memory = [0] * mem_words
        if program:
            if len(program) > mem_words:
                raise MachineFault("program larger than memory")
            self.memory[:len(program)] = program
        self.regs = RegisterFile(NUM_REGS, WORD)
        self.pc = 0
        self.ir = 0
        self.stage = Stage.FETCH
        self.halted = False
        self.cycles = 0
        self.instructions_retired = 0
        self.flags_zero = False
        self.flags_sign = False
        self._decoded: Instruction | None = None
        self._exec_value: int | None = None
        self._next_pc = 0
        self._halt_pending = False

    # -- memory helpers ------------------------------------------------------

    def _mem_read(self, addr: int) -> int:
        if not 0 <= addr < len(self.memory):
            raise MachineFault(f"memory read out of range: {addr}")
        return self.memory[addr]

    def _mem_write(self, addr: int, value: int) -> None:
        if not 0 <= addr < len(self.memory):
            raise MachineFault(f"memory write out of range: {addr}")
        self.memory[addr] = value & 0xFFFF

    # -- clock ---------------------------------------------------------------

    def tick(self) -> Stage:
        """Advance one clock cycle; returns the stage that just ran."""
        if self.halted:
            return self.stage
        ran = self.stage
        if self.stage is Stage.FETCH:
            self.ir = self._mem_read(self.pc)
            self._next_pc = self.pc + 1
            self.stage = Stage.DECODE
        elif self.stage is Stage.DECODE:
            self._decoded = Instruction.decode(self.ir)
            self.stage = Stage.EXECUTE
        elif self.stage is Stage.EXECUTE:
            self._execute()
            self.stage = Stage.STORE
        else:  # STORE
            self._store()
            self.stage = Stage.FETCH
        self.cycles += 1
        return ran

    def _execute(self) -> None:
        ins = self._decoded
        assert ins is not None
        self._exec_value = None
        if ins.op in _ALU_FOR_OP:
            a = self.regs.read(ins.rs)
            b = self.regs.read(ins.rt) if ins.op in (
                Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR) else 0
            value, flags = alu_reference(_ALU_FOR_OP[ins.op], a, b, WORD)
            self._exec_value = value
            self.flags_zero = flags.zero
            self.flags_sign = flags.sign
        elif ins.op == Op.LOADI:
            self._exec_value = ins.imm & 0xFFFF
        elif ins.op == Op.MOV:
            self._exec_value = self.regs.read(ins.rs)
        elif ins.op == Op.LOAD:
            self._exec_value = self._mem_read(self.regs.read(ins.rs) + ins.imm)
        elif ins.op == Op.STORE:
            self._mem_write(self.regs.read(ins.rs) + ins.imm,
                            self.regs.read(ins.rd))
        elif ins.op == Op.JMP:
            self._next_pc = ins.imm & 0x3F
        elif ins.op == Op.BEQZ:
            if self.regs.read(ins.rs) == 0:
                self._next_pc = (self.pc + 1 + ins.imm) % len(self.memory)
        elif ins.op == Op.HALT:
            self._halt_pending = True  # takes effect after its STORE stage
        elif ins.op == Op.NOP:
            pass

    def _store(self) -> None:
        ins = self._decoded
        assert ins is not None
        if self._exec_value is not None and ins.op not in (Op.STORE, Op.JMP,
                                                           Op.BEQZ):
            self.regs.write(ins.rd, self._exec_value)
        self.regs.clock_edge()
        self.pc = self._next_pc
        self.instructions_retired += 1
        if self._halt_pending:
            self.halted = True

    # -- drivers ---------------------------------------------------------------

    def step(self) -> Instruction | None:
        """Run one complete instruction (four ticks); None once halted."""
        if self.halted:
            return None
        while True:
            self.tick()
            if self.stage is Stage.FETCH or self.halted:
                break
        return self._decoded

    def run(self, max_instructions: int = 100_000) -> int:
        """Run until HALT; returns instructions retired. Guards runaways."""
        while not self.halted:
            if self.instructions_retired >= max_instructions:
                raise MachineFault("instruction limit exceeded (infinite loop?)")
            self.step()
        return self.instructions_retired

    @property
    def cpi(self) -> float:
        """Cycles per instruction — 4.0 for this multicycle design."""
        if self.instructions_retired == 0:
            return 0.0
        return self.cycles / self.instructions_retired


def assemble(lines: list[str]) -> list[int]:
    """Assemble the teaching ISA's textual form into memory words.

    Accepts the mnemonics printed by ``Instruction.__str__`` (labels are
    not supported — the lecture programs are a handful of lines). Comments
    start with ``#``.
    """
    words: list[int] = []
    for raw in lines:
        text = raw.split("#", 1)[0].strip().lower()
        if not text:
            continue
        parts = text.replace(",", " ").split()
        mnem = parts[0]
        args = parts[1:]

        def reg(tok: str) -> int:
            if not tok.startswith("r") or not tok[1:].isdigit():
                raise IllegalInstruction(f"bad register {tok!r} in {raw!r}")
            n = int(tok[1:])
            if not 0 <= n < NUM_REGS:
                raise IllegalInstruction(f"no register {tok!r}")
            return n

        try:
            op = Op[mnem.upper()]
        except KeyError:
            raise IllegalInstruction(f"unknown mnemonic {mnem!r}") from None

        if op in (Op.HALT, Op.NOP):
            ins = Instruction(op)
        elif op == Op.LOADI:
            ins = Instruction(op, rd=reg(args[0]), imm=int(args[1]))
        elif op in (Op.NOT, Op.SHL, Op.SHR, Op.MOV):
            ins = Instruction(op, rd=reg(args[0]), rs=reg(args[1]))
        elif op == Op.JMP:
            ins = Instruction(op, imm=int(args[0]))
        elif op == Op.BEQZ:
            ins = Instruction(op, rs=reg(args[0]), imm=int(args[1]))
        elif op == Op.LOAD:
            # load rd, [rs+k]
            mem = args[1].strip("[]")
            base, _, off = mem.partition("+")
            ins = Instruction(op, rd=reg(args[0]), rs=reg(base),
                              imm=int(off or 0))
        elif op == Op.STORE:
            # store [rs+k], rd
            mem = args[0].strip("[]")
            base, _, off = mem.partition("+")
            ins = Instruction(op, rd=reg(args[1]), rs=reg(base),
                              imm=int(off or 0))
        else:
            ins = Instruction(op, rd=reg(args[0]), rs=reg(args[1]),
                              rt=reg(args[2]))
        words.append(ins.encode())
    return words
