"""Instruction pipelining as an efficiency story (§III-A, *Architecture*).

"We discuss how pipelining makes efficient use of CPU circuitry resulting
in an improved instructions per cycle rate." This module makes that
claim measurable: it runs the same instruction stream through

* a **multicycle** timing model (one stage at a time: 4–5 cycles per
  instruction, the :class:`~repro.circuits.cpu.SimpleCPU` design), and
* a classic **5-stage in-order pipeline** (IF ID EX MEM WB) with
  read-after-write hazard stalls, optional forwarding, and a branch
  misprediction penalty,

and reports cycles, stalls, and instructions-per-cycle for each.
Benchmark E7 regenerates the pipelining comparison from these models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.cpu import Instruction, Op

#: ops that write their rd register
_WRITES_RD = {Op.LOADI, Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR,
              Op.NOT, Op.SHL, Op.SHR, Op.LOAD, Op.MOV}
#: ops that read rs / rt
_READS_RS = {Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR, Op.NOT, Op.SHL,
             Op.SHR, Op.LOAD, Op.STORE, Op.MOV, Op.BEQZ}
_READS_RT = {Op.ADD, Op.SUB, Op.AND, Op.OR, Op.XOR}


def registers_read(ins: Instruction) -> set[int]:
    reads: set[int] = set()
    if ins.op in _READS_RS:
        reads.add(ins.rs)
    if ins.op in _READS_RT:
        reads.add(ins.rt)
    if ins.op == Op.STORE:
        reads.add(ins.rd)  # STORE reads the value register named rd
    return reads


def register_written(ins: Instruction) -> int | None:
    return ins.rd if ins.op in _WRITES_RD else None


def is_branch(ins: Instruction) -> bool:
    return ins.op in (Op.JMP, Op.BEQZ)


def is_load(ins: Instruction) -> bool:
    return ins.op == Op.LOAD


@dataclass
class PipelineConfig:
    """Timing knobs for the 5-stage pipeline model."""
    stages: int = 5
    forwarding: bool = True
    #: extra cycles lost when a taken/unknown branch flushes the front end
    branch_penalty: int = 2

    def __post_init__(self) -> None:
        if self.stages < 2:
            raise ValueError("a pipeline needs at least 2 stages")
        if self.branch_penalty < 0:
            raise ValueError("branch penalty cannot be negative")


@dataclass
class TimingResult:
    """Cycles and throughput for one timing model over one stream."""
    model: str
    instructions: int
    cycles: int
    stalls: int = 0
    branch_flushes: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0


def simulate_multicycle(instrs: list[Instruction],
                        cycles_per_instruction: int = 4) -> TimingResult:
    """The unpipelined baseline: every instruction occupies the whole CPU."""
    if cycles_per_instruction < 1:
        raise ValueError("cycles per instruction must be >= 1")
    return TimingResult(model=f"multicycle({cycles_per_instruction})",
                        instructions=len(instrs),
                        cycles=cycles_per_instruction * len(instrs))


def simulate_pipeline(instrs: list[Instruction],
                      config: PipelineConfig | None = None) -> TimingResult:
    """In-order scoreboard model of the classic 5-stage pipeline.

    With forwarding, only the load-use case stalls (1 cycle); without it,
    a dependent instruction waits until the producer's write-back. Branches
    cost ``branch_penalty`` flush cycles (no predictor, matching the
    course's introductory treatment).
    """
    cfg = config or PipelineConfig()
    cycles = 0
    stalls = 0
    flushes = 0
    #: cycle at which each register's in-flight value becomes usable
    ready_at: dict[int, int] = {}
    issue_cycle = 0

    for ins in instrs:
        # Stall until every source register is available.
        need = 0
        for r in registers_read(ins):
            need = max(need, ready_at.get(r, 0))
        if need > issue_cycle:
            stalls += need - issue_cycle
            issue_cycle = need

        dst = register_written(ins)
        if dst is not None:
            if cfg.forwarding:
                # ALU results forward after EX (+1); loads after MEM (+2).
                ready_at[dst] = issue_cycle + (2 if is_load(ins) else 1)
            else:
                # Consumer must wait for write-back.
                ready_at[dst] = issue_cycle + cfg.stages - 1

        issue_cycle += 1
        if is_branch(ins):
            flushes += 1
            issue_cycle += cfg.branch_penalty

    if instrs:
        # Drain: the last instruction still walks the remaining stages.
        cycles = issue_cycle + cfg.stages - 1
    return TimingResult(model=f"pipeline({cfg.stages}-stage, "
                              f"fwd={'on' if cfg.forwarding else 'off'})",
                        instructions=len(instrs), cycles=cycles,
                        stalls=stalls, branch_flushes=flushes)


@dataclass
class PipelineComparison:
    """Side-by-side timing of the same stream on both models (bench E7)."""
    multicycle: TimingResult
    pipelined: TimingResult

    @property
    def speedup(self) -> float:
        return self.multicycle.cycles / self.pipelined.cycles

    def rows(self) -> list[tuple[str, int, int, float, float]]:
        out = []
        for r in (self.multicycle, self.pipelined):
            out.append((r.model, r.instructions, r.cycles,
                        round(r.cpi, 3), round(r.ipc, 3)))
        return out


def compare(instrs: list[Instruction],
            config: PipelineConfig | None = None,
            cycles_per_instruction: int = 4) -> PipelineComparison:
    """Time one stream on both models; returns the side-by-side."""
    return PipelineComparison(
        multicycle=simulate_multicycle(instrs, cycles_per_instruction),
        pipelined=simulate_pipeline(instrs, config))
