"""Digital circuits and the simple CPU (CS 31 §III-A, *Architecture*).

The repo's Logisim substitute: wires/buses with a settle-loop simulator,
gates, the combinational ladder (half adder → full adder → ripple-carry
adder; decoder → mux; comparators; shifters), feedback latches, registers,
the Lab 3 eight-operation/five-flag ALU, a register file, the multicycle
:class:`SimpleCPU`, and the pipelining timing models behind bench E7.
"""

from repro.circuits.signals import Bus, Circuit, ClockedComponent, Component, Wire
from repro.circuits.gates import (
    And, Buffer, Gate, Nand, Nor, Not, Or, Xnor, Xor, truth_table,
)
from repro.circuits.combinational import (
    BusMux,
    Constant,
    Decoder,
    EqualityComparator,
    FullAdder,
    HalfAdder,
    Mux2,
    MuxN,
    RippleCarryAdder,
    ShiftLeftOne,
    ShiftRightOne,
    SignExtender,
    SubCircuit,
    Subtractor,
    ZeroDetector,
)
from repro.circuits.sequential import (
    ClockDivider,
    Counter,
    GatedDLatch,
    MasterSlaveDFlipFlop,
    Register,
    RSLatch,
)
from repro.circuits.alu import ALU, ALUFlags, ALUOp, alu_reference
from repro.circuits.regfile import RegisterFile
from repro.circuits.cpu import Instruction, Op, SimpleCPU, Stage, assemble
from repro.circuits.pipeline import (
    PipelineComparison,
    PipelineConfig,
    TimingResult,
    compare,
    simulate_multicycle,
    simulate_pipeline,
)

__all__ = [
    "Wire", "Bus", "Circuit", "Component", "ClockedComponent",
    "Gate", "And", "Or", "Not", "Nand", "Nor", "Xor", "Xnor", "Buffer",
    "truth_table",
    "SubCircuit", "Constant", "HalfAdder", "FullAdder", "RippleCarryAdder",
    "Subtractor", "SignExtender", "Mux2", "MuxN", "BusMux", "Decoder",
    "EqualityComparator", "ZeroDetector", "ShiftLeftOne", "ShiftRightOne",
    "RSLatch", "GatedDLatch", "MasterSlaveDFlipFlop", "Register",
    "Counter", "ClockDivider",
    "ALU", "ALUOp", "ALUFlags", "alu_reference", "RegisterFile",
    "SimpleCPU", "Instruction", "Op", "Stage", "assemble",
    "PipelineConfig", "TimingResult", "PipelineComparison",
    "simulate_multicycle", "simulate_pipeline", "compare",
]
