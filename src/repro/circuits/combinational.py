"""Combinational building blocks, composed from gates.

"We stress abstraction along the way, building increasingly complex
circuits from simpler ones" (§III-A). Each class here is a
:class:`SubCircuit` whose internals are real gate components, so students
(and tests) can inspect the composition: half adder → full adder →
ripple-carry adder; decoder → mux; XNOR column → equality comparator.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits.gates import And, Buffer, Gate, Nor, Not, Or, Xnor, Xor
from repro.circuits.signals import Bus, Component, Wire
from repro.errors import CircuitError, WidthMismatch


class Constant(Component):
    """Drives a wire with a fixed 0 or 1 (Logisim's constant pin)."""

    def __init__(self, output: Wire, value: int, name: str = "") -> None:
        if value not in (0, 1):
            raise CircuitError("constant must be 0 or 1")
        self.output = output
        self.value = value
        self.name = name or f"const{value}"

    def evaluate(self) -> bool:
        return self.output.set(self.value)

    def output_wires(self) -> Sequence[Wire]:
        return (self.output,)


class SubCircuit(Component):
    """A component built out of other components.

    Evaluation simply evaluates the parts in insertion order; the outer
    settle loop provides the fixed-point iteration, so internal feedback
    and arbitrary wiring orders still converge.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__
        self.parts: list[Component] = []

    def add(self, component: Component) -> Component:
        self.parts.append(component)
        return component

    def evaluate(self) -> bool:
        changed = False
        for p in self.parts:
            if p.evaluate():
                changed = True
        return changed

    @property
    def gate_count(self) -> int:
        """Number of primitive gates inside (for 'cost of hardware' demos)."""
        total = 0
        for p in self.parts:
            if isinstance(p, SubCircuit):
                total += p.gate_count
            elif isinstance(p, Gate):
                total += 1
        return total


class HalfAdder(SubCircuit):
    """sum = a XOR b, carry = a AND b."""

    def __init__(self, a: Wire, b: Wire, sum_: Wire, carry: Wire) -> None:
        super().__init__()
        self.add(Xor([a, b], sum_))
        self.add(And([a, b], carry))


class FullAdder(SubCircuit):
    """One-bit adder with carry-in: two half adders plus an OR."""

    def __init__(self, a: Wire, b: Wire, cin: Wire,
                 sum_: Wire, cout: Wire) -> None:
        super().__init__()
        s1 = Wire("ha1.s")
        c1 = Wire("ha1.c")
        c2 = Wire("ha2.c")
        self.add(HalfAdder(a, b, s1, c1))
        self.add(HalfAdder(s1, cin, sum_, c2))
        self.add(Or([c1, c2], cout))


class RippleCarryAdder(SubCircuit):
    """N-bit adder chaining full adders through their carries.

    Exposes ``carries`` — the carry *into* each bit plus the final carry
    out — so the ALU can compute the signed-overflow flag the way hardware
    does (carry into MSB XOR carry out of MSB).
    """

    def __init__(self, a: Bus, b: Bus, cin: Wire, sum_: Bus, cout: Wire) -> None:
        super().__init__()
        if not (a.width == b.width == sum_.width):
            raise WidthMismatch("adder operand/result widths differ")
        n = a.width
        self.carries: list[Wire] = [cin]
        for i in range(n):
            c_out = cout if i == n - 1 else Wire(f"carry{i + 1}")
            self.add(FullAdder(a[i], b[i], self.carries[i], sum_[i], c_out))
            self.carries.append(c_out)


class Subtractor(SubCircuit):
    """a - b via two's complement: invert b, add with carry-in 1.

    ``cout`` here is the raw adder carry-out; note for subtraction the x86
    borrow flag is its complement.
    """

    def __init__(self, a: Bus, b: Bus, diff: Bus, cout: Wire) -> None:
        super().__init__()
        if not (a.width == b.width == diff.width):
            raise WidthMismatch("subtractor widths differ")
        n = a.width
        b_inv = Bus(n, "b_inv")
        for i in range(n):
            self.add(Not(b[i], b_inv[i]))
        one = Wire("one")
        self.add(Constant(one, 1))
        self.adder = RippleCarryAdder(a, b_inv, one, diff, cout)
        self.add(self.adder)

    @property
    def carries(self) -> list[Wire]:
        return self.adder.carries


class SignExtender(SubCircuit):
    """Lab 3's first standalone circuit: replicate the sign bit upward."""

    def __init__(self, input_: Bus, output: Bus) -> None:
        super().__init__()
        if output.width < input_.width:
            raise WidthMismatch("sign extender output narrower than input")
        n = input_.width
        for i in range(n):
            self.add(Buffer(input_[i], output[i]))
        msb = input_[n - 1]
        for i in range(n, output.width):
            self.add(Buffer(msb, output[i]))


class Mux2(SubCircuit):
    """One-bit 2-way multiplexer: out = sel ? b : a."""

    def __init__(self, a: Wire, b: Wire, sel: Wire, out: Wire) -> None:
        super().__init__()
        nsel = Wire("nsel")
        t0 = Wire("t0")
        t1 = Wire("t1")
        self.add(Not(sel, nsel))
        self.add(And([a, nsel], t0))
        self.add(And([b, sel], t1))
        self.add(Or([t0, t1], out))


class Decoder(SubCircuit):
    """n-to-2**n one-hot decoder (select logic for muxes/register files)."""

    def __init__(self, sel: Bus, outputs: Sequence[Wire]) -> None:
        super().__init__()
        n = sel.width
        if len(outputs) != (1 << n):
            raise WidthMismatch(
                f"{n}-bit decoder needs {1 << n} outputs, got {len(outputs)}")
        nsel = Bus(n, "nsel")
        for i in range(n):
            self.add(Not(sel[i], nsel[i]))
        for code, out in enumerate(outputs):
            terms = [sel[i] if (code >> i) & 1 else nsel[i] for i in range(n)]
            if n == 1:
                self.add(Buffer(terms[0], out))
            else:
                self.add(And(terms, out))


class MuxN(SubCircuit):
    """One-bit 2**n-way mux built from a decoder and an AND-OR array."""

    def __init__(self, inputs: Sequence[Wire], sel: Bus, out: Wire) -> None:
        super().__init__()
        n = sel.width
        if len(inputs) != (1 << n):
            raise WidthMismatch(
                f"{n}-bit select needs {1 << n} inputs, got {len(inputs)}")
        hot = [Wire(f"hot{i}") for i in range(len(inputs))]
        self.add(Decoder(sel, hot))
        terms = []
        for i, w in enumerate(inputs):
            t = Wire(f"term{i}")
            self.add(And([w, hot[i]], t))
            terms.append(t)
        self.add(Or(terms, out))


class BusMux(SubCircuit):
    """2**n-way mux over equal-width buses (per-bit MuxN array)."""

    def __init__(self, inputs: Sequence[Bus], sel: Bus, out: Bus) -> None:
        super().__init__()
        if not inputs:
            raise CircuitError("bus mux needs inputs")
        width = out.width
        for b in inputs:
            if b.width != width:
                raise WidthMismatch("bus mux input width differs from output")
        for bit in range(width):
            self.add(MuxN([b[bit] for b in inputs], sel, out[bit]))


class EqualityComparator(SubCircuit):
    """out = 1 iff a == b: XNOR each column, AND the results."""

    def __init__(self, a: Bus, b: Bus, out: Wire) -> None:
        super().__init__()
        if a.width != b.width:
            raise WidthMismatch("comparator widths differ")
        cols = []
        for i in range(a.width):
            c = Wire(f"eq{i}")
            self.add(Xnor([a[i], b[i]], c))
            cols.append(c)
        if len(cols) == 1:
            self.add(Buffer(cols[0], out))
        else:
            self.add(And(cols, out))


class ZeroDetector(SubCircuit):
    """out = 1 iff the bus is all zeros (NOR of every bit) — the ZF flag."""

    def __init__(self, value: Bus, out: Wire) -> None:
        super().__init__()
        if value.width == 1:
            self.add(Not(value[0], out))
        else:
            self.add(Nor(list(value), out))


class ShiftLeftOne(SubCircuit):
    """Fixed shift-by-one: pure wire routing plus a constant 0 into bit 0.

    ``shifted_out`` receives the bit that falls off the top (for CF).
    """

    def __init__(self, input_: Bus, output: Bus, shifted_out: Wire) -> None:
        super().__init__()
        if input_.width != output.width:
            raise WidthMismatch("shifter widths differ")
        n = input_.width
        zero = Wire("zero")
        self.add(Constant(zero, 0))
        self.add(Buffer(zero, output[0]))
        for i in range(1, n):
            self.add(Buffer(input_[i - 1], output[i]))
        self.add(Buffer(input_[n - 1], shifted_out))


class ShiftRightOne(SubCircuit):
    """Fixed logical shift-by-one toward the LSB; bit 0 exits via shifted_out."""

    def __init__(self, input_: Bus, output: Bus, shifted_out: Wire) -> None:
        super().__init__()
        if input_.width != output.width:
            raise WidthMismatch("shifter widths differ")
        n = input_.width
        zero = Wire("zero")
        self.add(Constant(zero, 0))
        self.add(Buffer(zero, output[n - 1]))
        for i in range(n - 1):
            self.add(Buffer(input_[i + 1], output[i]))
        self.add(Buffer(input_[0], shifted_out))
