"""Basic logic gates — the bottom rung of the course's abstraction ladder.

CS 31 starts "from basic AND, OR, and NOT logic gates" (§III-A,
*Architecture*); NAND/NOR/XOR/XNOR follow as compositions but get native
gates here because Lab 3 uses them directly. Every gate is a
:class:`~repro.circuits.signals.Component` reading input wires and driving
one output wire.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.circuits.signals import Component, Wire
from repro.errors import CircuitError


class Gate(Component):
    """An n-input, 1-output logic gate."""

    MIN_INPUTS = 2

    def __init__(self, inputs: Sequence[Wire], output: Wire,
                 name: str = "") -> None:
        if len(inputs) < self.MIN_INPUTS:
            raise CircuitError(
                f"{type(self).__name__} needs >= {self.MIN_INPUTS} inputs")
        self.inputs = list(inputs)
        self.output = output
        self.name = name or type(self).__name__

    def logic(self, values: Sequence[int]) -> int:
        raise NotImplementedError

    def evaluate(self) -> bool:
        return self.output.set(self.logic([w.value for w in self.inputs]))

    def output_wires(self) -> Sequence[Wire]:
        return (self.output,)


class And(Gate):
    def logic(self, values: Sequence[int]) -> int:
        return int(all(values))


class Or(Gate):
    def logic(self, values: Sequence[int]) -> int:
        return int(any(values))


class Not(Gate):
    MIN_INPUTS = 1

    def __init__(self, input_: Wire, output: Wire, name: str = "") -> None:
        super().__init__([input_], output, name)

    def logic(self, values: Sequence[int]) -> int:
        return 1 - values[0]


class Nand(Gate):
    def logic(self, values: Sequence[int]) -> int:
        return int(not all(values))


class Nor(Gate):
    def logic(self, values: Sequence[int]) -> int:
        return int(not any(values))


class Xor(Gate):
    def logic(self, values: Sequence[int]) -> int:
        return int(sum(values) % 2 == 1)


class Xnor(Gate):
    def logic(self, values: Sequence[int]) -> int:
        return int(sum(values) % 2 == 0)


class Buffer(Gate):
    """Pass-through; used to forward a wire into another sub-circuit."""

    MIN_INPUTS = 1

    def __init__(self, input_: Wire, output: Wire, name: str = "") -> None:
        super().__init__([input_], output, name)

    def logic(self, values: Sequence[int]) -> int:
        return values[0]


def truth_table(build: Callable[[Sequence[Wire], Wire], Gate],
                n_inputs: int) -> list[tuple[tuple[int, ...], int]]:
    """Enumerate a gate's truth table — the circuits homework's core drill.

    ``build(inputs, output)`` constructs the gate under test.
    """
    rows: list[tuple[tuple[int, ...], int]] = []
    for combo in range(1 << n_inputs):
        ins = [Wire(f"in{i}") for i in range(n_inputs)]
        out = Wire("out")
        gate = build(ins, out)
        for i, w in enumerate(ins):
            w.set((combo >> (n_inputs - 1 - i)) & 1)
        gate.evaluate()
        bits = tuple((combo >> (n_inputs - 1 - i)) & 1 for i in range(n_inputs))
        rows.append((bits, out.value))
    return rows
