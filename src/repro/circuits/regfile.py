"""Register file — the Logisim-style storage block of the simple CPU.

Lab 3 builds the ALU from gates; the CPU lecture then composes it with a
register file, PC, and control. Logisim provides registers as built-in
black boxes, so this register file is modelled at that same block level:
combinational read ports, one edge-triggered write port.
"""

from __future__ import annotations

from repro.errors import CircuitError


class RegisterFile:
    """``count`` registers of ``width`` bits with 2 read / 1 write ports.

    Reads are combinational (immediate); writes are staged with
    :meth:`write` and committed at the clock edge via :meth:`clock_edge`,
    mirroring edge-triggered hardware so a read in the same cycle sees the
    *old* value.
    """

    def __init__(self, count: int = 8, width: int = 16) -> None:
        if count <= 0 or width <= 0:
            raise CircuitError("register file needs positive count/width")
        self.count = count
        self.width = width
        self._regs = [0] * count
        self._pending: tuple[int, int] | None = None

    def _check(self, index: int) -> None:
        if not 0 <= index < self.count:
            raise CircuitError(f"register index {index} out of range")

    def read(self, index: int) -> int:
        self._check(index)
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        """Stage a write for the next clock edge (last write wins)."""
        self._check(index)
        self._pending = (index, value & ((1 << self.width) - 1))

    def clock_edge(self) -> None:
        if self._pending is not None:
            idx, val = self._pending
            self._regs[idx] = val
            self._pending = None

    def poke(self, index: int, value: int) -> None:
        """Directly set a register (test/debug backdoor, like Logisim)."""
        self._check(index)
        self._regs[index] = value & ((1 << self.width) - 1)

    def dump(self) -> list[int]:
        return list(self._regs)
