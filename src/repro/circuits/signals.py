"""Wires, buses, and the settle-loop simulator for gate-level circuits.

This is the repo's stand-in for Logisim (§III-B, Lab 3). Circuits are
graphs of components connected by single-bit :class:`Wire` objects; a
:class:`Circuit` evaluates all components repeatedly until no wire changes
("settling"), which handles both pure combinational logic and the feedback
loops inside latches. Clocked (sequential) behaviour is layered on top via
:meth:`Circuit.tick`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.binary.bits import BitVector
from repro.errors import CircuitError


class Wire:
    """A single-bit signal.

    Wires carry 0 or 1. They start at 0 (Logisim's default for our
    purposes; the course does not use tri-state logic).
    """

    __slots__ = ("name", "_value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def set(self, value: int) -> bool:
        """Drive the wire; returns True if the value changed."""
        if value not in (0, 1):
            raise CircuitError(f"wire {self.name!r} driven with {value!r}")
        changed = value != self._value
        self._value = value
        return changed

    def __repr__(self) -> str:
        return f"Wire({self.name!r}={self._value})"


class Bus:
    """An ordered group of wires; index 0 is the least significant bit."""

    def __init__(self, width: int, name: str = "") -> None:
        if width <= 0:
            raise CircuitError("bus width must be positive")
        self.name = name
        self.wires = [Wire(f"{name}[{i}]") for i in range(width)]

    @property
    def width(self) -> int:
        return len(self.wires)

    def __getitem__(self, i: int) -> Wire:
        return self.wires[i]

    def __iter__(self):
        return iter(self.wires)

    @property
    def value(self) -> int:
        """Read the bus as an unsigned integer."""
        v = 0
        for i, w in enumerate(self.wires):
            v |= w.value << i
        return v

    def set(self, value: int) -> None:
        """Drive the whole bus from an unsigned integer."""
        if not 0 <= value < (1 << self.width):
            raise CircuitError(
                f"{value} does not fit on {self.width}-bit bus {self.name!r}")
        for i, w in enumerate(self.wires):
            w.set((value >> i) & 1)

    def set_bits(self, pattern: BitVector) -> None:
        if pattern.width != self.width:
            raise CircuitError(
                f"pattern width {pattern.width} != bus width {self.width}")
        self.set(pattern.raw)

    def to_bits(self) -> BitVector:
        return BitVector(self.value, self.width)

    def __repr__(self) -> str:
        return f"Bus({self.name!r}, width={self.width}, value={self.value:#x})"


class Component:
    """Base class: reads input wires, drives output wires.

    Subclasses implement :meth:`evaluate`, which must return True if any
    output wire changed (the settle loop uses this for its fixed point).
    """

    name: str = ""

    def evaluate(self) -> bool:
        raise NotImplementedError

    def output_wires(self) -> Sequence[Wire]:
        """The wires this component drives (used for wiring sanity checks)."""
        return ()


class ClockedComponent(Component):
    """A component with state that updates on the clock edge.

    ``evaluate`` propagates the *stored* state to outputs; ``on_clock_edge``
    captures inputs into state. The circuit calls on_clock_edge for every
    clocked component simultaneously, modelling edge-triggered registers.
    """

    def on_clock_edge(self) -> None:
        raise NotImplementedError


class Circuit:
    """A bag of components with a settle-loop evaluator and a clock.

    ``settle()`` re-evaluates every component until outputs stop changing —
    sufficient for combinational logic and for latch feedback. ``tick()``
    performs one clock cycle: settle, capture all clocked state on the
    edge, settle again.
    """

    #: Safety valve: a correct circuit of N components settles in <= N
    #: passes; oscillating feedback (e.g. a NOT gate feeding itself) won't.
    MAX_PASSES_FACTOR = 4

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.components: list[Component] = []
        self.cycle_count = 0

    def add(self, component: Component) -> Component:
        self.components.append(component)
        return component

    def extend(self, components: Iterable[Component]) -> None:
        self.components.extend(components)

    def settle(self) -> int:
        """Evaluate to a fixed point; returns the number of passes used."""
        limit = max(8, self.MAX_PASSES_FACTOR * max(1, len(self.components)))
        for passes in range(1, limit + 1):
            changed = False
            for c in self.components:
                if c.evaluate():
                    changed = True
            if not changed:
                return passes
        raise CircuitError(
            f"circuit {self.name!r} did not settle after {limit} passes "
            "(oscillating feedback?)")

    def tick(self) -> None:
        """One full clock cycle (combinational settle → edge → settle)."""
        self.settle()
        for c in self.components:
            if isinstance(c, ClockedComponent):
                c.on_clock_edge()
        self.settle()
        self.cycle_count += 1

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.tick()
