"""Sequential (stateful) circuits: latches, registers, counters.

The course builds storage bottom-up: cross-coupled NOR gates make an R-S
latch, gating it makes a D latch, and banks of edge-triggered flip-flops
(modelled here as :class:`Register`) make the register file and program
counter. The R-S and D latches below are *real* feedback circuits — their
state lives in the wires, found by the settle loop — while Register is an
edge-triggered abstraction, matching how Logisim mixes the two levels.
"""

from __future__ import annotations

from typing import Sequence

from repro.circuits.combinational import SubCircuit
from repro.circuits.gates import And, Nor, Not
from repro.circuits.signals import Bus, ClockedComponent, Wire
from repro.errors import CircuitError


class RSLatch(SubCircuit):
    """Cross-coupled NOR R-S latch.

    S=1 sets Q, R=1 resets Q, S=R=0 holds. S=R=1 is the forbidden input
    (both outputs driven low); callers can check :meth:`forbidden`.
    """

    def __init__(self, s: Wire, r: Wire, q: Wire, q_bar: Wire) -> None:
        super().__init__()
        self.s, self.r, self.q, self.q_bar = s, r, q, q_bar
        self.add(Nor([r, q_bar], q))
        self.add(Nor([s, q], q_bar))

    def forbidden(self) -> bool:
        return self.s.value == 1 and self.r.value == 1


class GatedDLatch(SubCircuit):
    """D latch: an R-S latch guarded by a write-enable gate.

    When ``enable`` is high, Q follows D (transparent); when low, Q holds.
    The gating ANDs make the forbidden R-S input unreachable.
    """

    def __init__(self, d: Wire, enable: Wire, q: Wire, q_bar: Wire) -> None:
        super().__init__()
        nd = Wire("nd")
        s = Wire("s")
        r = Wire("r")
        self.add(Not(d, nd))
        self.add(And([d, enable], s))
        self.add(And([nd, enable], r))
        self.latch = RSLatch(s, r, q, q_bar)
        self.add(self.latch)


class MasterSlaveDFlipFlop(SubCircuit):
    """An edge-triggered D flip-flop built from two gated D latches.

    The gate-level answer to "how does edge-triggering actually work":
    the master latch is transparent while the clock is low, the slave
    while it is high, so Q updates only at the rising edge. Completes
    the storage ladder between :class:`GatedDLatch` (level-sensitive)
    and the block-level :class:`Register`.

    Drive ``d`` and ``clk`` yourself and settle the circuit; use
    :meth:`clock_cycle` for the common low→high→low sequence.
    """

    def __init__(self, d: Wire, clk: Wire, q: Wire, q_bar: Wire) -> None:
        super().__init__()
        self.d, self.clk = d, clk
        nclk = Wire("nclk")
        mid_q = Wire("master.q")
        mid_qb = Wire("master.qb")
        self.add(Not(clk, nclk))
        self.add(GatedDLatch(d, nclk, mid_q, mid_qb))   # master: clk low
        self.add(GatedDLatch(mid_q, clk, q, q_bar))     # slave: clk high


class Register(ClockedComponent):
    """An n-bit edge-triggered register.

    On each clock edge, if ``write_enable`` is high (or absent), the value
    on ``d`` is captured; ``q`` always shows the stored value. This is the
    abstraction Logisim's register component provides over banks of
    flip-flops.
    """

    def __init__(self, d: Bus, q: Bus, write_enable: Wire | None = None,
                 name: str = "reg") -> None:
        if d.width != q.width:
            raise CircuitError("register d/q widths differ")
        self.d = d
        self.q = q
        self.write_enable = write_enable
        self.name = name
        self.state = 0

    def evaluate(self) -> bool:
        before = self.q.value
        self.q.set(self.state)
        return self.q.value != before

    def on_clock_edge(self) -> None:
        if self.write_enable is None or self.write_enable.value == 1:
            self.state = self.d.value

    def output_wires(self) -> Sequence[Wire]:
        return list(self.q)


class Counter(ClockedComponent):
    """Program-counter-style register: +1 each tick unless loaded or held.

    Priority: load (capture ``d``) > increment. ``q`` shows the count.
    """

    def __init__(self, q: Bus, d: Bus | None = None,
                 load: Wire | None = None, name: str = "counter") -> None:
        if d is not None and d.width != q.width:
            raise CircuitError("counter d/q widths differ")
        self.q = q
        self.d = d
        self.load = load
        self.name = name
        self.state = 0

    def evaluate(self) -> bool:
        before = self.q.value
        self.q.set(self.state)
        return self.q.value != before

    def on_clock_edge(self) -> None:
        if (self.load is not None and self.load.value == 1
                and self.d is not None):
            self.state = self.d.value
        else:
            self.state = (self.state + 1) % (1 << self.q.width)


class ClockDivider(ClockedComponent):
    """Toggles its output every ``period`` ticks — a visible 'clock' signal.

    Used in lecture demos to show clock-driven execution.
    """

    def __init__(self, output: Wire, period: int = 1) -> None:
        if period < 1:
            raise CircuitError("period must be >= 1")
        self.output = output
        self.period = period
        self.ticks = 0
        self.level = 0
        self.name = "clkdiv"

    def evaluate(self) -> bool:
        return self.output.set(self.level)

    def on_clock_edge(self) -> None:
        self.ticks += 1
        if self.ticks % self.period == 0:
            self.level ^= 1
