"""repro — an executable reproduction of CS 31, Swarthmore's second course.

This library implements, as runnable Python systems, every substrate of
*Introducing Parallel Computing in a Second CS Course* (Newhall, Webb,
Chaganti, Danner; EduPar/IPDPS 2022): the vertical slice through the
computer (binary → circuits → ISA/assembly → C memory model → memory
hierarchy/caches → virtual memory → OS processes) and the shared-memory
parallelism layer the course builds on top, plus the curriculum/evaluation
model used to regenerate the paper's Table I and Figure 1.

Subpackages
-----------
binary      bit patterns, two's complement, fixed-width arithmetic, C types
circuits    gate-level simulator: adders, latches, the Lab 3 ALU, a CPU
isa         IA-32-subset assembler, machine, debugger, binary maze, C compiler
clib        C address space, pointers, malloc/free, memcheck, string library
memory      storage devices, memory hierarchy, cache simulator, traces
vm          page tables, TLB, page faults, effective access time
ossim       simulated kernel: processes, fork/exec/wait, signals, shell
core        pthread-style threads on a simulated multicore; sync; speedup
life        Conway's Game of Life labs, serial and parallel, with ParaVis
analysis    static analysis: CFG/dataflow checks over the C subset, static
            lock-order/race-candidate checking, assembler lint
obs         shared event tracing/counters, Chrome-trace export, profiles
system      full-system memory bus (flat/cached/virtual) + shared costing
cluster     shardable nodes over a simulated network: halo-exchange Life,
            map-reduce trace engines, distributed producer/consumer
curriculum  TCPP coverage (Table I), labs/homework registry, survey (Fig. 1)
homework    mechanical generators + checkers for the written homeworks
"""

__version__ = "1.0.0"

__all__ = [
    "binary", "circuits", "isa", "clib", "memory", "vm", "ossim",
    "core", "life", "curriculum", "homework", "analysis", "obs",
    "system", "cluster",
]
