"""Table I: the TCPP topics CS 31 covers, mapped to this library.

The paper's only table lists "Main TCPP topics covered in CS 31" in four
categories (Pervasive, Architecture, Programming, Algorithms). This
module reproduces it verbatim — and goes one step further than the
paper can: every topic is mapped to the repro module(s) that implement
or exercise it, and :func:`coverage_check` verifies those modules
actually import. Bench E1 prints the table and runs the check.
"""

from __future__ import annotations

import enum
import importlib
from dataclasses import dataclass

from repro._util import format_table


class TcppCategory(enum.Enum):
    PERVASIVE = "Pervasive"
    ARCHITECTURE = "Architecture"
    PROGRAMMING = "Programming"
    ALGORITHMS = "Algorithms"


@dataclass(frozen=True)
class TcppTopic:
    """One TCPP topic with its implementing module(s)."""
    name: str
    category: TcppCategory
    modules: tuple[str, ...]


def _t(name: str, category: TcppCategory, *modules: str) -> TcppTopic:
    return TcppTopic(name, category, modules)


#: Table I, row for row (topic spellings follow the paper).
TABLE_I: tuple[TcppTopic, ...] = (
    # Pervasive
    _t("concurrency", TcppCategory.PERVASIVE,
       "repro.ossim.kernel", "repro.core.machine"),
    _t("asynchrony", TcppCategory.PERVASIVE, "repro.ossim.kernel"),
    _t("locality", TcppCategory.PERVASIVE, "repro.memory.locality"),
    _t("performance in many contexts", TcppCategory.PERVASIVE,
       "repro.memory.hierarchy", "repro.core.metrics",
       "repro.circuits.pipeline"),
    # Architecture
    _t("multicore", TcppCategory.ARCHITECTURE, "repro.core.machine"),
    _t("caching", TcppCategory.ARCHITECTURE, "repro.memory.cache"),
    _t("latency", TcppCategory.ARCHITECTURE, "repro.memory.devices"),
    _t("bandwidth", TcppCategory.ARCHITECTURE, "repro.memory.devices"),
    _t("atomicity", TcppCategory.ARCHITECTURE, "repro.core.patterns"),
    _t("consistency", TcppCategory.ARCHITECTURE, "repro.core.race"),
    _t("coherency", TcppCategory.ARCHITECTURE, "repro.core.race"),
    _t("pipeling", TcppCategory.ARCHITECTURE,       # sic — as printed
       "repro.circuits.pipeline"),
    _t("instruction execution", TcppCategory.ARCHITECTURE,
       "repro.circuits.cpu", "repro.isa.machine"),
    _t("memory hierarchy", TcppCategory.ARCHITECTURE,
       "repro.memory.hierarchy"),
    _t("multithreading", TcppCategory.ARCHITECTURE,
       "repro.core.thread_api"),
    _t("buses", TcppCategory.ARCHITECTURE, "repro.memory.devices"),
    _t("process ID", TcppCategory.ARCHITECTURE, "repro.ossim.pcb"),
    _t("interrupts", TcppCategory.ARCHITECTURE, "repro.ossim.kernel"),
    # Programming
    _t("shared memory parallelization", TcppCategory.PROGRAMMING,
       "repro.core.machine", "repro.life.parallel"),
    _t("pthreads", TcppCategory.PROGRAMMING, "repro.core.thread_api"),
    _t("critical sections", TcppCategory.PROGRAMMING,
       "repro.core.patterns"),
    _t("producer-consumer", TcppCategory.PROGRAMMING,
       "repro.core.patterns"),
    _t("performance improvement", TcppCategory.PROGRAMMING,
       "repro.core.metrics"),
    _t("synchronization", TcppCategory.PROGRAMMING, "repro.core.sync"),
    _t("deadlock", TcppCategory.PROGRAMMING, "repro.core.deadlock"),
    _t("race conditions", TcppCategory.PROGRAMMING, "repro.core.race"),
    _t("memory data layout", TcppCategory.PROGRAMMING,
       "repro.clib.address_space", "repro.binary.ctypes_model"),
    _t("spatial and temporal locality", TcppCategory.PROGRAMMING,
       "repro.memory.locality"),
    _t("signals", TcppCategory.PROGRAMMING, "repro.ossim.kernel"),
    # Algorithms
    _t("dependencies", TcppCategory.ALGORITHMS,
       "repro.circuits.pipeline", "repro.core.race"),
    _t("space/memory", TcppCategory.ALGORITHMS, "repro.clib.heap"),
    _t("speedup", TcppCategory.ALGORITHMS, "repro.core.metrics"),
    _t("Amdahl's Law", TcppCategory.ALGORITHMS, "repro.core.metrics"),
    _t("synchronization", TcppCategory.ALGORITHMS, "repro.core.sync"),
    _t("efficiency", TcppCategory.ALGORITHMS, "repro.core.metrics"),
)


def topics_in(category: TcppCategory) -> list[TcppTopic]:
    """Table I's rows for one TCPP category."""
    return [t for t in TABLE_I if t.category is category]


def table_i() -> str:
    """Render Table I in the paper's two-column shape."""
    rows = []
    for category in TcppCategory:
        names = ", ".join(t.name for t in topics_in(category))
        rows.append((category.value, names))
    return format_table(["TCPP Category", "CS 31 Topics"], rows)


def table_i_with_modules() -> str:
    """The reproduction's extension: topic → implementing modules."""
    rows = [(t.category.value, t.name, ", ".join(t.modules))
            for t in TABLE_I]
    return format_table(["Category", "Topic", "repro modules"], rows)


def coverage_check() -> dict[str, bool]:
    """Import every mapped module; True = the topic has running code."""
    status: dict[str, bool] = {}
    for topic in TABLE_I:
        ok = True
        for mod in topic.modules:
            try:
                importlib.import_module(mod)
            except ImportError:
                ok = False
        # a topic may appear in two categories (synchronization does)
        key = f"{topic.category.value}: {topic.name}"
        status[key] = ok
    return status


def category_counts() -> dict[str, int]:
    """Topic count per category (4/14/11/6 in the paper)."""
    return {c.value: len(topics_in(c)) for c in TcppCategory}
