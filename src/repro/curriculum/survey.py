"""Figure 1: the upper-level preparedness survey, regenerated.

The paper surveys students in two upper-level courses (CS 87 *Parallel
and Distributed Computing*, Fall 2021, end-of-course; CS 43
*Networking*, Spring 2022, week one) on how well CS 31 prepared them,
rating each topic on the Bloom scale of :mod:`repro.curriculum.bloom`.
Figure 1 plots per-topic average and median.

We cannot survey Swarthmore students, so — per the substitution rule —
Figure 1 is regenerated from a **calibrated synthetic-respondent
model**: each topic carries an *emphasis* weight derived from the
course's documented coverage (§III-A; e.g. "topics that CS 31
emphasizes heavily, such as the memory hierarchy, C programming, and
some of the fundamentals of shared memory programming"), and each
respondent draws a latent rating
``4·emphasis − retention_decay·years + ability + noise`` clamped to the
0–4 scale. The *shape claims* the paper makes about the figure are then
checked mechanically (bench E2):

* students recognize every topic (all means ≥ 1);
* heavily emphasized topics rate at deeper levels (≥ DEFINE on average,
  and strictly above the lightly-covered topics);
* ratings are not "all 4s" — CS 31 is a first exposure.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field

from repro._util import format_table
from repro.curriculum.bloom import BloomLevel, clamp_rating
from repro.errors import ReproError


@dataclass(frozen=True)
class SurveyTopic:
    """One surveyed topic with its coverage emphasis (0..1)."""
    name: str
    emphasis: float
    heavily_emphasized: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.emphasis <= 1.0:
            raise ReproError("emphasis must be in [0, 1]")


#: The surveyed topics. Emphasis weights follow §III-A's narrative:
#: memory hierarchy / C / race conditions / synchronization / pthreads
#: are called out as heavily emphasized; deeper OS/architecture topics
#: are introduced at lower depth; Amdahl's law is explicitly deferred.
SURVEY_TOPICS: tuple[SurveyTopic, ...] = (
    SurveyTopic("memory hierarchy", 0.95, heavily_emphasized=True),
    SurveyTopic("C programming", 0.95, heavily_emphasized=True),
    SurveyTopic("race conditions", 0.90, heavily_emphasized=True),
    SurveyTopic("synchronization", 0.90, heavily_emphasized=True),
    SurveyTopic("pthreads programming", 0.85, heavily_emphasized=True),
    SurveyTopic("caching", 0.85),
    SurveyTopic("processes & fork", 0.80),
    SurveyTopic("binary representation", 0.80),
    SurveyTopic("speedup", 0.75),
    SurveyTopic("assembly", 0.70),
    SurveyTopic("virtual memory", 0.70),
    SurveyTopic("deadlock", 0.65),
    SurveyTopic("producer-consumer", 0.65),
    SurveyTopic("signals", 0.60),
    SurveyTopic("pipelining", 0.55),
    SurveyTopic("Amdahl's Law", 0.45),        # explicitly deferred
    SurveyTopic("cache coherency", 0.35),     # previewed only
)


@dataclass(frozen=True)
class Cohort:
    """One surveyed course population (§IV)."""
    course: str
    term: str
    timing: str                 # 'end-of-course' | 'week-one'
    students: int
    #: years since the median respondent took CS 31 ("up to two years")
    mean_years_since_cs31: float


COHORTS: tuple[Cohort, ...] = (
    Cohort("CS 87 Parallel and Distributed Computing", "Fall 2021",
           "end-of-course", 24, 1.5),
    Cohort("CS 43 Networking", "Spring 2022", "week-one", 30, 1.2),
)

#: rating points lost per year since CS 31 (the paper: "it is likely
#: that their current understanding is lower than it would have been
#: immediately after completing the course")
RETENTION_DECAY_PER_YEAR = 0.35


@dataclass
class TopicResult:
    """Aggregates for one topic — one bar pair in Figure 1."""
    topic: SurveyTopic
    ratings: list[int] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.ratings) if self.ratings else 0.0

    @property
    def median(self) -> float:
        return statistics.median(self.ratings) if self.ratings else 0.0


@dataclass
class SurveyResult:
    """The full regenerated Figure 1 data."""
    results: dict[str, TopicResult]
    respondents: int

    def mean_of(self, topic_name: str) -> float:
        return self.results[topic_name].mean

    def median_of(self, topic_name: str) -> float:
        return self.results[topic_name].median

    def figure1_rows(self) -> list[tuple[str, float, float]]:
        """(topic, mean, median) sorted by mean, descending — the figure."""
        rows = [(r.topic.name, round(r.mean, 2), round(r.median, 1))
                for r in self.results.values()]
        return sorted(rows, key=lambda row: -row[1])

    def render(self) -> str:
        return format_table(
            ["topic", "mean", "median"],
            [(n, f"{m:.2f}", f"{md:.1f}")
             for n, m, md in self.figure1_rows()],
            align_right=[False, True, True])

    # -- the paper's shape claims, checkable -------------------------------

    def all_topics_recognized(self) -> bool:
        """'students recognized all of these topics' — mean ≥ RECOGNIZE."""
        return all(r.mean >= float(BloomLevel.RECOGNIZE)
                   for r in self.results.values())

    def emphasized_topics_rate_deeper(self) -> bool:
        """Heavily emphasized topics average ≥ DEFINE and beat the rest."""
        heavy = [r.mean for r in self.results.values()
                 if r.topic.heavily_emphasized]
        light = [r.mean for r in self.results.values()
                 if not r.topic.heavily_emphasized]
        return (min(heavy) >= float(BloomLevel.DEFINE)
                and statistics.fmean(heavy) > statistics.fmean(light))

    def not_all_fours(self) -> bool:
        """'Expected results are not all 4s for all of these topics.'"""
        return any(r.mean < 3.9 for r in self.results.values())


def simulate_respondent(rng: random.Random, cohort: Cohort,
                        topic: SurveyTopic) -> BloomLevel:
    """One student's self-rating for one topic."""
    years = max(0.0, rng.gauss(cohort.mean_years_since_cs31, 0.4))
    ability = rng.gauss(0.0, 0.45)
    refresher = 0.3 if cohort.timing == "end-of-course" else 0.0
    latent = (4.0 * topic.emphasis
              - RETENTION_DECAY_PER_YEAR * years
              + ability + refresher + rng.gauss(0.0, 0.5))
    return clamp_rating(latent)


def run_survey(cohorts: tuple[Cohort, ...] = COHORTS, *,
               topics: tuple[SurveyTopic, ...] = SURVEY_TOPICS,
               seed: int = 31) -> SurveyResult:
    """Regenerate Figure 1's data deterministically."""
    rng = random.Random(seed)
    results = {t.name: TopicResult(t) for t in topics}
    respondents = 0
    for cohort in cohorts:
        for _ in range(cohort.students):
            respondents += 1
            for topic in topics:
                rating = simulate_respondent(rng, cohort, topic)
                results[topic.name].ratings.append(int(rating))
    return SurveyResult(results, respondents)


# ---------------------------------------------------------------------------
# The paper's stated next step: the CS 43 post-course reflection
# ---------------------------------------------------------------------------

#: topics CS 43 (Networking) actively refreshes during the semester —
#: the systems skills networking code exercises every week
CS43_REFRESHED_TOPICS: frozenset[str] = frozenset({
    "C programming", "processes & fork", "signals", "synchronization",
    "race conditions", "memory hierarchy",
})


@dataclass(frozen=True)
class PrePostComparison:
    """Week-one vs end-of-semester ratings for one upper-level course.

    §IV: "we administered the survey the first week of class, and we
    plan to run it again at the end of the semester as a post-course
    reflection." The paper never reports that second survey; this model
    predicts it: topics the course actively uses recover (the "lab 0
    refresher" effect — "skill ... come[s] back to students quickly"),
    untouched topics keep decaying slightly.
    """
    pre: SurveyResult
    post: SurveyResult

    def delta(self, topic_name: str) -> float:
        return self.post.mean_of(topic_name) - self.pre.mean_of(topic_name)

    def refreshed_topics_recover(self) -> bool:
        return all(self.delta(t) > 0 for t in CS43_REFRESHED_TOPICS)

    def recovery_gap(self) -> float:
        """Mean delta on refreshed topics minus mean delta elsewhere."""
        refreshed = [self.delta(t.name) for t in SURVEY_TOPICS
                     if t.name in CS43_REFRESHED_TOPICS]
        other = [self.delta(t.name) for t in SURVEY_TOPICS
                 if t.name not in CS43_REFRESHED_TOPICS]
        return (statistics.fmean(refreshed) - statistics.fmean(other))

    def render(self) -> str:
        rows = []
        for topic in SURVEY_TOPICS:
            mark = "*" if topic.name in CS43_REFRESHED_TOPICS else " "
            rows.append((f"{mark} {topic.name}",
                         f"{self.pre.mean_of(topic.name):.2f}",
                         f"{self.post.mean_of(topic.name):.2f}",
                         f"{self.delta(topic.name):+.2f}"))
        rows.sort(key=lambda r: r[3], reverse=True)
        return format_table(["topic (* = used by CS 43)", "pre", "post",
                             "delta"], rows,
                            align_right=[False, True, True, True])


def simulate_post_respondent(rng: random.Random, cohort: Cohort,
                             topic: SurveyTopic,
                             *, refreshed: bool) -> BloomLevel:
    """End-of-semester rating: refreshed topics get the practice boost."""
    years = max(0.0, rng.gauss(cohort.mean_years_since_cs31 + 0.3, 0.4))
    ability = rng.gauss(0.0, 0.45)
    boost = 0.9 if refreshed else 0.0
    latent = (4.0 * topic.emphasis
              - RETENTION_DECAY_PER_YEAR * years
              + ability + boost + rng.gauss(0.0, 0.5))
    return clamp_rating(latent)


def run_pre_post_comparison(*, seed: int = 43,
                            students: int = 30) -> PrePostComparison:
    """Simulate the CS 43 pre/post pair the paper planned to collect."""
    cohort = Cohort("CS 43 Networking", "Spring 2022", "week-one",
                    students, 1.2)
    rng = random.Random(seed)
    pre_results = {t.name: TopicResult(t) for t in SURVEY_TOPICS}
    post_results = {t.name: TopicResult(t) for t in SURVEY_TOPICS}
    for _ in range(students):
        for topic in SURVEY_TOPICS:
            pre_results[topic.name].ratings.append(
                int(simulate_respondent(rng, cohort, topic)))
            post_results[topic.name].ratings.append(
                int(simulate_post_respondent(
                    rng, cohort, topic,
                    refreshed=topic.name in CS43_REFRESHED_TOPICS)))
    return PrePostComparison(SurveyResult(pre_results, students),
                             SurveyResult(post_results, students))
