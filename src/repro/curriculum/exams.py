"""The two course exams, composed from the homework engines.

"The structure of CS 31 includes lectures, larger programming lab
assignments, written homeworks, in-class group exercises, and **two
course exams**." (§II) An exam here is a weighted, seeded problem set
drawn from the same oracle-backed generators the homeworks use: the
midterm covers the first half of the schedule (binary → caching), the
final is cumulative with a parallelism emphasis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ReproError
from repro.homework.base import Problem, check


@dataclass(frozen=True)
class ExamQuestion:
    problem: Problem
    points: int
    topic: str


@dataclass
class Exam:
    title: str
    questions: list[ExamQuestion] = field(default_factory=list)

    @property
    def total_points(self) -> int:
        return sum(q.points for q in self.questions)

    def render(self) -> str:
        lines = [f"{self.title} ({self.total_points} points)", ""]
        for i, q in enumerate(self.questions, start=1):
            lines.append(f"Q{i} [{q.points} pts, {q.topic}]")
            lines.extend(f"  {l}" for l in q.problem.prompt.splitlines())
            lines.append("")
        return "\n".join(lines)

    def answer_key(self) -> list[Any]:
        return [q.problem.reveal() for q in self.questions]


@dataclass(frozen=True)
class ExamResult:
    earned: int
    possible: int
    per_question: tuple[bool, ...]

    @property
    def percentage(self) -> float:
        return self.earned / self.possible if self.possible else 0.0


def administer(exam: Exam, answers: list[Any]) -> ExamResult:
    """Grade a full set of answers against the exam's hidden keys."""
    if len(answers) != len(exam.questions):
        raise ReproError(
            f"{exam.title}: expected {len(exam.questions)} answers, "
            f"got {len(answers)}")
    verdicts = tuple(check(q.problem, a)
                     for q, a in zip(exam.questions, answers))
    earned = sum(q.points for q, ok in zip(exam.questions, verdicts)
                 if ok)
    return ExamResult(earned, exam.total_points, verdicts)


#: (topic, generator path, kwargs, points) — midterm rows
def _q(topic: str, gen: Callable, points: int, **kwargs):
    return topic, gen, kwargs, points


def _midterm_spec():
    from repro.homework import assembly_hw, binary_hw, cache_hw, circuits_hw
    return [
        _q("binary", binary_hw.generate_conversion, 8),
        _q("binary", binary_hw.generate_arithmetic, 10),
        _q("C", binary_hw.generate_c_expression, 8),
        _q("C", binary_hw.generate_struct_layout, 10),
        _q("circuits", circuits_hw.generate_truth_table, 12),
        _q("assembly", assembly_hw.generate_register_trace, 12),
        _q("assembly", assembly_hw.generate_condition_trace, 8),
        _q("caching", cache_hw.generate_address_division, 10),
        _q("caching", cache_hw.generate_cache_trace, 12),
    ]


def _final_spec():
    from repro.homework import (
        binary_hw, cache_hw, processes_hw, threads_hw, vm_hw,
    )
    return [
        _q("binary", binary_hw.generate_arithmetic, 6),
        _q("C", binary_hw.generate_pointer_trace, 8),
        _q("C", binary_hw.generate_array2d_address, 8),
        _q("caching", cache_hw.generate_cache_trace, 10),
        _q("processes", processes_hw.generate_fork_outputs, 12),
        _q("processes", processes_hw.generate_fork_count, 6),
        _q("VM", vm_hw.generate_vm_trace, 12),
        _q("VM", vm_hw.generate_translation_problem, 8),
        _q("threads", threads_hw.generate_counter_outcome, 12),
        _q("threads", threads_hw.generate_amdahl, 8),
        _q("threads", threads_hw.generate_producer_consumer, 10),
    ]


def _build(title: str, spec, seed: int) -> Exam:
    exam = Exam(title)
    for i, (topic, gen, kwargs, points) in enumerate(spec):
        problem = gen(seed=seed * 100 + i, **kwargs)
        exam.questions.append(ExamQuestion(problem, points, topic))
    return exam


def build_midterm(*, seed: int = 31) -> Exam:
    """Exam 1: the vertical-slice half (binary through caching)."""
    return _build("CS 31 Midterm Exam", _midterm_spec(), seed)


def build_final(*, seed: int = 31) -> Exam:
    """Exam 2: cumulative, weighted toward OS + parallelism."""
    return _build("CS 31 Final Exam", _final_spec(), seed)
