"""The twelve written-homework topic areas (§III-B), mapped to engines.

"Our current set of homeworks cover the following topics (assigned in
the order listed)" — each entry points at the :mod:`repro.homework`
generator/checker module that mechanizes it.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class HomeworkArea:
    order: int
    title: str
    description: str
    engine: str         # module with generate()/check()
    generator: str      # the generator function's name


HOMEWORKS: tuple[HomeworkArea, ...] = (
    HomeworkArea(1, "C programming",
                 "evaluating expressions, identifying types, function "
                 "tracing, stack drawing",
                 "repro.homework.binary_hw", "generate_c_expression"),
    HomeworkArea(2, "Binary and arithmetic",
                 "converting between decimal, binary, and hex; signed "
                 "and unsigned arithmetic",
                 "repro.homework.binary_hw", "generate_conversion"),
    HomeworkArea(3, "Circuits",
                 "tracing a circuit to produce its logic table; "
                 "creating a circuit from a logic table",
                 "repro.homework.circuits_hw", "generate_truth_table"),
    HomeworkArea(4, "C pointers",
                 "type evaluation, code tracing, stack and heap drawing",
                 "repro.homework.binary_hw", "generate_pointer_trace"),
    HomeworkArea(5, "Simple assembly",
                 "arithmetic instructions; memory and register contents; "
                 "converting to C",
                 "repro.homework.assembly_hw", "generate_register_trace"),
    HomeworkArea(6, "Advanced assembly",
                 "translate C conditionals and loops; trace function "
                 "calls with stack and register changes",
                 "repro.homework.assembly_hw", "generate_translation"),
    HomeworkArea(7, "Direct mapped caching",
                 "address division; tracing accesses with hits, misses, "
                 "replacements",
                 "repro.homework.cache_hw", "generate_cache_trace"),
    HomeworkArea(8, "Set associative caching",
                 "as direct mapped, applying LRU replacement",
                 "repro.homework.cache_hw", "generate_cache_trace"),
    HomeworkArea(9, "Processes",
                 "trace fork/exit/wait code, draw the process hierarchy, "
                 "identify possible outputs",
                 "repro.homework.processes_hw", "generate_fork_outputs"),
    HomeworkArea(10, "Virtual memory 1",
                 "trace one process's accesses through a page table",
                 "repro.homework.vm_hw", "generate_vm_trace"),
    HomeworkArea(11, "Virtual memory 2",
                 "two processes with context switching and LRU",
                 "repro.homework.vm_hw", "generate_vm_trace"),
    HomeworkArea(12, "Threads",
                 "pthreads producer/consumer; synchronization placement",
                 "repro.homework.threads_hw", "generate_counter_outcome"),
)


def homework(order: int) -> HomeworkArea:
    """Look up a written-homework area by its position (1-12)."""
    for hw in HOMEWORKS:
        if hw.order == order:
            return hw
    raise ReproError(f"no homework {order}")


def coverage_check() -> dict[int, bool]:
    """Each area's engine module imports and exposes its generator."""
    status = {}
    for hw in HOMEWORKS:
        try:
            mod = importlib.import_module(hw.engine)
            status[hw.order] = hasattr(mod, hw.generator)
        except ImportError:
            status[hw.order] = False
    return status
