"""The CS 31 course model: themes, schedule, structure (§II–III).

Machine-readable metadata for the course itself: its three curricular
themes, the topic schedule in teaching order, and the course-structure
elements (peer instruction, labs, mentoring) — with each schedule unit
mapped to the repro subpackage that implements it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import format_table
from repro.errors import ReproError


@dataclass(frozen=True)
class Theme:
    """One of the three curricular themes (§II)."""
    number: int
    title: str
    summary: str


THEMES: tuple[Theme, ...] = (
    Theme(1, "how a computer runs a program",
          "a vertical slice: C is compiled to binary instructions "
          "executed on CPU circuitry; the OS's role in running programs"),
    Theme(2, "evaluating system costs of running a program",
          "memory-hierarchy performance effects, OS scheduling "
          "efficiency, synchronization and parallelization overheads"),
    Theme(3, "taking advantage of the power of parallel computing",
          "shared-memory parallelism: race conditions, synchronization, "
          "deadlock, speed-up, producer-consumer, pthreads programs"),
)


@dataclass(frozen=True)
class ScheduleUnit:
    """One teaching unit, in course order."""
    order: int
    topic: str
    weeks: float
    themes: tuple[int, ...]
    package: str          # the repro subpackage that implements it


SCHEDULE: tuple[ScheduleUnit, ...] = (
    ScheduleUnit(1, "binary data representation", 1.5, (1,),
                 "repro.binary"),
    ScheduleUnit(2, "C programming", 2.0, (1,), "repro.clib"),
    ScheduleUnit(3, "computer architecture & circuits", 2.0, (1,),
                 "repro.circuits"),
    ScheduleUnit(4, "assembly programming (IA-32)", 2.5, (1, 2),
                 "repro.isa"),
    ScheduleUnit(5, "memory hierarchy", 1.0, (2,), "repro.memory"),
    ScheduleUnit(6, "caching", 1.5, (2,), "repro.memory"),
    ScheduleUnit(7, "operating systems & processes", 1.5, (1, 2),
                 "repro.ossim"),
    ScheduleUnit(8, "virtual memory", 1.5, (1, 2), "repro.vm"),
    ScheduleUnit(9, "shared memory parallelism & pthreads", 2.5, (2, 3),
                 "repro.core"),
)


@dataclass(frozen=True)
class StructureElement:
    """A pedagogy/structure element of the course (§II)."""
    name: str
    description: str


STRUCTURE: tuple[StructureElement, ...] = (
    StructureElement("peer instruction",
                     "clicker question → individual vote → small-group "
                     "discussion → group revote → class discussion"),
    StructureElement("reading quizzes",
                     "daily graded clicker quizzes on pre-class reading"),
    StructureElement("weekly lab section",
                     "90 minutes: warm-up exercises, C tooling "
                     "(makefiles, GDB, Valgrind), lab assignments"),
    StructureElement("written homeworks",
                     "weekly, short, low-stakes practice on the week's "
                     "topics"),
    StructureElement("student mentoring",
                     "course mentors staff labs and two weekly help "
                     "sessions"),
    StructureElement("exams", "two course exams"),
)


def theme(number: int) -> Theme:
    """Look up one of the three curricular themes."""
    for t in THEMES:
        if t.number == number:
            return t
    raise ReproError(f"no theme {number}")


def units_for_theme(number: int) -> list[ScheduleUnit]:
    """Schedule units that serve a given theme."""
    theme(number)  # validate
    return [u for u in SCHEDULE if number in u.themes]


def total_weeks() -> float:
    """Scheduled weeks across all units (fits a semester)."""
    return sum(u.weeks for u in SCHEDULE)


def prerequisite() -> str:
    """CS1 is the only prerequisite (§II) — the paper's 'second course'."""
    return "CS1 (Python)"


def schedule_table() -> str:
    """The course schedule as a printable table."""
    rows = [(u.order, u.topic, f"{u.weeks:g}",
             ",".join(str(t) for t in u.themes), u.package)
            for u in SCHEDULE]
    return format_table(["#", "topic", "weeks", "themes", "package"],
                        rows, align_right=[True, False, True, False,
                                           False])
