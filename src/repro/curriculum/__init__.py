"""The curriculum & evaluation model (CS 31 §II and §IV).

Table I's TCPP topic coverage mapped onto this library's modules, the
three-theme course schedule, the Lab 0–10 registry with runnable
miniatures, the written-homework registry, the Bloom rating scale, the
Figure 1 survey regeneration (calibrated synthetic respondents), and
the peer-instruction clicker model.
"""

from repro.curriculum.tcpp import (
    TABLE_I,
    TcppCategory,
    TcppTopic,
    category_counts,
    coverage_check,
    table_i,
    table_i_with_modules,
    topics_in,
)
from repro.curriculum.bloom import (
    BloomLevel,
    DESCRIPTIONS,
    clamp_rating,
    describe,
    scale_legend,
)
from repro.curriculum.course import (
    SCHEDULE,
    STRUCTURE,
    THEMES,
    ScheduleUnit,
    StructureElement,
    Theme,
    prerequisite,
    schedule_table,
    theme,
    total_weeks,
    units_for_theme,
)
from repro.curriculum.labs import LABS, Lab, lab, labs_covering, run_all_demos
from repro.curriculum import labs as labs_module
from repro.curriculum.homework_registry import HOMEWORKS, HomeworkArea, homework
from repro.curriculum.survey import (
    COHORTS,
    CS43_REFRESHED_TOPICS,
    Cohort,
    PrePostComparison,
    RETENTION_DECAY_PER_YEAR,
    SURVEY_TOPICS,
    SurveyResult,
    SurveyTopic,
    TopicResult,
    run_pre_post_comparison,
    run_survey,
    simulate_respondent,
)
from repro.curriculum.textbook import (
    CHAPTERS,
    Chapter,
    chapter,
    chapters_for_package,
    every_unit_has_reading,
    reading_map,
)
from repro.curriculum.exams import (
    Exam,
    ExamQuestion,
    ExamResult,
    administer,
    build_final,
    build_midterm,
)
from repro.curriculum.reading_quiz import (
    QuizOutcome,
    ReadingQuizQuestion,
    STANDARD_QUIZ_BANK,
    quiz_is_well_designed,
    simulate_quiz,
)
from repro.curriculum.clicker import (
    ClickerQuestion,
    ClickerSession,
    Student,
    VoteOutcome,
    standard_question_bank,
    summarize,
)

__all__ = [
    "TABLE_I", "TcppCategory", "TcppTopic", "table_i",
    "table_i_with_modules", "topics_in", "coverage_check",
    "category_counts",
    "BloomLevel", "DESCRIPTIONS", "describe", "clamp_rating",
    "scale_legend",
    "THEMES", "SCHEDULE", "STRUCTURE", "Theme", "ScheduleUnit",
    "StructureElement", "theme", "units_for_theme", "total_weeks",
    "prerequisite", "schedule_table",
    "LABS", "Lab", "lab", "labs_covering", "run_all_demos", "labs_module",
    "HOMEWORKS", "HomeworkArea", "homework",
    "SURVEY_TOPICS", "COHORTS", "SurveyTopic", "Cohort", "SurveyResult",
    "TopicResult", "run_survey", "simulate_respondent",
    "RETENTION_DECAY_PER_YEAR", "run_pre_post_comparison",
    "PrePostComparison", "CS43_REFRESHED_TOPICS",
    "ClickerSession", "ClickerQuestion", "Student", "VoteOutcome",
    "standard_question_bank", "summarize",
    "CHAPTERS", "Chapter", "chapter", "chapters_for_package",
    "reading_map", "every_unit_has_reading",
    "Exam", "ExamQuestion", "ExamResult", "build_midterm", "build_final",
    "administer",
    "ReadingQuizQuestion", "STANDARD_QUIZ_BANK", "QuizOutcome",
    "simulate_quiz", "quiz_is_well_designed",
]
