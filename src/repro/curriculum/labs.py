"""The Lab 0–10 registry (§III-B), mapped to runnable repro code.

Each lab from the paper is registered with its topics and — where this
library implements the lab's substance — the modules and a smoke-test
callable that actually *runs* a miniature of the assignment. Bench E1's
coverage check and the quickstart example both walk this registry.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class Lab:
    number: int
    title: str
    description: str
    topics: tuple[str, ...]
    modules: tuple[str, ...]
    #: name of a demo in this module that exercises the lab
    demo: str | None = None


LABS: tuple[Lab, ...] = (
    Lab(0, "Tools for CS 31",
        "Unix shell navigation and course account setup",
        ("unix shell",), ("repro.ossim.shell",), "demo_lab0_shell"),
    Lab(1, "Data Representation and Arithmetic",
        "binary/hex conversion and C arithmetic properties",
        ("binary representation", "overflow"),
        ("repro.binary",), "demo_lab1_binary"),
    Lab(2, "C Programming Warm-up",
        "an O(N^2) sort in C with types, I/O, functions",
        ("C programming",), ("repro.isa.ccompiler",), "demo_lab2_sort"),
    Lab(3, "Building an ALU Circuit",
        "sign extender + one-bit adder composed into an 8-op, "
        "5-flag ALU in Logisim",
        ("circuits", "ALU"), ("repro.circuits.alu",), "demo_lab3_alu"),
    Lab(4, "C Pointers and Assembly Code",
        "file statistics with dynamic memory; short assembly functions",
        ("pointers", "assembly"),
        ("repro.clib.pointers", "repro.isa.machine"), "demo_lab4_asm"),
    Lab(5, "Binary Maze",
        "GDB-driven deciphering of assembly challenge floors",
        ("assembly", "debugging"), ("repro.isa.maze",), "demo_lab5_maze"),
    Lab(6, "Game of Life",
        "serial Conway's life with 2-D arrays and file input",
        ("2-D arrays", "simulation"), ("repro.life.serial",),
        "demo_lab6_life"),
    Lab(7, "C String Library",
        "implement strcat, strcpy and friends with tests",
        ("C strings", "pointers"), ("repro.clib.cstring",),
        "demo_lab7_strings"),
    Lab(8, "Command Parser Library",
        "tokenize command lines; detect background '&'",
        ("parsing",), ("repro.ossim.parser",), "demo_lab8_parser"),
    Lab(9, "Unix Shell",
        "fork/execvp/waitpid shell with background jobs and history",
        ("processes", "signals"), ("repro.ossim.shell",),
        "demo_lab9_shell"),
    Lab(10, "Parallel Game of Life",
        "pthreads life with grid partitioning, barriers, and a mutex; "
        "ParaVis shows thread regions",
        ("pthreads", "barriers", "speedup"),
        ("repro.life.parallel", "repro.life.paravis"), "demo_lab10_life"),
)


def lab(number: int) -> Lab:
    """Look up a lab by its number (0-10)."""
    for l in LABS:
        if l.number == number:
            return l
    raise ReproError(f"no lab {number}")


def labs_covering(topic: str) -> list[Lab]:
    """Labs whose topic list includes ``topic``."""
    return [l for l in LABS if topic in l.topics]


def coverage_check() -> dict[int, bool]:
    """Every lab's mapped modules import, and its demo exists here."""
    status = {}
    for l in LABS:
        ok = True
        for mod in l.modules:
            try:
                importlib.import_module(mod)
            except ImportError:
                ok = False
        if l.demo is not None and l.demo not in globals():
            ok = False
        status[l.number] = ok
    return status


# ---------------------------------------------------------------------------
# Miniature runnable versions of each lab (smoke demos)
# ---------------------------------------------------------------------------

def demo_lab0_shell() -> str:
    from repro.ossim import Shell
    sh = Shell()
    return sh.run_script(["help", "hello"])


def demo_lab1_binary() -> str:
    from repro.binary import BitVector, add, decimal_to_binary_worked
    work = decimal_to_binary_worked(31)
    r = add(BitVector.from_unsigned(200, 8), BitVector.from_unsigned(100, 8))
    return work.render() + f"\n200+100 in uint8 = {r.unsigned} ({r.flags})"


def demo_lab2_sort() -> str:
    """The Lab 2 O(N^2) sort, written in the C subset and executed."""
    from repro.isa import Machine, assemble, compile_c
    # selection of the minimum, repeatedly — via a C bubble pass for 3 values
    src = """
    int sort3_min(int a, int b, int c) {
        int m = a;
        if (b < m) { m = b; }
        if (c < m) { m = c; }
        return m;
    }
    """
    program = assemble(compile_c(src), entry="sort3_min")
    result = Machine(program).call("sort3_min", 31, 7, 19)
    return f"min(31, 7, 19) computed by compiled C = {result}"


def demo_lab3_alu() -> str:
    from repro.circuits import ALU, ALUOp
    alu = ALU(width=8)
    value, flags = alu.compute(ALUOp.ADD, 100, 100)
    return (f"ALU: 100 + 100 = {value} flags={flags} "
            f"(gates: {alu.gate_count})")


def demo_lab4_asm() -> str:
    from repro.isa import Machine, assemble
    src = """
    swap_sum:
      pushl %ebp
      movl %esp, %ebp
      movl 8(%ebp), %eax
      addl 12(%ebp), %eax
      leave
      ret
    main:
      ret
    """
    m = Machine(assemble(src))
    return f"swap_sum(3, 4) = {m.call('swap_sum', 3, 4)}"


def demo_lab5_maze() -> str:
    from repro.isa import Maze
    maze = Maze(floors=3, seed=31)
    escaped = maze.escaped(maze.solutions())
    return f"maze with {maze.num_floors} floors; answer key escapes: {escaped}"


def demo_lab6_life() -> str:
    from repro.life import GameOfLife, make, render
    game = GameOfLife(make("glider"))
    game.run(4)
    return render(game.grid)


def demo_lab7_strings() -> str:
    from repro.clib import AddressSpace, Heap, cstring
    space = AddressSpace.standard()
    heap = Heap(space)
    a = heap.malloc(16)
    space.store_cstring(a, "CS ")
    b = heap.malloc(8)
    space.store_cstring(b, "31")
    cstring.strcat(space, a, b)
    return space.load_cstring(a).decode()


def demo_lab8_parser() -> str:
    from repro.ossim import parse_command
    cmd = parse_command("./life grid.txt &")
    return f"argv={cmd.argv} background={cmd.background}"


def demo_lab9_shell() -> str:
    from repro.ossim import Shell
    sh = Shell()
    out = sh.run_script(["spin &", "hello", "jobs"])
    return out


def demo_lab10_life() -> str:
    from repro.core import partition_grid
    from repro.life import ParallelLife, make, render_regions
    grid = make("glider", margin=4)
    game = ParallelLife(grid, threads=4)
    final = game.run(4)
    regions = partition_grid(*grid.shape, 4, "row")
    return render_regions(final, regions, color=False)


def run_all_demos() -> dict[int, str]:
    """Run every lab's miniature; returns lab number → output."""
    out = {}
    for l in LABS:
        if l.demo:
            out[l.number] = globals()[l.demo]()
    return out
