"""Peer instruction: the clicker vote → discuss → revote cycle.

"We present a carefully crafted question and first ask the students to
answer it individually ... give students 2–3 minutes to discuss the
question in small groups and then respond again via their clickers,
this time answering as a group." (§II)

This model simulates that protocol: students have abilities, questions
have difficulties, an individual vote is correct with a logistic
probability, and discussion lets correct peers persuade group members.
Bench E10 reproduces the peer-instruction literature's signature result
(the paper cites Porter et al. [19]): revote accuracy exceeds first-vote
accuracy, with the biggest gains on mid-difficulty questions.
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass, field

from repro.errors import ReproError


def _sigmoid(x: float) -> float:
    return 1.0 / (1.0 + math.exp(-x))


@dataclass(frozen=True)
class ClickerQuestion:
    """One peer-instruction question."""
    prompt: str
    difficulty: float      # 0 easy .. ~2 hard (logit units)
    topic: str = ""


@dataclass
class Student:
    ability: float

    def p_correct(self, question: ClickerQuestion) -> float:
        return _sigmoid(1.2 * (self.ability - question.difficulty) + 0.8)


@dataclass
class VoteOutcome:
    """One question's class-level result."""
    question: ClickerQuestion
    first_vote_correct: float      # fraction correct individually
    revote_correct: float          # fraction correct after discussion

    @property
    def gain(self) -> float:
        return self.revote_correct - self.first_vote_correct

    @property
    def normalized_gain(self) -> float:
        """Hake gain: improvement over the available headroom."""
        headroom = 1.0 - self.first_vote_correct
        return self.gain / headroom if headroom > 1e-9 else 0.0


@dataclass
class ClickerSession:
    """A class of students working through questions in groups."""
    class_size: int = 60
    group_size: int = 3
    #: probability a correct group-mate persuades an incorrect student
    persuasion: float = 0.7
    #: probability an incorrect consensus flips a correct student
    confusion: float = 0.05
    seed: int = 31
    students: list[Student] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.class_size < 1 or self.group_size < 1:
            raise ReproError("class and group sizes must be positive")
        if not 0.0 <= self.persuasion <= 1.0:
            raise ReproError("persuasion must be in [0, 1]")
        self._rng = random.Random(self.seed)
        if not self.students:
            self.students = [Student(self._rng.gauss(0.0, 0.8))
                             for _ in range(self.class_size)]

    # -- one question -----------------------------------------------------------

    def ask(self, question: ClickerQuestion) -> VoteOutcome:
        rng = self._rng
        first = [rng.random() < s.p_correct(question)
                 for s in self.students]

        # form random discussion groups
        order = list(range(self.class_size))
        rng.shuffle(order)
        groups = [order[i:i + self.group_size]
                  for i in range(0, self.class_size, self.group_size)]

        revote = list(first)
        for group in groups:
            correct_members = sum(first[i] for i in group)
            if correct_members == 0:
                continue   # nobody to learn from; votes stand
            for i in group:
                if not first[i]:
                    # each correct member is an independent chance to learn
                    p_stay_wrong = (1.0 - self.persuasion) ** correct_members
                    if rng.random() > p_stay_wrong:
                        revote[i] = True
                else:
                    wrong_members = len(group) - correct_members
                    if wrong_members > correct_members:
                        if rng.random() < self.confusion:
                            revote[i] = False

        return VoteOutcome(
            question,
            first_vote_correct=sum(first) / self.class_size,
            revote_correct=sum(revote) / self.class_size)

    def run_question_bank(self, questions: list[ClickerQuestion]
                          ) -> list[VoteOutcome]:
        return [self.ask(q) for q in questions]


def standard_question_bank() -> list[ClickerQuestion]:
    """Questions spanning the course's topics and difficulty range."""
    return [
        ClickerQuestion("two's-complement of 0b0101?", 0.2, "binary"),
        ClickerQuestion("does unsigned overflow set OF?", 0.8, "binary"),
        ClickerQuestion("R-S latch with S=R=1?", 1.0, "circuits"),
        ClickerQuestion("which address bits form the index?", 1.1,
                        "caching"),
        ClickerQuestion("stride pattern with better hit rate?", 0.7,
                        "caching"),
        ClickerQuestion("output set of fork(); printf(\"B\")?", 0.9,
                        "processes"),
        ClickerQuestion("who reaps an orphaned zombie?", 1.3, "processes"),
        ClickerQuestion("TLB contents after context switch?", 1.2, "vm"),
        ClickerQuestion("is count++ atomic?", 0.6, "threads"),
        ClickerQuestion("where must the barrier go?", 1.4, "threads"),
        ClickerQuestion("max speedup at 90% parallel?", 1.0, "speedup"),
    ]


def summarize(outcomes: list[VoteOutcome]) -> dict[str, float]:
    """Aggregate first-vote/revote/gain means over a question set."""
    return {
        "mean_first_vote": statistics.fmean(o.first_vote_correct
                                            for o in outcomes),
        "mean_revote": statistics.fmean(o.revote_correct
                                        for o in outcomes),
        "mean_gain": statistics.fmean(o.gain for o in outcomes),
        "mean_normalized_gain": statistics.fmean(o.normalized_gain
                                                 for o in outcomes),
    }
