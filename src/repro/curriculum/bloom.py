"""The survey's five-point rating scale based on Bloom's taxonomy.

"The ratings corresponded to: 0: do not recognize the topic/concept;
1: recognize the topic/concept/term; 2: could define it; 3: could
analyze/understand this topic/concept in a solution that was given to
me; and, 4: could apply this topic/concept to a problem." (§IV)
"""

from __future__ import annotations

import enum

from repro.errors import ReproError


class BloomLevel(enum.IntEnum):
    """The paper's 0–4 self-rating scale."""
    DO_NOT_RECOGNIZE = 0
    RECOGNIZE = 1
    DEFINE = 2
    ANALYZE = 3
    APPLY = 4


DESCRIPTIONS: dict[BloomLevel, str] = {
    BloomLevel.DO_NOT_RECOGNIZE: "do not recognize the topic/concept",
    BloomLevel.RECOGNIZE: "recognize the topic/concept/term",
    BloomLevel.DEFINE: "could define it",
    BloomLevel.ANALYZE: ("could analyze/understand this topic/concept in "
                         "a solution that was given to me"),
    BloomLevel.APPLY: "could apply this topic/concept to a problem",
}


def describe(level: BloomLevel | int) -> str:
    """The paper's wording for one rating level."""
    try:
        return DESCRIPTIONS[BloomLevel(level)]
    except ValueError:
        raise ReproError(f"no Bloom level {level}") from None


def clamp_rating(value: float) -> BloomLevel:
    """Round a continuous latent rating onto the discrete scale."""
    return BloomLevel(max(0, min(4, round(value))))


def scale_legend() -> str:
    """All five levels, one per line (printed above Figure 1)."""
    return "\n".join(f"{int(lvl)}: {DESCRIPTIONS[lvl]}"
                     for lvl in BloomLevel)
