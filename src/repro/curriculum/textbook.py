"""Dive into Systems: the course's textbook, mapped to this library.

"We use the free, online 'Dive into Systems' [15] textbook, written by
two of the co-authors and a collaborator from West Point" (§II). This
module records which book chapter backs each schedule unit — useful for
anyone using the repo alongside the (freely available) book.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import format_table
from repro.curriculum.course import SCHEDULE
from repro.errors import ReproError


@dataclass(frozen=True)
class Chapter:
    number: int
    title: str
    packages: tuple[str, ...]


#: Dive into Systems chapters relevant to CS 31 (diveintosystems.org)
CHAPTERS: tuple[Chapter, ...] = (
    Chapter(1, "By the C, by the C, by the Beautiful C",
            ("repro.clib",)),
    Chapter(2, "A Deeper Dive into C", ("repro.clib",)),
    Chapter(4, "Binary and Data Representation", ("repro.binary",)),
    Chapter(5, "What von Neumann Knew: Computer Architecture",
            ("repro.circuits",)),
    Chapter(8, "32-bit x86 Assembly (IA32)", ("repro.isa",)),
    Chapter(11, "Storage and the Memory Hierarchy", ("repro.memory",)),
    Chapter(13, "The Operating System", ("repro.ossim", "repro.vm")),
    Chapter(14, "Leveraging Shared Memory in the Multicore Era",
            ("repro.core", "repro.life")),
)


def chapter(number: int) -> Chapter:
    """Look up a mapped Dive into Systems chapter."""
    for c in CHAPTERS:
        if c.number == number:
            return c
    raise ReproError(f"no mapped chapter {number}")


def chapters_for_package(package: str) -> list[Chapter]:
    """Chapters that back a given repro subpackage."""
    return [c for c in CHAPTERS if package in c.packages]


def reading_map() -> str:
    """Schedule unit → chapter(s), in course order."""
    rows = []
    for unit in SCHEDULE:
        chapters = [f"ch. {c.number}" for c in CHAPTERS
                    if unit.package in c.packages]
        rows.append((unit.order, unit.topic,
                     ", ".join(chapters) or "—"))
    return format_table(["#", "course unit", "Dive into Systems"],
                        rows, align_right=[True, False, False])


def every_unit_has_reading() -> bool:
    """Each schedule unit maps to at least one chapter."""
    mapped_packages = {p for c in CHAPTERS for p in c.packages}
    return all(u.package in mapped_packages for u in SCHEDULE)
