"""Daily reading quizzes: low-stakes, answerable-if-you-read.

"Prior to class, we ask that students read brief introductory material
from a textbook, and we hold daily (graded) reading quizzes that
students answer via their clicker. These quizzes are designed to be
answerable by students who did the reading, even if they don't yet hold
a deep understanding of the content." (§II)

The model's design property is exactly that sentence: a reader's
correctness probability is high and nearly flat in ability; a
non-reader's tracks ability (they're guessing from background). The
simulation lets the course staff check a quiz bank *has* that property.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field

from repro.errors import ReproError


@dataclass(frozen=True)
class ReadingQuizQuestion:
    """A recall-level question tied to a schedule unit's reading."""
    prompt: str
    unit: str
    #: probability a reader answers correctly (recall, so high)
    p_reader: float = 0.9
    #: guess probability for a non-reader with average background
    p_guess: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_guess <= self.p_reader <= 1.0:
            raise ReproError("need 0 <= p_guess <= p_reader <= 1")


STANDARD_QUIZ_BANK: tuple[ReadingQuizQuestion, ...] = (
    ReadingQuizQuestion("How many bits are in a byte?", "binary",
                        p_reader=0.97, p_guess=0.6),
    ReadingQuizQuestion("Which C function allocates heap memory?",
                        "C", p_reader=0.95, p_guess=0.45),
    ReadingQuizQuestion("What does the ALU compute?", "circuits",
                        p_reader=0.9, p_guess=0.4),
    ReadingQuizQuestion("Which register holds the next instruction's "
                        "address?", "assembly", p_reader=0.88,
                        p_guess=0.3),
    ReadingQuizQuestion("Is SRAM faster or slower than DRAM?",
                        "memory", p_reader=0.92, p_guess=0.5),
    ReadingQuizQuestion("What does a cache 'hit' mean?", "caching",
                        p_reader=0.93, p_guess=0.45),
    ReadingQuizQuestion("What syscall creates a new process?",
                        "processes", p_reader=0.9, p_guess=0.3),
    ReadingQuizQuestion("What maps virtual pages to frames?", "vm",
                        p_reader=0.88, p_guess=0.3),
    ReadingQuizQuestion("What does pthread_join wait for?", "threads",
                        p_reader=0.9, p_guess=0.35),
)


@dataclass
class QuizOutcome:
    """Score distributions for readers vs non-readers."""
    reader_scores: list[float] = field(default_factory=list)
    nonreader_scores: list[float] = field(default_factory=list)

    @property
    def reader_mean(self) -> float:
        return statistics.fmean(self.reader_scores)

    @property
    def nonreader_mean(self) -> float:
        return statistics.fmean(self.nonreader_scores)

    @property
    def separation(self) -> float:
        """Mean gap — the 'did the reading' signal the grading rewards."""
        return self.reader_mean - self.nonreader_mean


def simulate_quiz(questions: tuple[ReadingQuizQuestion, ...]
                  = STANDARD_QUIZ_BANK, *,
                  readers: int = 40, nonreaders: int = 20,
                  seed: int = 31) -> QuizOutcome:
    """Run the quiz over a class; returns per-group score fractions."""
    if readers < 1 or nonreaders < 1:
        raise ReproError("need at least one student per group")
    rng = random.Random(seed)
    outcome = QuizOutcome()
    for group_size, is_reader, bucket in (
            (readers, True, outcome.reader_scores),
            (nonreaders, False, outcome.nonreader_scores)):
        for _ in range(group_size):
            ability = rng.gauss(0.0, 0.1)
            correct = 0
            for q in questions:
                p = q.p_reader if is_reader else q.p_guess
                p = min(1.0, max(0.0, p + ability))
                if rng.random() < p:
                    correct += 1
            bucket.append(correct / len(questions))
    return outcome


def quiz_is_well_designed(questions: tuple[ReadingQuizQuestion, ...]
                          = STANDARD_QUIZ_BANK, *,
                          reader_floor: float = 0.8,
                          separation_floor: float = 0.3,
                          seed: int = 31) -> bool:
    """The paper's design goal, checkable: readers pass comfortably and
    clearly outscore non-readers."""
    outcome = simulate_quiz(questions, seed=seed)
    return (outcome.reader_mean >= reader_floor
            and outcome.separation >= separation_floor)
