"""Distributed cluster layer: shardable nodes over a simulated network.

The single-machine stack made one computer explicit — a bus, a kernel, a
recorder. This package makes *many* of them explicit: a
:class:`~repro.cluster.node.Node` is one shardable machine (clock,
cycle breakdown, observability lane, optionally its own bus and
kernel), a :class:`~repro.cluster.node.Cluster` is N nodes joined by a
:class:`~repro.cluster.network.Network` whose
:class:`~repro.cluster.network.NetworkCostModel` prices every message
in the same cycle currency the bus uses
(:mod:`repro.system.costing`).

Three sharded workloads show the programming models:

- :mod:`repro.cluster.life` — banded Game of Life with halo exchange,
  bit-identical to the serial oracle (data-parallel SPMD);
- :mod:`repro.cluster.mapreduce` — the cache/MMU trace engines sharded
  over node-local simulators with a counter merge (map-reduce);
- :mod:`repro.cluster.queues` — producer/consumer over network queues
  (pipeline parallelism, placement policies).

``python -m repro cluster`` drives them and prints speedup curves with
per-node comm/compute breakdowns; E20 in EXPERIMENTS.md is the
measured story.
"""

from repro.cluster.life import (
    ClusterLife,
    ClusterLifeResult,
    cluster_scaling,
    run_cluster_life,
)
from repro.cluster.mapreduce import (
    MapReduceResult,
    map_reduce_cache,
    map_reduce_translate,
    place_chunks,
    shard_items,
)
from repro.cluster.network import (
    Message,
    NetStats,
    Network,
    NetworkCostModel,
    payload_bytes,
)
from repro.cluster.node import Cluster, Node, NodeStats
from repro.cluster.queues import PipelineResult, item_costs, run_pipeline

__all__ = [
    "Cluster",
    "ClusterLife",
    "ClusterLifeResult",
    "MapReduceResult",
    "Message",
    "NetStats",
    "Network",
    "NetworkCostModel",
    "Node",
    "NodeStats",
    "PipelineResult",
    "cluster_scaling",
    "item_costs",
    "map_reduce_cache",
    "map_reduce_translate",
    "payload_bytes",
    "place_chunks",
    "run_cluster_life",
    "run_pipeline",
    "shard_items",
]
