"""Distributed producer/consumer: the bounded-buffer lab over a network.

The shared-memory course builds producer/consumer on a mutex and two
condition variables; the cluster version replaces the shared buffer with
**network queues** — a producer ``send``s each finished item to a
consumer, a consumer ``recv_any``s whatever arrives next. The buffer's
synchronisation cost becomes visible wire cost: every hand-off pays
latency plus ``item_bytes / bandwidth``, and a consumer that outruns its
producers simply waits on the wire (charged to its ``comm`` bucket).

Placement is the scheduling lesson again, now between machines:

- ``round-robin`` — producer *i* deals its items cyclically over the
  consumers (static, placement cost zero, bad under skew);
- ``earliest`` — each item goes to the consumer with the least work
  assigned so far, the greedy list-scheduling rule
  :func:`~repro.core.partition.schedule_makespan` models and
  :func:`~repro.cluster.mapreduce.place_chunks` reuses.

Per-item costs can be skewed (seeded, deterministic) so ``earliest``
visibly beats ``round-robin`` on imbalanced loads — the same punchline
as dynamic-vs-static chunking in E12.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import block_partition
from repro.errors import ClusterError

from repro.cluster.network import NetworkCostModel
from repro.cluster.node import Cluster

PLACEMENTS = ("round-robin", "earliest")


@dataclass
class PipelineResult:
    """What the distributed pipeline produced and what it cost."""
    items: int
    producers: int
    consumers: int
    placement: str
    makespan: float
    consumer_items: list[int]        # items each consumer processed
    node_counters: list[dict[str, float]]
    net_counters: dict[str, float]

    @property
    def throughput(self) -> float:
        """Items completed per thousand simulated cycles."""
        return 1000.0 * self.items / self.makespan if self.makespan else 0.0

    @property
    def consumer_balance(self) -> float:
        """max/min items over busy consumers (1.0 = perfectly even)."""
        busy = [n for n in self.consumer_items if n > 0]
        return max(busy) / min(busy) if busy else 1.0


def item_costs(items: int, base: float, *, skew: float = 0.0,
               seed: int = 0) -> np.ndarray:
    """Deterministic per-item consume costs, optionally skewed.

    ``skew=0`` is uniform; ``skew=s`` draws each cost from
    ``base * (1 + s * u)`` with seeded uniform ``u`` — the imbalanced
    load that separates the placement policies.
    """
    if skew < 0:
        raise ClusterError("skew cannot be negative")
    if skew == 0.0:
        return np.full(items, float(base))
    rng = np.random.default_rng(seed)
    return base * (1.0 + skew * rng.random(items))


def run_pipeline(items: int, *, producers: int = 2, consumers: int = 2,
                 produce_cycles: float = 40.0, consume_cycles: float = 120.0,
                 item_bytes: int = 64, placement: str = "round-robin",
                 skew: float = 0.0, seed: int = 0,
                 net_cost: NetworkCostModel | None = None,
                 recorder=None) -> PipelineResult:
    """Run ``items`` through a producer/consumer cluster; see module doc.

    Ranks ``0..producers-1`` produce, the rest consume. Producers split
    the item range in blocks, pay ``produce_cycles`` per item, and ship
    ``item_bytes`` of payload per hand-off; consumers process arrivals
    in delivery order, paying that item's consume cost.
    """
    if items < 0:
        raise ClusterError("items cannot be negative")
    if producers < 1 or consumers < 1:
        raise ClusterError("need at least one producer and one consumer")
    if placement not in PLACEMENTS:
        raise ClusterError(f"unknown placement {placement!r}; "
                           f"valid: {', '.join(PLACEMENTS)}")
    costs = item_costs(items, consume_cycles, skew=skew, seed=seed)
    cluster = Cluster(producers + consumers, net_cost=net_cost,
                      recorder=recorder)
    consumer_ranks = list(range(producers, producers + consumers))
    expected = [0] * consumers          # items headed to each consumer
    assigned = [0.0] * consumers        # work dealt so far ("earliest")
    # -- produce: compute the item, pick a consumer, ship it ---------------
    for p, span in enumerate(block_partition(items, producers)):
        producer = cluster.nodes[p]
        for k, i in enumerate(span):
            producer.compute(produce_cycles)
            if placement == "round-robin":
                slot = (span.start + k) % consumers
            else:
                slot = min(range(consumers), key=assigned.__getitem__)
            assigned[slot] += float(costs[i])
            expected[slot] += 1
            producer.send(consumer_ranks[slot],
                          {"item": i, "cost": float(costs[i]),
                           "data": bytes(item_bytes)},
                          tag="item")
    # -- consume: drain arrivals in delivery order --------------------------
    done = [0] * consumers
    for slot, rank in enumerate(consumer_ranks):
        consumer = cluster.nodes[rank]
        for _ in range(expected[slot]):
            msg = consumer.recv_any(tag="item")
            consumer.compute(msg.payload["cost"])
            done[slot] += 1
    cluster.barrier()
    cluster.network.assert_drained()
    return PipelineResult(
        items=items, producers=producers, consumers=consumers,
        placement=placement, makespan=cluster.makespan,
        consumer_items=done, node_counters=cluster.breakdowns(),
        net_counters=cluster.net_stats().counters())
