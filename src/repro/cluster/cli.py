"""``python -m repro cluster`` — drive the sharded workloads and report.

Prints the E20 story for one workload: the simulated speedup curve, the
per-node comm/compute cycle breakdown, and (for Life) the bit-identical
check against the serial oracle. ``--chrome OUT.json`` re-runs the
largest configuration with a recorder attached and writes a validated
Chrome trace with one lane per node::

    python -m repro cluster life --nodes 8 --rounds 10 --grid 128
    python -m repro cluster mapreduce --nodes 4 --schedule dynamic
    python -m repro cluster pipeline --nodes 6 --items 64 --skew 3
    python -m repro cluster life --chrome cluster.json
"""

from __future__ import annotations

import numpy as np

from repro.cluster.life import cluster_scaling, run_cluster_life
from repro.cluster.mapreduce import map_reduce_cache, map_reduce_translate
from repro.cluster.network import NetworkCostModel
from repro.cluster.queues import run_pipeline
from repro.life.grid import random_grid
from repro.life.serial import step

USAGE = """\
usage: python -m repro cluster [DEMO] [options]

demos (default: life):
  life        banded Game of Life with halo exchange, scaling curve
  mapreduce   sharded cache + MMU trace engines with a merge phase
  pipeline    distributed producer/consumer over network queues

options:
  --nodes N        largest cluster size (default 8)
  --rounds R       Life generations (default 10)
  --grid N         Life grid is N x N (default 128)
  --mode M         Life edge mode: torus | bounded (default torus)
  --items N        pipeline items / mapreduce trace length (default 64)
  --schedule S     mapreduce placement: block|cyclic|dynamic|guided
  --skew S         pipeline per-item cost skew (default 3.0)
  --latency F      network latency in cycles (default 50)
  --bandwidth F    network bandwidth in bytes/cycle (default 8)
  --chrome OUT     write a validated Chrome trace (one lane per node)"""


def _node_counts(top: int) -> list[int]:
    counts = [1]
    while counts[-1] * 2 <= top:
        counts.append(counts[-1] * 2)
    if counts[-1] != top:
        counts.append(top)
    return counts


def _breakdown_lines(node_counters: list[dict[str, float]]) -> list[str]:
    out = []
    for rank, c in enumerate(node_counters):
        total = c.get("cycles", 0.0)
        compute = c.get("cycles_compute", 0.0)
        comm = total - compute
        share = comm / total if total else 0.0
        out.append(f"    node{rank}: {total:10.0f} cy  "
                   f"(compute {compute:10.0f}, comm {comm:8.0f}, "
                   f"{share:5.1%} comm)")
    return out


def _demo_life(nodes: int, rounds: int, grid_n: int, mode: str,
               cost: NetworkCostModel, chrome: str | None) -> int:
    grid = random_grid(grid_n, grid_n, seed=31)
    print(f"banded Life: {grid_n}x{grid_n} {mode}, {rounds} rounds")
    print(f"  {'nodes':>5}  {'makespan':>10}  {'speedup':>7}  "
          f"{'comm%':>6}  {'msgs':>6}")
    results = cluster_scaling(grid, rounds, _node_counts(nodes), mode=mode,
                              net_cost=cost)
    for n, res in results.items():
        print(f"  {n:>5}  {res.makespan:>10.0f}  {res.speedup:>6.2f}x  "
              f"{res.comm_fraction:>6.1%}  "
              f"{res.net_counters['messages']:>6.0f}")
    largest = results[max(results)]
    print(f"\n  per-node breakdown at {largest.num_nodes} nodes:")
    print("\n".join(_breakdown_lines(largest.node_counters)))
    oracle = grid.astype(np.uint8)
    for _ in range(rounds):
        oracle = step(oracle, mode)
    ok = bool(np.array_equal(largest.grid, oracle))
    print(f"\n  bit-identical to serial oracle: {ok}")
    if chrome is not None:
        _write_trace(chrome, lambda rec: run_cluster_life(
            grid, rounds, nodes=max(results), mode=mode, net_cost=cost,
            recorder=rec))
    return 0 if ok else 1


def _demo_mapreduce(nodes: int, items: int, schedule: str,
                    cost: NetworkCostModel, chrome: str | None) -> int:
    rng = np.random.default_rng(31)
    trace = (rng.integers(0, 64, size=items) * 64).tolist()
    addrs = (rng.integers(0, 32, size=items) * 4096 + 16).tolist()
    print(f"map-reduce: {items}-item traces over {nodes} nodes "
          f"({schedule} placement)")
    for label, res in (
            ("cache", map_reduce_cache(trace, nodes=nodes,
                                       schedule=schedule, net_cost=cost)),
            ("translate", map_reduce_translate(addrs, nodes=nodes,
                                               schedule=schedule,
                                               net_cost=cost))):
        merged = ", ".join(f"{k}={v}" for k, v in sorted(res.merged.items()))
        print(f"\n  {label}: shards {res.shard_sizes}, "
              f"makespan {res.makespan:.0f} cy")
        print(f"    merged: {merged}")
        print("\n".join(_breakdown_lines(res.node_counters)))
    if chrome is not None:
        _write_trace(chrome, lambda rec: map_reduce_cache(
            trace, nodes=nodes, schedule=schedule, net_cost=cost,
            recorder=rec))
    return 0


def _demo_pipeline(nodes: int, items: int, skew: float,
                   cost: NetworkCostModel, chrome: str | None) -> int:
    producers = max(1, nodes // 3)
    consumers = max(1, nodes - producers)
    print(f"pipeline: {items} items, {producers} producers -> "
          f"{consumers} consumers (skew {skew:g})")
    for placement in ("round-robin", "earliest"):
        res = run_pipeline(items, producers=producers, consumers=consumers,
                           placement=placement, skew=skew, seed=31,
                           net_cost=cost)
        print(f"\n  {placement}: makespan {res.makespan:.0f} cy, "
              f"{res.throughput:.2f} items/kcy, "
              f"consumer items {res.consumer_items}")
        print("\n".join(_breakdown_lines(res.node_counters)))
    if chrome is not None:
        _write_trace(chrome, lambda rec: run_pipeline(
            items, producers=producers, consumers=consumers,
            placement="earliest", skew=skew, seed=31, net_cost=cost,
            recorder=rec))
    return 0


def _write_trace(path: str, job) -> None:
    from repro.obs.chrome import write_chrome
    from repro.obs.recorder import TraceRecorder
    recorder = TraceRecorder()
    job(recorder)
    count = write_chrome(recorder, path)
    print(f"\n  wrote {count} Chrome trace events to {path} "
          "(one lane per node; load in https://ui.perfetto.dev)")


def run(argv: list[str]) -> int:
    demo = None
    nodes, rounds, grid_n, items = 8, 10, 128, 64
    mode, schedule, skew = "torus", "block", 3.0
    latency, bandwidth = 50.0, 8.0
    chrome = None
    args = list(argv)

    def _value(flag: str, conv):
        if not args:
            print(f"error: {flag} needs a value")
            return None
        try:
            return conv(args.pop(0))
        except ValueError:
            print(f"error: bad value for {flag}")
            return None

    while args:
        arg = args.pop(0)
        if arg in ("-h", "--help"):
            print(USAGE)
            return 0
        if arg in ("--nodes", "--rounds", "--grid", "--items"):
            val = _value(arg, int)
            if val is None or val < 1:
                print(f"error: {arg} needs a positive integer")
                return 2
            if arg == "--nodes":
                nodes = val
            elif arg == "--rounds":
                rounds = val
            elif arg == "--grid":
                grid_n = val
            else:
                items = val
        elif arg in ("--latency", "--bandwidth", "--skew"):
            val = _value(arg, float)
            if val is None or val < 0:
                print(f"error: {arg} needs a non-negative number")
                return 2
            if arg == "--latency":
                latency = val
            elif arg == "--bandwidth":
                bandwidth = val
            else:
                skew = val
        elif arg == "--mode":
            val = _value(arg, str)
            if val not in ("torus", "bounded"):
                print("error: --mode must be torus or bounded")
                return 2
            mode = val
        elif arg == "--schedule":
            val = _value(arg, str)
            if val not in ("block", "cyclic", "dynamic", "guided"):
                print("error: --schedule must be "
                      "block, cyclic, dynamic, or guided")
                return 2
            schedule = val
        elif arg == "--chrome":
            chrome = _value(arg, str)
            if chrome is None:
                return 2
        elif arg.startswith("-"):
            print(f"error: unknown option {arg!r}\n{USAGE}")
            return 2
        elif demo is None:
            demo = arg
        else:
            print(f"error: unexpected argument {arg!r}\n{USAGE}")
            return 2
    demo = demo or "life"
    if demo not in ("life", "mapreduce", "pipeline"):
        print(f"error: unknown demo {demo!r}\n{USAGE}")
        return 2
    if bandwidth <= 0:
        print("error: --bandwidth must be positive")
        return 2
    cost = NetworkCostModel(latency=latency, bandwidth=bandwidth)
    if demo == "life":
        return _demo_life(nodes, rounds, grid_n, mode, cost, chrome)
    if demo == "mapreduce":
        return _demo_mapreduce(nodes, items, schedule, cost, chrome)
    return _demo_pipeline(nodes, items, skew, cost, chrome)
