"""Map-reduce over sharded trace engines: the cluster's batch lab.

The trace-driven engines (the caching homework's
:meth:`~repro.memory.cache.Cache.simulate_trace`, the VM homework's
:meth:`~repro.vm.mmu.MMU.translate_many`) are embarrassingly shardable:
split the access trace, give every node its *own* cache or MMU, run the
vectorized engine on each shard, then **merge** the per-shard counters
into cluster totals. That is map-reduce in its original shape — map a
pure engine over shards, reduce associative counters — and it is how a
trace too big for one machine (millions of users' worth of accesses)
gets simulated at all.

Shard **placement** is delegated to the E12 chunk schedulers
(:func:`repro.core.partition.chunk_indices`): ``block`` and ``cyclic``
pin chunk *i* to node *i*; ``dynamic``/``guided`` produce a work queue
that :func:`place_chunks` deals greedily to the earliest-free node —
the same list-scheduling rule :func:`~repro.core.partition
.schedule_makespan` models analytically.

Node-side cycles follow the shared
:class:`~repro.system.costing.CostModel` vocabulary (hit/walk/fault
latencies), message costs follow the
:class:`~repro.cluster.network.NetworkCostModel` — so the report's
comm/compute split is in one currency.

Semantics note (deliberate, and tested): cluster totals equal the sum
of per-shard runs, and a 1-node ``block`` run equals the plain
single-machine engine; an N-node run is *N independent caches*, so its
hit counts legitimately differ from one big cache — sharding changes
locality, which is part of the lesson.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.core.partition import CHUNK_MODES, chunk_indices
from repro.errors import ClusterError
from repro.memory.cache import Cache, CacheConfig
from repro.system.costing import CostModel

from repro.cluster.network import NetworkCostModel
from repro.cluster.node import Cluster

#: root-side cycles to fold one counter key during the reduce
MERGE_CYCLES_PER_KEY = 1.0


def place_chunks(chunks: list[list[int]], num_nodes: int,
                 mode: str) -> list[list[int]]:
    """Assign schedule chunks to nodes; returns item indices per rank.

    ``block``/``cyclic`` are static: chunk *i* belongs to node *i*.
    ``dynamic``/``guided`` deal each queue chunk to the earliest-free
    node (cost modelled as chunk length — greedy list scheduling, the
    work-queue behaviour of :func:`~repro.core.partition
    .schedule_makespan`).
    """
    if mode in ("block", "cyclic"):
        if len(chunks) != num_nodes:
            raise ClusterError("static schedule produced "
                               f"{len(chunks)} chunks for {num_nodes} nodes")
        return [list(chunk) for chunk in chunks]
    shards: list[list[int]] = [[] for _ in range(num_nodes)]
    finish = [0.0] * num_nodes
    for chunk in chunks:
        slot = min(range(num_nodes), key=finish.__getitem__)
        shards[slot].extend(chunk)
        finish[slot] += len(chunk)
    return shards


def shard_items(n: int, num_nodes: int, mode: str,
                chunk_size: int | None = None) -> list[list[int]]:
    """Item indices per rank for ``range(n)`` under a schedule mode."""
    if mode not in CHUNK_MODES:
        raise ClusterError(f"unknown schedule {mode!r}; "
                           f"valid: {', '.join(CHUNK_MODES)}")
    return place_chunks(chunk_indices(n, num_nodes, mode, chunk_size),
                        num_nodes, mode)


@dataclass
class MapReduceResult:
    """Merged counters plus the run's shape and cost."""
    engine: str                      # "cache" | "translate"
    schedule: str
    num_nodes: int
    total_items: int
    shard_sizes: list[int]
    merged: dict[str, int]           # the reduce output (cluster totals)
    makespan: float
    node_counters: list[dict[str, float]]
    net_counters: dict[str, float]

    @property
    def compute_cycles(self) -> float:
        return sum(c.get("cycles_compute", 0.0) for c in self.node_counters)

    @property
    def comm_cycles(self) -> float:
        return sum(c.get("cycles_comm", 0.0) for c in self.node_counters)


def _reduce_to_root(cluster: Cluster, partials: list[dict[str, int]]
                    ) -> dict[str, int]:
    """Gather per-node counter dicts to rank 0 and fold them (in order)."""
    root = cluster.nodes[0]
    for node in cluster.nodes[1:]:
        node.send(0, partials[node.rank], tag="reduce")
    merged = dict(partials[0])
    for node in cluster.nodes[1:]:
        part = root.recv(node.rank, tag="reduce")
        for key, value in part.items():
            merged[key] = merged.get(key, 0) + value
        root.compute(MERGE_CYCLES_PER_KEY * len(part))
    return merged


def _normalize_trace(trace) -> list:
    if isinstance(trace, np.ndarray):
        return [int(a) for a in trace]
    return list(trace)


def map_reduce_cache(trace, *, nodes: int, schedule: str = "block",
                     chunk_size: int | None = None,
                     config: CacheConfig | None = None,
                     cost: CostModel | None = None,
                     net_cost: NetworkCostModel | None = None,
                     recorder=None) -> MapReduceResult:
    """Shard a cache trace over N node-local caches and merge the stats.

    Each node hosts its own :class:`~repro.memory.cache.Cache` (the
    homework simulator) and runs the E14 vectorized engine over its
    shard; a hit costs ``hit_time``, a miss additionally pays
    ``cost.memory_time``. The reduce gathers every
    :class:`~repro.memory.cache.CacheStats` field to rank 0 and sums.
    """
    items = _normalize_trace(trace)
    if nodes < 1:
        raise ClusterError("need at least one node")
    cost = cost or CostModel()
    config = config or CacheConfig(num_lines=64, block_size=16,
                                   associativity=2, hit_time=1)
    shards = shard_items(len(items), nodes, schedule, chunk_size)
    cluster = Cluster(nodes, net_cost=net_cost, recorder=recorder)
    partials: list[dict[str, int]] = []
    for node, idxs in zip(cluster.nodes, shards):
        if idxs:
            cache = Cache(config)
            stats = cache.simulate_trace([items[i] for i in idxs])
            cycles = (stats.accesses * config.hit_time
                      + stats.misses * cost.memory_time)
            node.compute(cycles)
            part = {k: int(v) for k, v in asdict(stats).items()}
            # the derived counters are linear, so per-shard values sum
            # to the cluster-wide ones — include them in the reduce
            part["accesses"] = int(stats.accesses)
            part["hits"] = int(stats.hits)
            part["misses"] = int(stats.misses)
            partials.append(part)
        else:
            partials.append({})
    merged = _reduce_to_root(cluster, partials)
    cluster.barrier()
    return MapReduceResult(
        engine="cache", schedule=schedule, num_nodes=nodes,
        total_items=len(items), shard_sizes=[len(s) for s in shards],
        merged=merged, makespan=cluster.makespan,
        node_counters=cluster.breakdowns(),
        net_counters=cluster.net_stats().counters())


def map_reduce_translate(vaddrs, *, nodes: int, schedule: str = "block",
                         chunk_size: int | None = None,
                         page_size: int = 4096, num_frames: int = 64,
                         tlb_entries: int = 16,
                         cost: CostModel | None = None,
                         net_cost: NetworkCostModel | None = None,
                         recorder=None) -> MapReduceResult:
    """Shard an address trace over N node-local MMUs and merge the stats.

    Each node gets its own :class:`~repro.vm.mmu.MMU` (private TLB,
    page table, frames) and batch-translates its shard with
    :meth:`~repro.vm.mmu.MMU.translate_many`; cycles follow the EAT
    vocabulary — every access probes the TLB, a miss walks the table,
    a fault pays ``fault_service_time``.
    """
    from repro.vm.mmu import MMU
    from repro.vm.physical import PhysicalMemory
    addrs = [int(a) for a in np.asarray(vaddrs, dtype=np.int64)]
    if nodes < 1:
        raise ClusterError("need at least one node")
    cost = cost or CostModel()
    num_pages = (max(addrs) // page_size + 1) if addrs else 1
    shards = shard_items(len(addrs), nodes, schedule, chunk_size)
    cluster = Cluster(nodes, net_cost=net_cost, recorder=recorder)
    partials: list[dict[str, int]] = []
    for node, idxs in zip(cluster.nodes, shards):
        if idxs:
            mmu = MMU(PhysicalMemory(num_frames, page_size),
                      page_size=page_size, tlb_entries=tlb_entries)
            mmu.create_process(0, num_pages)
            batch = mmu.translate_many([addrs[i] for i in idxs], pid=0)
            misses = batch.accesses - batch.tlb_hits
            cycles = (batch.accesses * cost.tlb_time
                      + misses * cost.memory_time
                      + batch.page_faults * cost.fault_service_time)
            node.compute(cycles)
            partials.append({
                "accesses": int(batch.accesses),
                "tlb_hits": int(batch.tlb_hits),
                "tlb_misses": int(misses),
                "page_faults": int(batch.page_faults),
                "evictions": int(batch.evictions),
                "writebacks": int(batch.writebacks),
            })
        else:
            partials.append({})
    merged = _reduce_to_root(cluster, partials)
    cluster.barrier()
    return MapReduceResult(
        engine="translate", schedule=schedule, num_nodes=nodes,
        total_items=len(addrs), shard_sizes=[len(s) for s in shards],
        merged=merged, makespan=cluster.makespan,
        node_counters=cluster.breakdowns(),
        net_counters=cluster.net_stats().counters())
