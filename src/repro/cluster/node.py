"""One machine of the cluster, made explicit — and the cluster itself.

Everything before this package assumed a single implicit machine: *the*
bus, *the* kernel, *the* recorder. :class:`Node` reifies it — rank, a
simulated clock, a per-node cycle breakdown, its own observability lane
(``pid="cluster"``, ``tid="node<rank>"`` — one Chrome lane per node),
and on demand its own memory bus and OS kernel, built by the same
factories the single-machine stack uses. :class:`Cluster` is N of them
plus the :class:`~repro.cluster.network.Network` between, with the two
collectives every sharded workload needs (barrier, allreduce) built
from real messages so their cost follows the network cost model.

Timing model: each node owns a monotone ``clock`` (cycles).
:meth:`Node.compute` advances it and charges the ``compute`` bucket;
:meth:`Node.send`/:meth:`Node.recv` advance it by what the network
says and charge ``comm`` — *including* time spent waiting for a
message still on the wire, which is how a banded workload's imbalance
becomes visible in the per-node breakdown. The cluster's makespan is
the maximum node clock, exactly as
:attr:`repro.core.machine.SimMachine.makespan` is the maximum core
time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import ClusterError
from repro.obs.recorder import coalesce
from repro.system.costing import CycleStats

from repro.cluster.network import Network, NetworkCostModel, NetStats


@dataclass
class NodeStats(CycleStats):
    """Where one node's cycles went (``compute`` vs ``comm``)."""

    def counters(self) -> dict[str, float]:
        out: dict[str, float] = {"cycles": self.cycles}
        out.update(self.breakdown_counters())
        return out

    @property
    def compute_cycles(self) -> float:
        return self.breakdown.get("compute", 0.0)

    @property
    def comm_cycles(self) -> float:
        """Everything that isn't compute: overheads, transfers, waits."""
        return self.cycles - self.compute_cycles


class Node:
    """One shardable machine: clock + stats + lane (+ bus + kernel).

    The node does not schedule itself — workloads drive nodes in rank
    order while the clocks keep honest simulated time (see the module
    docstring). ``bus`` and ``kernel`` exist so a shard can host the
    single-machine engines: :meth:`ensure_bus` puts a
    :mod:`repro.system` memory bus on the node, :meth:`make_kernel`
    boots an :class:`~repro.ossim.kernel.Kernel`, both wired to the
    node's recorder lane.
    """

    def __init__(self, rank: int, network: Network, *,
                 recorder=None, name: str | None = None) -> None:
        self.rank = rank
        self.network = network
        self.name = name or f"node{rank}"
        self.clock = 0.0
        self.stats = NodeStats()
        self.recorder = coalesce(recorder)
        self.bus = None              # attached by ensure_bus()
        self.kernel = None           # attached by make_kernel()
        self._compute_series = None  # lazy span handle on this node's lane
        self._comm_series = None

    # -- observability lane -------------------------------------------------

    def _lane(self, kind: str):
        rec = self.recorder
        if kind == "compute":
            if self._compute_series is None:
                self._compute_series = rec.span_series(
                    "compute", pid="cluster", tid=self.name, cat="cluster")
            return self._compute_series
        if self._comm_series is None:
            self._comm_series = rec.span_series(
                "comm", pid="cluster", tid=self.name, cat="cluster")
        return self._comm_series

    # -- simulated work -----------------------------------------------------

    def compute(self, cycles: float) -> float:
        """Busy the node for ``cycles``; returns the new clock."""
        if cycles < 0:
            raise ClusterError("compute cycles cannot be negative")
        start = self.clock
        self.clock = start + cycles
        self.stats.charge("compute", cycles)
        if self.recorder.enabled and cycles > 0:
            self._lane("compute").add(start, cycles)
        return self.clock

    def _advance_comm(self, new_clock: float) -> None:
        delta = new_clock - self.clock
        if delta < 0:       # clocks are monotone by construction
            raise ClusterError("node clock ran backwards")
        self.stats.charge("comm", delta)
        if self.recorder.enabled and delta > 0:
            self._lane("comm").add(self.clock, delta)
        self.clock = new_clock

    def send(self, dst: int, payload: Any, *, tag: str = "") -> None:
        """Send ``payload`` to rank ``dst`` (sender busy for the overhead)."""
        self._advance_comm(self.network.send(self.rank, dst, payload,
                                             tag=tag, clock=self.clock))

    def recv(self, src: int, *, tag: str = "") -> Any:
        """Receive the next message from ``src`` (waits on the wire)."""
        payload, new_clock = self.network.recv(self.rank, src, tag=tag,
                                               clock=self.clock)
        self._advance_comm(new_clock)
        return payload

    def recv_any(self, *, tag: str = ""):
        """Receive whichever message for this node arrives first.

        Returns the whole :class:`~repro.cluster.network.Message`.
        """
        msg, new_clock = self.network.recv_any(self.rank, tag=tag,
                                               clock=self.clock)
        self._advance_comm(new_clock)
        return msg

    # -- hosting the single-machine stack ------------------------------------

    def ensure_bus(self, kind: str = "flat", **kwargs):
        """Attach (once) and return this node's own memory bus.

        The same :func:`repro.system.make_bus` factory the
        single-machine CLI uses, sharing the node's recorder — a
        cluster of N nodes is N independent buses, not one global one.
        """
        if self.bus is None:
            from repro.system.bus import make_bus
            rec = self.recorder if self.recorder.enabled else None
            self.bus = make_bus(kind, recorder=rec, **kwargs)
        return self.bus

    def make_kernel(self, **kwargs):
        """Boot (once) and return this node's own OS kernel."""
        if self.kernel is None:
            from repro.ossim.kernel import Kernel
            rec = self.recorder if self.recorder.enabled else None
            self.kernel = Kernel(recorder=rec, **kwargs)
        return self.kernel

    def __repr__(self) -> str:
        return (f"Node({self.rank}, clock={self.clock:g}, "
                f"compute={self.stats.compute_cycles:g}, "
                f"comm={self.stats.comm_cycles:g})")


class Cluster:
    """N nodes plus the network between them, with collectives.

    The container every sharded workload starts from::

        cluster = Cluster(4)
        cluster.nodes[0].send(1, row, tag="halo")
        ...
        total = cluster.allreduce([n.rank for n in cluster.nodes])
        cluster.barrier()

    ``allreduce`` is a real gather-to-root + broadcast over
    :meth:`Node.send`/:meth:`Node.recv`, so its cost (2·(N−1) messages
    through the root) follows the network cost model; ``barrier`` uses
    the analytic log-depth tree cost
    (:meth:`~repro.cluster.network.NetworkCostModel.barrier_cycles`)
    and synchronises every clock to the latest node — the wait each
    node pays is charged to its ``comm`` bucket, which is exactly the
    load-imbalance signal the E20 breakdown reports.
    """

    def __init__(self, num_nodes: int, *,
                 net_cost: NetworkCostModel | None = None,
                 recorder=None) -> None:
        self.network = Network(num_nodes, cost=net_cost, recorder=recorder)
        self.recorder = coalesce(recorder)
        self.nodes = [Node(rank, self.network, recorder=recorder)
                      for rank in range(num_nodes)]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def makespan(self) -> float:
        """The cluster finishes when its slowest node does."""
        return max(node.clock for node in self.nodes)

    def barrier(self) -> float:
        """Synchronise every node; returns the common post-barrier clock."""
        target = self.makespan + self.network.cost.barrier_cycles(
            self.num_nodes)
        for node in self.nodes:
            node._advance_comm(target)
        return target

    def allreduce(self, values: Iterable[Any],
                  op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Combine one value per node; every node ends with the result.

        ``values`` must supply exactly one entry per rank; ``op``
        defaults to addition. Rank 0 gathers in rank order, folds, and
        broadcasts — all through real messages.
        """
        values = list(values)
        if len(values) != self.num_nodes:
            raise ClusterError(
                f"allreduce needs one value per node "
                f"({len(values)} given, {self.num_nodes} nodes)")
        if op is None:
            def op(a, b):
                return a + b
        root, others = self.nodes[0], self.nodes[1:]
        for node in others:
            node.send(0, values[node.rank], tag="allreduce")
        result = values[0]
        for node in others:
            result = op(result, root.recv(node.rank, tag="allreduce"))
        for node in others:
            root.send(node.rank, result, tag="allreduce:bcast")
        for node in others:
            node.recv(0, tag="allreduce:bcast")
        return result

    def breakdowns(self) -> list[dict[str, float]]:
        """Per-node flat counters (rank order) for reports and benches."""
        return [node.stats.counters() for node in self.nodes]

    def net_stats(self) -> NetStats:
        return self.network.stats
