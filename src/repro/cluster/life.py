"""Sharded Game of Life: row bands across nodes with halo exchange.

The distributed end of the Lab 10 story. The shared-memory engine gave
every thread a view of one grid; here no node ever holds the whole grid
— rank *i* owns the row band :func:`~repro.core.partition.partition_grid`
assigns it, and each generation it

1. **sends** its edge rows to its band neighbours (the halo exchange —
   two messages per interior node per round),
2. **receives** the neighbouring edge rows it needs,
3. **computes** its band with the same O(band)
   :func:`~repro.life.serial.step_band` kernel the shared-memory
   workers run, over a local ``(h+2) × cols`` array whose first and
   last rows are the received halos,
4. joins a population **allreduce** and the round **barrier**.

On a torus the non-empty bands form a ring (node 0's top halo is the
last band's bottom row); bounded grids drop the wrap and use zero
halos at the outer edges. Either way the result is **bit-identical**
to :func:`repro.life.serial.step` applied to the whole grid — pinned by
a randomized oracle test over 1–8 nodes, both edge modes, uneven and
empty bands, ≥50 generations.

The cost story mirrors :mod:`repro.life.parallel`: computing a cell
costs :data:`~repro.life.parallel.CELL_CYCLES` on the node's clock,
while halo bytes pay the network's latency/bandwidth model — so the
E20 scaling curve shows real speedup with an honest comm/compute
breakdown per node instead of the free communication a shared-memory
simulation assumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.partition import partition_grid
from repro.errors import ReproError
from repro.life.parallel import CELL_CYCLES, run_serial_cycles
from repro.life.serial import EdgeMode, step_band

from repro.cluster.network import NetworkCostModel
from repro.cluster.node import Cluster


@dataclass
class ClusterLifeResult:
    """What a distributed run produced, and what it cost."""
    grid: np.ndarray                 # final grid, gathered on rank 0
    rounds: int
    num_nodes: int
    makespan: float                  # max node clock after the last barrier
    round_populations: list[int]     # allreduced live count per round
    node_counters: list[dict[str, float]]   # per-rank cycle breakdowns
    net_counters: dict[str, float]   # network totals (messages/bytes/cycles)
    band_rows: list[int] = field(default_factory=list)   # rows per rank

    @property
    def serial_cycles(self) -> float:
        return run_serial_cycles(self.grid, self.rounds)

    @property
    def speedup(self) -> float:
        """Simulated speedup over the one-machine serial engine."""
        return self.serial_cycles / self.makespan if self.makespan else 1.0

    @property
    def comm_fraction(self) -> float:
        """Share of all node cycles spent off-compute (comm + waits)."""
        total = sum(c["cycles"] for c in self.node_counters)
        compute = sum(c.get("cycles_compute", 0.0)
                      for c in self.node_counters)
        return (total - compute) / total if total else 0.0


class ClusterLife:
    """The banded engine, one object so tests can poke mid-run state."""

    def __init__(self, grid: np.ndarray, *, nodes: int,
                 mode: EdgeMode = "torus",
                 net_cost: NetworkCostModel | None = None,
                 recorder=None) -> None:
        if grid.ndim != 2:
            raise ReproError("life grid must be 2-D")
        if nodes < 1:
            raise ReproError("need at least one node")
        if mode not in ("torus", "bounded"):
            raise ReproError(f"unknown edge mode {mode!r}")
        self.mode: EdgeMode = mode
        self.rounds_run = 0
        self.round_populations: list[int] = []
        self.cluster = Cluster(nodes, net_cost=net_cost, recorder=recorder)
        regions = partition_grid(grid.shape[0], grid.shape[1], nodes, "row")
        seed = grid.astype(np.uint8)
        self.cols = int(grid.shape[1])
        #: rank → its private band (empty bands allowed: parts > rows)
        self.bands: list[np.ndarray] = [
            seed[r.row_start:r.row_end].copy() for r in regions]
        #: ranks that own at least one row, in row order — the halo ring
        self.ring = [i for i, b in enumerate(self.bands) if len(b)]

    # -- one generation -----------------------------------------------------

    def _neighbors(self, pos: int) -> tuple[int | None, int | None]:
        """(pred, succ) ranks of ring position ``pos`` (None = grid edge)."""
        ring = self.ring
        if self.mode == "torus":
            return ring[pos - 1], ring[(pos + 1) % len(ring)]
        pred = ring[pos - 1] if pos > 0 else None
        succ = ring[pos + 1] if pos + 1 < len(ring) else None
        return pred, succ

    def step(self) -> None:
        """One synchronous generation across every node."""
        r = self.rounds_run
        ring = self.ring
        nodes = self.cluster.nodes
        exchange = len(ring) > 1
        # phase 1 — every node posts its halo rows (rank order; each
        # send is stamped with the sending node's own clock)
        if exchange:
            for pos, rank in enumerate(ring):
                band = self.bands[rank]
                pred, succ = self._neighbors(pos)
                if succ is not None:
                    nodes[rank].send(succ, band[-1].copy(),
                                     tag=f"halo-dn:{r}")
                if pred is not None:
                    nodes[rank].send(pred, band[0].copy(),
                                     tag=f"halo-up:{r}")
        # phase 2 — receive halos, step the band locally
        zeros = np.zeros(self.cols, dtype=np.uint8)
        new_bands: dict[int, np.ndarray] = {}
        live = [0] * self.cluster.num_nodes
        for pos, rank in enumerate(ring):
            band = self.bands[rank]
            node = nodes[rank]
            if exchange:
                pred, succ = self._neighbors(pos)
                top = node.recv(pred, tag=f"halo-dn:{r}") \
                    if pred is not None else zeros
                bottom = node.recv(succ, tag=f"halo-up:{r}") \
                    if succ is not None else zeros
            else:
                # a single band is its own neighbour on a torus
                top = band[-1] if self.mode == "torus" else zeros
                bottom = band[0] if self.mode == "torus" else zeros
            local = np.vstack([top[None, :], band, bottom[None, :]])
            out = np.zeros_like(local)
            h = len(band)
            step_band(local, out, 1, h + 1, self.mode)
            new_bands[rank] = out[1:h + 1]
            node.compute(band.size * CELL_CYCLES)
            live[rank] = int(new_bands[rank].sum())
        for rank, band in new_bands.items():
            self.bands[rank] = band
        # phase 3 — the shared population counter, now a collective
        self.round_populations.append(int(self.cluster.allreduce(live)))
        self.cluster.barrier()
        self.rounds_run += 1

    # -- driving ------------------------------------------------------------

    def run(self, rounds: int) -> ClusterLifeResult:
        """Run ``rounds`` generations; gather and report."""
        if rounds < 0:
            raise ReproError("rounds cannot be negative")
        for _ in range(rounds):
            self.step()
        # makespan covers the steady-state rounds; the final gather is
        # the one-off readback that follows
        makespan = self.cluster.makespan
        node_counters = self.cluster.breakdowns()
        net = self.cluster.net_stats().counters()
        return ClusterLifeResult(
            grid=self.gather(), rounds=self.rounds_run,
            num_nodes=self.cluster.num_nodes, makespan=makespan,
            round_populations=list(self.round_populations),
            node_counters=node_counters, net_counters=net,
            band_rows=[len(b) for b in self.bands])

    def gather(self) -> np.ndarray:
        """Collect every band onto rank 0 and return the full grid."""
        nodes = self.cluster.nodes
        for rank in self.ring:
            if rank != 0:
                nodes[rank].send(0, self.bands[rank], tag="gather")
        parts = [self.bands[rank] if rank == 0
                 else nodes[0].recv(rank, tag="gather")
                 for rank in self.ring]
        if not parts:
            return np.zeros((0, self.cols), dtype=np.uint8)
        return np.vstack(parts)


def run_cluster_life(grid: np.ndarray, rounds: int, *, nodes: int,
                     mode: EdgeMode = "torus",
                     net_cost: NetworkCostModel | None = None,
                     recorder=None) -> ClusterLifeResult:
    """Banded Life over ``nodes`` simulated machines (see module doc)."""
    engine = ClusterLife(grid, nodes=nodes, mode=mode, net_cost=net_cost,
                         recorder=recorder)
    return engine.run(rounds)


def cluster_scaling(grid: np.ndarray, rounds: int, node_counts: list[int],
                    *, mode: EdgeMode = "torus",
                    net_cost: NetworkCostModel | None = None
                    ) -> dict[int, ClusterLifeResult]:
    """The E20 curve: one full run per node count, same seed grid."""
    return {n: run_cluster_life(grid, rounds, nodes=n, mode=mode,
                                net_cost=net_cost)
            for n in node_counts}
