"""The simulated message-passing network between cluster nodes.

MPI at CS 31 depth: nodes exchange explicit messages over links with
per-link latency and bandwidth, and every byte moved is accounted in
simulated cycles — the same cost-model discipline the memory bus
established, now between machines instead of inside one. The model is
the classic latency/bandwidth (LogP-lite) formula::

    deliver_ts = send_ts + send_overhead + latency + nbytes / bandwidth

with ``latency`` and ``bandwidth`` overridable per directed link
(:attr:`NetworkCostModel.link_latency` / ``link_bandwidth`` — a "rack"
of close nodes and a slow cross-rack uplink take two dict entries).

Delivery is deterministic by construction: messages between one
``(src, dst, tag)`` pair form a FIFO queue (senders' clocks never run
backwards, so queue order is delivery order), and :meth:`Network.recv_any`
breaks ties on ``(deliver_ts, seq)`` where ``seq`` is a global send
counter. Two identical runs therefore produce byte-identical
:attr:`Network.events` logs — pinned by the determinism tests.

Accounting follows :mod:`repro.system.costing`: :class:`NetStats` is a
:class:`~repro.system.costing.CycleStats` whose buckets say where wire
time went (``send`` / ``latency`` / ``transfer`` / ``recv``), plus
message/byte counters and per-link tallies. Observability follows
:mod:`repro.obs`: a send emits an instant on the network lane and a
per-link counter sample, all guarded on ``recorder.enabled``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ClusterError
from repro.obs.recorder import coalesce
from repro.system.costing import CycleStats


@dataclass(frozen=True)
class NetworkCostModel:
    """Latency/bandwidth parameters of the simulated interconnect.

    Units match the bus :class:`~repro.system.costing.CostModel`:
    everything is cycles (and bytes per cycle), so node compute time and
    network time land on one clock. Defaults are deliberately "fast
    LAN relative to one cell update": a short message costs ~60 cycles
    while a 128×128 Life band costs ~2000 compute cycles, so banded
    scaling stays visibly monotone yet comm is never free.
    """
    latency: float = 50.0         # wire cycles per message
    bandwidth: float = 8.0        # payload bytes per cycle
    send_overhead: float = 4.0    # sender-side cycles per message
    recv_overhead: float = 4.0    # receiver-side cycles per message
    #: per-directed-link overrides, keyed by (src, dst)
    link_latency: dict[tuple[int, int], float] = field(default_factory=dict)
    link_bandwidth: dict[tuple[int, int], float] = field(default_factory=dict)

    def wire_cycles(self, src: int, dst: int,
                    nbytes: int) -> tuple[float, float]:
        """(latency, transfer) cycles for ``nbytes`` over ``src → dst``."""
        latency = self.link_latency.get((src, dst), self.latency)
        bandwidth = self.link_bandwidth.get((src, dst), self.bandwidth)
        if bandwidth <= 0:
            raise ClusterError(f"link {src}->{dst} has non-positive "
                               f"bandwidth {bandwidth}")
        return latency, nbytes / bandwidth

    def barrier_cycles(self, num_nodes: int) -> float:
        """Cost of one full barrier: a log-depth tree of round trips."""
        if num_nodes <= 1:
            return 0.0
        return 2.0 * self.latency * math.ceil(math.log2(num_nodes))


@dataclass
class NetStats(CycleStats):
    """What crossed the network, and what it cost (cycles by bucket)."""
    messages: int = 0
    bytes_moved: int = 0

    def counters(self) -> dict[str, float]:
        """A flat dict for reports and stats-equality assertions."""
        out: dict[str, float] = {"messages": self.messages,
                                 "bytes": self.bytes_moved,
                                 "cycles": self.cycles}
        out.update(self.breakdown_counters())
        return out


@dataclass(frozen=True)
class Message:
    """One in-flight message (payload + its place on the wire)."""
    seq: int
    src: int
    dst: int
    tag: str
    payload: Any
    nbytes: int
    send_ts: float
    deliver_ts: float


def payload_bytes(payload: Any) -> int:
    """Deterministic wire size of a payload, in bytes.

    Numpy arrays and raw bytes report their true size; scalars cost one
    machine word; containers sum their items plus a small header — a
    stable stand-in for serialization, not an exact pickle count.
    """
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (bool, int, float, np.integer, np.floating)) \
            or payload is None:
        return 8
    if isinstance(payload, dict):
        return 8 + sum(payload_bytes(k) + payload_bytes(v)
                       for k, v in payload.items())
    if isinstance(payload, (list, tuple)):
        return 8 + sum(payload_bytes(item) for item in payload)
    raise ClusterError(
        f"cannot size payload of type {type(payload).__name__} "
        "(send arrays, bytes, scalars, or containers of those)")


class Network:
    """Point-to-point simulated messaging between ``num_nodes`` ranks.

    The primitives (:meth:`send`, :meth:`recv`, :meth:`recv_any`) take
    and return the caller's *clock* so all timing flows through one
    place; :class:`~repro.cluster.node.Node` wraps them with per-node
    accounting, and :class:`~repro.cluster.node.Cluster` builds
    ``barrier``/``allreduce`` on top. :attr:`events` is the append-only
    delivery log the determinism tests fingerprint: one
    ``("send"|"recv", seq, src, dst, tag, nbytes, ts)`` tuple per
    operation, in program order.
    """

    def __init__(self, num_nodes: int, *,
                 cost: NetworkCostModel | None = None,
                 recorder=None) -> None:
        if num_nodes < 1:
            raise ClusterError("a network needs at least one node")
        self.num_nodes = num_nodes
        self.cost = cost or NetworkCostModel()
        self.stats = NetStats()
        #: per-directed-link (messages, bytes) tallies
        self.link_traffic: dict[tuple[int, int], list[int]] = {}
        #: the deterministic operation log (see class docstring)
        self.events: list[tuple] = []
        self._queues: dict[tuple[int, int, str], deque[Message]] = {}
        self._seq = 0
        self.recorder = coalesce(recorder)
        self._send_instants = None      # lazy series handle
        self._link_counters: dict[tuple[int, int], Any] = {}

    # -- validation ---------------------------------------------------------

    def _check_rank(self, rank: int, what: str) -> None:
        if not 0 <= rank < self.num_nodes:
            raise ClusterError(f"{what} rank {rank} out of range "
                               f"(cluster has {self.num_nodes} nodes)")

    # -- point-to-point -----------------------------------------------------

    def send(self, src: int, dst: int, payload: Any, *, tag: str = "",
             clock: float = 0.0) -> float:
        """Post a message; returns the sender's advanced clock.

        The sender is busy for ``send_overhead`` cycles; the message
        travels on its own (latency + size/bandwidth) and becomes
        receivable at ``deliver_ts``. Sending never blocks — buffering
        is infinite, as in the MPI eager protocol.
        """
        self._check_rank(src, "sender")
        self._check_rank(dst, "receiver")
        nbytes = payload_bytes(payload)
        latency, transfer = self.cost.wire_cycles(src, dst, nbytes)
        send_ts = clock + self.cost.send_overhead
        deliver_ts = send_ts + latency + transfer
        msg = Message(self._seq, src, dst, tag, payload, nbytes,
                      send_ts, deliver_ts)
        self._seq += 1
        self._queues.setdefault((src, dst, tag), deque()).append(msg)
        self.stats.messages += 1
        self.stats.bytes_moved += nbytes
        self.stats.charge("send", self.cost.send_overhead)
        self.stats.charge("latency", latency)
        self.stats.charge("transfer", transfer)
        traffic = self.link_traffic.setdefault((src, dst), [0, 0])
        traffic[0] += 1
        traffic[1] += nbytes
        self.events.append(("send", msg.seq, src, dst, tag, nbytes, clock))
        rec = self.recorder
        if rec.enabled:
            if self._send_instants is None:
                self._send_instants = rec.instant_series(
                    "net.send", pid="network", tid="wire", cat="net")
            self._send_instants.hit(send_ts)
            link = (src, dst)
            ctr = self._link_counters.get(link)
            if ctr is None:
                ctr = rec.counter_series(
                    f"link {src}->{dst}", ("messages", "bytes"),
                    pid="network", tid=f"{src}->{dst}", cat="net")
                self._link_counters[link] = ctr
            ctr.sample(send_ts, (traffic[0], traffic[1]))
        return send_ts

    def recv(self, dst: int, src: int, *, tag: str = "",
             clock: float = 0.0) -> tuple[Any, float]:
        """Receive the next ``src → dst`` message with ``tag``.

        Returns ``(payload, advanced clock)``: the receiver waits until
        the message's ``deliver_ts`` if it arrives early, then pays
        ``recv_overhead``. A recv with no matching message posted is a
        :class:`~repro.errors.ClusterError` — in this orchestrated
        model it means the program deadlocked, not that the message is
        still coming.
        """
        self._check_rank(dst, "receiver")
        self._check_rank(src, "sender")
        queue = self._queues.get((src, dst, tag))
        if not queue:
            raise ClusterError(
                f"node {dst} recv from {src} (tag {tag!r}): no message "
                "posted — the cluster program would deadlock here")
        msg = queue.popleft()
        return self._deliver(msg, clock)

    def recv_any(self, dst: int, *, tag: str = "",
                 clock: float = 0.0) -> tuple[Message, float]:
        """Receive whichever pending message for ``dst`` arrives first.

        Earliest ``deliver_ts`` wins; the global send sequence breaks
        ties, so the choice is deterministic. Returns the whole
        :class:`Message` (the caller usually wants ``src`` too).
        """
        self._check_rank(dst, "receiver")
        best_key = None
        best: Message | None = None
        for (_, d, t), queue in self._queues.items():
            if d != dst or t != tag or not queue:
                continue
            head = queue[0]
            key = (head.deliver_ts, head.seq)
            if best_key is None or key < best_key:
                best_key = key
                best = head
        if best is None:
            raise ClusterError(
                f"node {dst} recv_any (tag {tag!r}): no message pending")
        self._queues[(best.src, dst, tag)].popleft()
        _, new_clock = self._deliver(best, clock)
        return best, new_clock

    def _deliver(self, msg: Message, clock: float) -> tuple[Any, float]:
        new_clock = max(clock, msg.deliver_ts) + self.cost.recv_overhead
        self.stats.charge("recv", self.cost.recv_overhead)
        self.events.append(("recv", msg.seq, msg.src, msg.dst, msg.tag,
                            msg.nbytes, new_clock))
        return msg.payload, new_clock

    # -- introspection ------------------------------------------------------

    def pending(self, dst: int | None = None) -> int:
        """Messages posted but not yet received (for ``dst`` if given)."""
        return sum(len(q) for (_, d, _), q in self._queues.items()
                   if dst is None or d == dst)

    def assert_drained(self) -> None:
        """Raise if any message was posted but never received."""
        left = self.pending()
        if left:
            raise ClusterError(f"{left} message(s) never received")

    def describe(self) -> str:
        c = self.cost
        return (f"network: {self.num_nodes} nodes, latency {c.latency:g}cy, "
                f"bandwidth {c.bandwidth:g}B/cy, "
                f"overheads {c.send_overhead:g}/{c.recv_overhead:g}cy")
