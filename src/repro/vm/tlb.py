"""The translation lookaside buffer.

"...TLB caching of address translations to speed-up effective memory
access time" (§III-A). A small fully-associative LRU cache of
(pid, vpn) → frame mappings. Context switches either flush it or rely on
the pid tag — the course teaches the flush model, so that's the default,
but tagged mode is available to show why hardware grew ASIDs.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import VmError


@dataclass(slots=True)
class TlbStats:
    hits: int = 0
    misses: int = 0
    flushes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class TLB:
    """Fully-associative, LRU-replaced translation cache."""

    def __init__(self, capacity: int = 16, *, tagged: bool = False,
                 recorder=None) -> None:
        from repro.obs.recorder import coalesce
        if capacity <= 0:
            raise VmError("TLB needs positive capacity")
        self.capacity = capacity
        self.tagged = tagged
        self._entries: OrderedDict[tuple[int, int], int] = OrderedDict()
        self.stats = TlbStats()
        #: shared trace recorder (see repro.obs); NULL_RECORDER when off
        self.recorder = coalesce(recorder)
        self._ctr_series = None   # trace handle, resolved on first use

    def _record_counters(self) -> None:
        if self._ctr_series is None:
            self._ctr_series = self.recorder.counter_series(
                "tlb", ("hits", "misses", "flushes"),
                pid="vm", tid="tlb", cat="vm")
        stats = self.stats
        self._ctr_series.sample(
            self.recorder.now(),
            (stats.hits, stats.misses, stats.flushes))

    def _key(self, pid: int, vpn: int) -> tuple[int, int]:
        return (pid if self.tagged else 0, vpn)

    def lookup(self, pid: int, vpn: int) -> int | None:
        key = self._key(pid, vpn)
        frame = self._entries.get(key)
        if frame is None:
            self.stats.misses += 1
            if self.recorder.enabled:
                self._record_counters()
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if self.recorder.enabled:
            self._record_counters()
        return frame

    def insert(self, pid: int, vpn: int, frame: int) -> None:
        key = self._key(pid, vpn)
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) == self.capacity:
            self._entries.popitem(last=False)   # evict LRU
        self._entries[key] = frame

    def record_repeat_hits(self, pid: int, vpn: int, count: int) -> None:
        """Account ``count`` repeated hits to a resident entry at once.

        The batch translation path
        (:meth:`~repro.vm.mmu.MMU.translate_many`) collapses a run of
        accesses to one page into a single walk plus ``count`` TLB
        hits; this applies those hits in one step — the entry moves to
        most-recently-used (a no-op when it already is, exactly as
        ``count`` scalar lookups would leave it) and the hit counter
        advances by ``count``.
        """
        if count < 0:
            raise VmError("hit count cannot be negative")
        key = self._key(pid, vpn)
        if key not in self._entries:
            raise VmError(f"page {vpn} of pid {pid} is not in the TLB")
        self._entries.move_to_end(key)
        self.stats.hits += count
        if self.recorder.enabled:
            self._record_counters()

    def invalidate(self, pid: int, vpn: int) -> None:
        self._entries.pop(self._key(pid, vpn), None)

    def flush(self) -> None:
        """Full flush — what an untagged TLB does on context switch."""
        self._entries.clear()
        self.stats.flushes += 1
        if self.recorder.enabled:
            self.recorder.instant("tlb-flush", pid="vm", tid="tlb",
                                  cat="vm")
            self._record_counters()

    def __len__(self) -> int:
        return len(self._entries)
