"""Single-level page tables — the course's chosen VM mechanism.

"We introduce single-level paged virtual memory and discuss virtual-to-
physical address translation using a page table" (§III-A, *Operating
Systems*). One :class:`PageTable` per process; entries carry the
valid/dirty/referenced bits plus protection, and the table renders the
way the homework asks students to draw it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtectionFault, VmError


@dataclass(slots=True)
class PageTableEntry:
    """One row of the page table."""
    valid: bool = False        # page resident in RAM?
    frame: int = 0
    dirty: bool = False
    referenced: bool = False
    writable: bool = True
    in_swap: bool = False      # evicted copy exists on disk


class PageTable:
    """A process's linear page table (``num_pages`` virtual pages)."""

    def __init__(self, num_pages: int) -> None:
        if num_pages <= 0:
            raise VmError("page table needs at least one page")
        self.entries = [PageTableEntry() for _ in range(num_pages)]

    @property
    def num_pages(self) -> int:
        return len(self.entries)

    def entry(self, vpn: int) -> PageTableEntry:
        if not 0 <= vpn < len(self.entries):
            raise VmError(f"virtual page {vpn} out of range "
                          f"(0..{len(self.entries) - 1})")
        return self.entries[vpn]

    def map_page(self, vpn: int, frame: int) -> None:
        e = self.entry(vpn)
        e.valid = True
        e.frame = frame
        e.dirty = False
        e.referenced = False

    def unmap_page(self, vpn: int) -> PageTableEntry:
        e = self.entry(vpn)
        if not e.valid:
            raise VmError(f"page {vpn} is not mapped")
        e.valid = False
        return e

    def check_access(self, vpn: int, *, write: bool) -> PageTableEntry:
        """Permission check used on every translation."""
        e = self.entry(vpn)
        if write and not e.writable:
            raise ProtectionFault(f"write to read-only page {vpn}")
        return e

    def resident_pages(self) -> list[int]:
        return [i for i, e in enumerate(self.entries) if e.valid]

    def render(self) -> str:
        """The homework's page-table drawing: V/D/R bits and frame."""
        rows = []
        for i, e in enumerate(self.entries):
            if e.valid:
                rows.append(f"page {i}: V=1 frame={e.frame} "
                            f"D={int(e.dirty)} R={int(e.referenced)}")
            else:
                tail = " (in swap)" if e.in_swap else ""
                rows.append(f"page {i}: V=0{tail}")
        return "\n".join(rows)
