"""Virtual memory (CS 31 §III-A, *Operating Systems*: the VM half).

Single-level page tables, physical frames, swap, a TLB with flush-on-
context-switch semantics, and an MMU that performs translation, page
fault handling with global-LRU replacement, and effective-access-time
analysis — the machinery behind homeworks VM-1 and VM-2 and bench E6.
"""

from repro.vm.mmu import (
    BatchTranslation,
    CostModel,
    MMU,
    MmuStats,
    Translation,
)
from repro.vm.page_table import PageTable, PageTableEntry
from repro.vm.physical import FrameInfo, PhysicalMemory
from repro.vm.swap import SwapSpace
from repro.vm.tlb import TLB, TlbStats

__all__ = [
    "MMU", "Translation", "BatchTranslation", "MmuStats", "CostModel",
    "PageTable", "PageTableEntry",
    "PhysicalMemory", "FrameInfo",
    "SwapSpace",
    "TLB", "TlbStats",
]
