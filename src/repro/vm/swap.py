"""Swap space: where evicted pages go.

Models the secondary-storage side of virtual memory's "memory appears to
have larger capacity than physical RAM": evicted pages get a slot, and a
later page fault on the same page "reads" it back (and tells the caller,
so fault costs can be charged).
"""

from __future__ import annotations

from repro.errors import VmError


class SwapSpace:
    """Unbounded slot store keyed by (pid, vpn)."""

    def __init__(self) -> None:
        self._slots: dict[tuple[int, int], int] = {}
        self._next_slot = 0
        self.pages_out = 0
        self.pages_in = 0

    def page_out(self, pid: int, vpn: int) -> int:
        """Store a page; returns its slot (idempotent per page version)."""
        key = (pid, vpn)
        slot = self._slots.get(key)
        if slot is None:
            slot = self._next_slot
            self._next_slot += 1
            self._slots[key] = slot
        self.pages_out += 1
        return slot

    def contains(self, pid: int, vpn: int) -> bool:
        return (pid, vpn) in self._slots

    def page_in(self, pid: int, vpn: int) -> int:
        """Fetch a page back; returns the slot it came from."""
        slot = self._slots.get((pid, vpn))
        if slot is None:
            raise VmError(f"page (pid={pid}, vpn={vpn}) is not in swap")
        self.pages_in += 1
        return slot

    def discard(self, pid: int, vpn: int) -> None:
        self._slots.pop((pid, vpn), None)

    def discard_process(self, pid: int) -> int:
        """Drop all of a process's swapped pages (exit); returns count."""
        keys = [k for k in self._slots if k[0] == pid]
        for k in keys:
            del self._slots[k]
        return len(keys)

    @property
    def used_slots(self) -> int:
        return len(self._slots)
