"""The MMU: translation, page faults, LRU replacement, context switches.

This is the machinery behind homeworks VM-1 and VM-2: trace one or two
processes' memory accesses through page tables, showing page faults,
LRU eviction of frames, dirty write-backs to swap, the effect of context
switches on the TLB, and the resulting effective access time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import is_power_of_two, log2_exact
from repro.errors import VmError
from repro.vm.page_table import PageTable
from repro.vm.physical import PhysicalMemory
from repro.vm.swap import SwapSpace
from repro.vm.tlb import TLB


@dataclass(frozen=True, slots=True)
class Translation:
    """What one access did — the row of a VM homework trace."""
    pid: int
    vaddr: int
    vpn: int
    frame: int
    paddr: int
    tlb_hit: bool
    page_fault: bool
    evicted: tuple[int, int] | None = None   # (pid, vpn) pushed out
    wrote_back: bool = False                 # eviction was dirty


@dataclass(frozen=True, slots=True)
class BatchTranslation:
    """What a :meth:`MMU.translate_many` batch did, in aggregate.

    ``paddrs`` is the per-access physical address array (the same
    values ``Translation.paddr`` would carry, computed vectorized); the
    counters are this batch's deltas against :class:`MmuStats` /
    :class:`~repro.vm.tlb.TlbStats`.
    """
    pid: int
    paddrs: "object"        # np.ndarray[int64]
    accesses: int
    tlb_hits: int
    page_faults: int
    evictions: int
    writebacks: int

    @property
    def tlb_hit_rate(self) -> float:
        return self.tlb_hits / self.accesses if self.accesses else 0.0

    @property
    def fault_rate(self) -> float:
        return self.page_faults / self.accesses if self.accesses else 0.0


@dataclass
class MmuStats:
    accesses: int = 0
    page_faults: int = 0
    evictions: int = 0
    writebacks: int = 0
    context_switches: int = 0

    @property
    def fault_rate(self) -> float:
        return self.page_faults / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class CostModel:
    """Latency parameters for the effective-access-time lecture formula."""
    memory_time: float = 100.0        # one RAM access (also page-table read)
    tlb_time: float = 1.0             # TLB probe
    fault_service_time: float = 8_000_000.0  # disk + handler


class MMU:
    """Per-process page tables over shared physical memory + swap + TLB."""

    def __init__(self, physical: PhysicalMemory | None = None,
                 *, page_size: int = 4096, tlb_entries: int = 16,
                 tagged_tlb: bool = False, num_frames: int = 8,
                 replacement: str = "lru", recorder=None) -> None:
        from repro.obs.recorder import coalesce
        if not is_power_of_two(page_size):
            raise VmError("page size must be a power of two")
        if replacement not in ("lru", "fifo"):
            raise VmError(f"unknown replacement policy {replacement!r}")
        self.replacement = replacement
        self.page_size = page_size
        self._offset_bits = log2_exact(page_size)
        self.physical = physical or PhysicalMemory(num_frames, page_size)
        if self.physical.frame_size != page_size:
            raise VmError("frame size must equal page size")
        self.swap = SwapSpace()
        #: shared trace recorder (see repro.obs); NULL_RECORDER when off
        self.recorder = coalesce(recorder)
        self.tlb = TLB(tlb_entries, tagged=tagged_tlb, recorder=recorder)
        self.page_tables: dict[int, PageTable] = {}
        self.current_pid: int | None = None
        self.stats = MmuStats()
        self._clock = 0
        self._ctr_series = None   # trace handle, resolved on first use

    # -- process management ----------------------------------------------------

    def create_process(self, pid: int, num_pages: int) -> PageTable:
        """Give a new process an (empty) page table."""
        if pid in self.page_tables:
            raise VmError(f"pid {pid} already exists")
        table = PageTable(num_pages)
        self.page_tables[pid] = table
        if self.current_pid is None:
            self.current_pid = pid
        return table

    def destroy_process(self, pid: int) -> None:
        """Process exit: release its frames, swap slots, and table."""
        table = self._table(pid)
        for vpn in table.resident_pages():
            self.physical.release(table.entry(vpn).frame)
        self.swap.discard_process(pid)
        del self.page_tables[pid]
        if self.current_pid == pid:
            self.current_pid = next(iter(self.page_tables), None)
            if not self.tlb.tagged:
                self.tlb.flush()

    def context_switch(self, pid: int) -> None:
        """Switch the running process; an untagged TLB must flush."""
        self._table(pid)
        if pid != self.current_pid:
            if self.recorder.enabled:
                self.recorder.instant(
                    "context-switch", ts=self._clock, pid="vm",
                    tid="mmu", cat="vm",
                    args={"from": self.current_pid, "to": pid})
            self.current_pid = pid
            self.stats.context_switches += 1
            if not self.tlb.tagged:
                self.tlb.flush()

    def _table(self, pid: int) -> PageTable:
        table = self.page_tables.get(pid)
        if table is None:
            raise VmError(f"no such process {pid}")
        return table

    # -- translation -------------------------------------------------------------

    def split(self, vaddr: int) -> tuple[int, int]:
        """Virtual address → (virtual page number, offset)."""
        return vaddr >> self._offset_bits, vaddr & (self.page_size - 1)

    def access(self, vaddr: int, *, write: bool = False,
               pid: int | None = None) -> Translation:
        """Translate and 'perform' one access for the current process."""
        if pid is not None:
            self.context_switch(pid)
        if self.current_pid is None:
            raise VmError("no process is running")
        pid = self.current_pid
        table = self._table(pid)
        vpn, offset = self.split(vaddr)
        entry = table.check_access(vpn, write=write)
        self._clock += 1
        self.stats.accesses += 1

        frame = self.tlb.lookup(pid, vpn)
        tlb_hit = frame is not None
        page_fault = False
        evicted = None
        wrote_back = False

        if frame is None:
            if entry.valid:
                frame = entry.frame
            else:
                page_fault = True
                self.stats.page_faults += 1
                frame, evicted, wrote_back = self._handle_fault(pid, vpn)
                if self.recorder.enabled:
                    self.recorder.instant(
                        "page-fault", ts=self._clock, pid="vm",
                        tid="mmu", cat="vm",
                        args={"pid": pid, "vpn": vpn,
                              "evicted": evicted,
                              "wrote_back": wrote_back})
            self.tlb.insert(pid, vpn, frame)

        self.physical.touch(frame, self._clock)
        entry.referenced = True
        if write:
            entry.dirty = True
        if self.recorder.enabled:
            self._record_counters()
        return Translation(pid, vaddr, vpn, frame,
                           paddr=(frame << self._offset_bits) | offset,
                           tlb_hit=tlb_hit, page_fault=page_fault,
                           evicted=evicted, wrote_back=wrote_back)

    def _record_counters(self) -> None:
        """One cumulative "vm" counter sample at the current clock."""
        if self._ctr_series is None:
            self._ctr_series = self.recorder.counter_series(
                "vm", ("accesses", "page_faults", "evictions",
                       "writebacks"),
                pid="vm", tid="mmu", cat="vm")
        stats = self.stats
        self._ctr_series.sample(
            self._clock, (stats.accesses, stats.page_faults,
                          stats.evictions, stats.writebacks))

    def _handle_fault(self, pid: int, vpn: int
                      ) -> tuple[int, tuple[int, int] | None, bool]:
        """Bring (pid, vpn) into RAM, evicting the global-LRU frame if full."""
        evicted = None
        wrote_back = False
        if self.physical.full:
            victim_frame = (self.physical.lru_frame()
                            if self.replacement == "lru"
                            else self.physical.fifo_frame())
            info = self.physical.release(victim_frame)
            victim_table = self._table(info.pid)
            victim_entry = victim_table.unmap_page(info.vpn)
            self.tlb.invalidate(info.pid, info.vpn)
            self.stats.evictions += 1
            evicted = (info.pid, info.vpn)
            if victim_entry.dirty:
                self.swap.page_out(info.pid, info.vpn)
                victim_entry.in_swap = True
                wrote_back = True
                self.stats.writebacks += 1

        table = self._table(pid)
        entry = table.entry(vpn)
        if entry.in_swap:
            self.swap.page_in(pid, vpn)
            entry.in_swap = False
        frame = self.physical.allocate(pid, vpn, self._clock)
        table.map_page(vpn, frame)
        return frame, evicted, wrote_back

    def translate_many(self, vaddrs, *, writes=None,
                       pid: int | None = None) -> BatchTranslation:
        """Batch-translate a whole address trace for one process.

        The vectorized analogue of calling :meth:`access` per address:
        page numbers and offsets are extracted in one numpy pass, and
        runs of consecutive accesses to the same page — the common case
        for ``from_address_space``-style traces — collapse into a
        single page walk at the run head plus bulk-accounted TLB hits
        (:meth:`~repro.vm.tlb.TLB.record_repeat_hits`), so faults batch
        to one handler invocation per run instead of a per-address
        Python round trip. Stats, TLB contents and recency order, page
        tables, frame metadata, and the returned physical addresses are
        all identical to the scalar walk; a :class:`ProtectionFault`
        surfaces at exactly the access where the scalar walk would
        raise it, with all earlier accesses already applied.

        ``writes`` is an optional bool array-like (default: all loads).
        Returns a :class:`BatchTranslation` with the per-access
        physical addresses and this batch's stat deltas.
        """
        import numpy as np
        if pid is not None:
            self.context_switch(pid)
        if self.current_pid is None:
            raise VmError("no process is running")
        pid = self.current_pid
        table = self._table(pid)
        vaddrs = np.asarray(vaddrs, dtype=np.int64)
        if writes is None:
            writes = np.zeros(len(vaddrs), dtype=bool)
        else:
            writes = np.asarray(writes, dtype=bool)
            if writes.shape != vaddrs.shape:
                raise VmError("writes mask must match vaddrs in length")
        vpns = vaddrs >> self._offset_bits
        offsets = vaddrs & (self.page_size - 1)
        frames = np.zeros(len(vaddrs), dtype=np.int64)

        accesses0 = self.stats.accesses
        faults0 = self.stats.page_faults
        evictions0 = self.stats.evictions
        writebacks0 = self.stats.writebacks
        tlb_hits0 = self.tlb.stats.hits

        if len(vaddrs):
            heads = np.flatnonzero(np.r_[True, vpns[1:] != vpns[:-1]])
            ends = np.r_[heads[1:], len(vaddrs)]
            for start, end in zip(heads.tolist(), ends.tolist()):
                vpn = int(vpns[start])
                run_writes = writes[start:end]
                entry = table.entry(vpn)
                if not entry.writable and bool(run_writes.any()):
                    # a write will protection-fault somewhere in this
                    # run: replay it scalar so the fault lands exactly
                    # where the per-address walk raises it
                    for i in range(start, end):
                        frames[i] = self.access(int(vaddrs[i]),
                                                write=bool(writes[i])).frame
                    continue
                first = self.access(int(vaddrs[start]),
                                    write=bool(run_writes[0]))
                frames[start:end] = first.frame
                rest = end - start - 1
                if rest:
                    # the page is now resident and most-recent in the
                    # TLB; the remaining accesses of the run are pure
                    # TLB hits — account them in bulk
                    self.stats.accesses += rest
                    self._clock += rest
                    self.tlb.record_repeat_hits(pid, vpn, rest)
                    self.physical.touch(first.frame, self._clock)
                    entry.referenced = True
                    if bool(run_writes[1:].any()):
                        entry.dirty = True

        if self.recorder.enabled:
            # bulk-accounted repeat hits advanced the stats without a
            # per-access sample; one cumulative sample closes the batch
            self._record_counters()
        paddrs = (frames << self._offset_bits) | offsets
        return BatchTranslation(
            pid=pid, paddrs=paddrs,
            accesses=self.stats.accesses - accesses0,
            tlb_hits=self.tlb.stats.hits - tlb_hits0,
            page_faults=self.stats.page_faults - faults0,
            evictions=self.stats.evictions - evictions0,
            writebacks=self.stats.writebacks - writebacks0)

    # -- trace + analysis ------------------------------------------------------------

    def run_trace(self, accesses: list[tuple[int, int, bool]]
                  ) -> list[Translation]:
        """Run (pid, vaddr, is_write) triples — the VM-2 homework format."""
        return [self.access(vaddr, write=w, pid=pid)
                for pid, vaddr, w in accesses]

    def effective_access_time(self, cost: CostModel | None = None) -> float:
        """EAT from observed TLB and fault behaviour.

        TLB hit: tlb_time + memory_time.
        TLB miss: tlb_time + memory_time (page-table walk) + memory_time.
        Page fault adds fault_service_time.
        """
        c = cost or CostModel()
        n = self.stats.accesses
        if n == 0:
            return 0.0
        tlb_hit_rate = self.tlb.stats.hit_rate
        fault_rate = self.stats.fault_rate
        eat = (c.tlb_time + c.memory_time
               + (1.0 - tlb_hit_rate) * c.memory_time
               + fault_rate * c.fault_service_time)
        return eat

    def render_state(self) -> str:
        """Page tables + RAM drawing, as the homework solutions show."""
        parts = []
        for pid in sorted(self.page_tables):
            parts.append(f"process {pid} page table:")
            parts.append(self.page_tables[pid].render())
        parts.append("RAM:")
        parts.append(self.physical.render())
        return "\n".join(parts)
