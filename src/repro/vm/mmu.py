"""The MMU: translation, page faults, LRU replacement, context switches.

This is the machinery behind homeworks VM-1 and VM-2: trace one or two
processes' memory accesses through page tables, showing page faults,
LRU eviction of frames, dirty write-backs to swap, the effect of context
switches on the TLB, and the resulting effective access time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import is_power_of_two, log2_exact
from repro.errors import VmError
from repro.vm.page_table import PageTable
from repro.vm.physical import PhysicalMemory
from repro.vm.swap import SwapSpace
from repro.vm.tlb import TLB


@dataclass(frozen=True)
class Translation:
    """What one access did — the row of a VM homework trace."""
    pid: int
    vaddr: int
    vpn: int
    frame: int
    paddr: int
    tlb_hit: bool
    page_fault: bool
    evicted: tuple[int, int] | None = None   # (pid, vpn) pushed out
    wrote_back: bool = False                 # eviction was dirty


@dataclass
class MmuStats:
    accesses: int = 0
    page_faults: int = 0
    evictions: int = 0
    writebacks: int = 0
    context_switches: int = 0

    @property
    def fault_rate(self) -> float:
        return self.page_faults / self.accesses if self.accesses else 0.0


@dataclass(frozen=True)
class CostModel:
    """Latency parameters for the effective-access-time lecture formula."""
    memory_time: float = 100.0        # one RAM access (also page-table read)
    tlb_time: float = 1.0             # TLB probe
    fault_service_time: float = 8_000_000.0  # disk + handler


class MMU:
    """Per-process page tables over shared physical memory + swap + TLB."""

    def __init__(self, physical: PhysicalMemory | None = None,
                 *, page_size: int = 4096, tlb_entries: int = 16,
                 tagged_tlb: bool = False, num_frames: int = 8,
                 replacement: str = "lru") -> None:
        if not is_power_of_two(page_size):
            raise VmError("page size must be a power of two")
        if replacement not in ("lru", "fifo"):
            raise VmError(f"unknown replacement policy {replacement!r}")
        self.replacement = replacement
        self.page_size = page_size
        self._offset_bits = log2_exact(page_size)
        self.physical = physical or PhysicalMemory(num_frames, page_size)
        if self.physical.frame_size != page_size:
            raise VmError("frame size must equal page size")
        self.swap = SwapSpace()
        self.tlb = TLB(tlb_entries, tagged=tagged_tlb)
        self.page_tables: dict[int, PageTable] = {}
        self.current_pid: int | None = None
        self.stats = MmuStats()
        self._clock = 0

    # -- process management ----------------------------------------------------

    def create_process(self, pid: int, num_pages: int) -> PageTable:
        """Give a new process an (empty) page table."""
        if pid in self.page_tables:
            raise VmError(f"pid {pid} already exists")
        table = PageTable(num_pages)
        self.page_tables[pid] = table
        if self.current_pid is None:
            self.current_pid = pid
        return table

    def destroy_process(self, pid: int) -> None:
        """Process exit: release its frames, swap slots, and table."""
        table = self._table(pid)
        for vpn in table.resident_pages():
            self.physical.release(table.entry(vpn).frame)
        self.swap.discard_process(pid)
        del self.page_tables[pid]
        if self.current_pid == pid:
            self.current_pid = next(iter(self.page_tables), None)
            if not self.tlb.tagged:
                self.tlb.flush()

    def context_switch(self, pid: int) -> None:
        """Switch the running process; an untagged TLB must flush."""
        self._table(pid)
        if pid != self.current_pid:
            self.current_pid = pid
            self.stats.context_switches += 1
            if not self.tlb.tagged:
                self.tlb.flush()

    def _table(self, pid: int) -> PageTable:
        table = self.page_tables.get(pid)
        if table is None:
            raise VmError(f"no such process {pid}")
        return table

    # -- translation -------------------------------------------------------------

    def split(self, vaddr: int) -> tuple[int, int]:
        """Virtual address → (virtual page number, offset)."""
        return vaddr >> self._offset_bits, vaddr & (self.page_size - 1)

    def access(self, vaddr: int, *, write: bool = False,
               pid: int | None = None) -> Translation:
        """Translate and 'perform' one access for the current process."""
        if pid is not None:
            self.context_switch(pid)
        if self.current_pid is None:
            raise VmError("no process is running")
        pid = self.current_pid
        table = self._table(pid)
        vpn, offset = self.split(vaddr)
        entry = table.check_access(vpn, write=write)
        self._clock += 1
        self.stats.accesses += 1

        frame = self.tlb.lookup(pid, vpn)
        tlb_hit = frame is not None
        page_fault = False
        evicted = None
        wrote_back = False

        if frame is None:
            if entry.valid:
                frame = entry.frame
            else:
                page_fault = True
                self.stats.page_faults += 1
                frame, evicted, wrote_back = self._handle_fault(pid, vpn)
            self.tlb.insert(pid, vpn, frame)

        self.physical.touch(frame, self._clock)
        entry.referenced = True
        if write:
            entry.dirty = True
        return Translation(pid, vaddr, vpn, frame,
                           paddr=(frame << self._offset_bits) | offset,
                           tlb_hit=tlb_hit, page_fault=page_fault,
                           evicted=evicted, wrote_back=wrote_back)

    def _handle_fault(self, pid: int, vpn: int
                      ) -> tuple[int, tuple[int, int] | None, bool]:
        """Bring (pid, vpn) into RAM, evicting the global-LRU frame if full."""
        evicted = None
        wrote_back = False
        if self.physical.full:
            victim_frame = (self.physical.lru_frame()
                            if self.replacement == "lru"
                            else self.physical.fifo_frame())
            info = self.physical.release(victim_frame)
            victim_table = self._table(info.pid)
            victim_entry = victim_table.unmap_page(info.vpn)
            self.tlb.invalidate(info.pid, info.vpn)
            self.stats.evictions += 1
            evicted = (info.pid, info.vpn)
            if victim_entry.dirty:
                self.swap.page_out(info.pid, info.vpn)
                victim_entry.in_swap = True
                wrote_back = True
                self.stats.writebacks += 1

        table = self._table(pid)
        entry = table.entry(vpn)
        if entry.in_swap:
            self.swap.page_in(pid, vpn)
            entry.in_swap = False
        frame = self.physical.allocate(pid, vpn, self._clock)
        table.map_page(vpn, frame)
        return frame, evicted, wrote_back

    # -- trace + analysis ------------------------------------------------------------

    def run_trace(self, accesses: list[tuple[int, int, bool]]
                  ) -> list[Translation]:
        """Run (pid, vaddr, is_write) triples — the VM-2 homework format."""
        return [self.access(vaddr, write=w, pid=pid)
                for pid, vaddr, w in accesses]

    def effective_access_time(self, cost: CostModel | None = None) -> float:
        """EAT from observed TLB and fault behaviour.

        TLB hit: tlb_time + memory_time.
        TLB miss: tlb_time + memory_time (page-table walk) + memory_time.
        Page fault adds fault_service_time.
        """
        c = cost or CostModel()
        n = self.stats.accesses
        if n == 0:
            return 0.0
        tlb_hit_rate = self.tlb.stats.hit_rate
        fault_rate = self.stats.fault_rate
        eat = (c.tlb_time + c.memory_time
               + (1.0 - tlb_hit_rate) * c.memory_time
               + fault_rate * c.fault_service_time)
        return eat

    def render_state(self) -> str:
        """Page tables + RAM drawing, as the homework solutions show."""
        parts = []
        for pid in sorted(self.page_tables):
            parts.append(f"process {pid} page table:")
            parts.append(self.page_tables[pid].render())
        parts.append("RAM:")
        parts.append(self.physical.render())
        return "\n".join(parts)
