"""Physical RAM: a fixed pool of page frames.

The VM homeworks trace "effects on page table and RAM"; this model keeps
the RAM side: which frames are free, and which (pid, virtual page) owns
each allocated frame.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import is_power_of_two
from repro.errors import VmError


@dataclass(slots=True)
class FrameInfo:
    """Ownership record for one allocated frame."""
    pid: int
    vpn: int
    loaded_at: int      # allocation timestamp
    last_used: int      # for LRU replacement


class PhysicalMemory:
    """``num_frames`` frames of ``frame_size`` bytes each."""

    def __init__(self, num_frames: int, frame_size: int = 4096) -> None:
        if num_frames <= 0:
            raise VmError("need at least one frame")
        if not is_power_of_two(frame_size):
            raise VmError("frame size must be a power of two")
        self.num_frames = num_frames
        self.frame_size = frame_size
        self._free: list[int] = list(range(num_frames))
        self.frames: dict[int, FrameInfo] = {}

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def full(self) -> bool:
        return not self._free

    def allocate(self, pid: int, vpn: int, now: int) -> int:
        """Take a free frame for (pid, vpn); raises VmError if RAM is full
        (the MMU must evict first)."""
        if not self._free:
            raise VmError("no free frames (eviction required)")
        frame = self._free.pop(0)
        self.frames[frame] = FrameInfo(pid, vpn, loaded_at=now, last_used=now)
        return frame

    def release(self, frame: int) -> FrameInfo:
        info = self.frames.pop(frame, None)
        if info is None:
            raise VmError(f"frame {frame} is not allocated")
        self._free.append(frame)
        self._free.sort()
        return info

    def touch(self, frame: int, now: int) -> None:
        info = self.frames.get(frame)
        if info is None:
            raise VmError(f"frame {frame} is not allocated")
        info.last_used = now

    def owner(self, frame: int) -> FrameInfo | None:
        return self.frames.get(frame)

    def lru_frame(self) -> int:
        """The least recently used allocated frame (eviction victim)."""
        if not self.frames:
            raise VmError("no allocated frames")
        return min(self.frames, key=lambda f: self.frames[f].last_used)

    def fifo_frame(self) -> int:
        """The oldest-loaded allocated frame (FIFO eviction victim)."""
        if not self.frames:
            raise VmError("no allocated frames")
        return min(self.frames, key=lambda f: self.frames[f].loaded_at)

    def frames_of(self, pid: int) -> list[int]:
        return sorted(f for f, info in self.frames.items()
                      if info.pid == pid)

    def render(self) -> str:
        """The homework 'RAM contents' drawing."""
        rows = []
        for f in range(self.num_frames):
            info = self.frames.get(f)
            if info is None:
                rows.append(f"frame {f}: <free>")
            else:
                rows.append(f"frame {f}: pid {info.pid} page {info.vpn}")
        return "\n".join(rows)
