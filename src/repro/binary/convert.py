"""Base conversion drills: decimal ⟷ binary ⟷ hexadecimal.

These are the hand algorithms CS 31 teaches (repeated division for
decimal→binary, nibble grouping for binary⟷hex), implemented exactly as the
course presents them so the homework generators can show work step by step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BinaryError

_HEX_DIGITS = "0123456789abcdef"


def decimal_to_binary(value: int) -> str:
    """Convert a non-negative integer to its minimal binary string."""
    if value < 0:
        raise BinaryError("decimal_to_binary takes non-negative values; "
                          "use twos_complement.encode for signed")
    if value == 0:
        return "0"
    out: list[str] = []
    n = value
    while n:
        out.append(str(n & 1))
        n >>= 1
    return "".join(reversed(out))


def binary_to_decimal(text: str) -> int:
    """Positional expansion of a binary string."""
    s = text.strip().removeprefix("0b").replace("_", "")
    if not s or any(c not in "01" for c in s):
        raise BinaryError(f"not a binary string: {text!r}")
    total = 0
    for c in s:
        total = total * 2 + (c == "1")
    return total


def binary_to_hex(text: str) -> str:
    """Group bits into nibbles from the right, pad the top nibble."""
    s = text.strip().removeprefix("0b").replace("_", "")
    if not s or any(c not in "01" for c in s):
        raise BinaryError(f"not a binary string: {text!r}")
    pad = (-len(s)) % 4
    s = "0" * pad + s
    return "0x" + "".join(
        _HEX_DIGITS[int(s[i:i + 4], 2)] for i in range(0, len(s), 4))


def hex_to_binary(text: str) -> str:
    """Expand each hex digit to four bits (preserves digit count)."""
    s = text.strip().lower().removeprefix("0x").replace("_", "")
    if not s or any(c not in _HEX_DIGITS for c in s):
        raise BinaryError(f"not a hex string: {text!r}")
    return "".join(format(int(c, 16), "04b") for c in s)


def decimal_to_hex(value: int) -> str:
    """Convert a non-negative integer to 0x-prefixed hexadecimal."""
    if value < 0:
        raise BinaryError("decimal_to_hex takes non-negative values")
    return binary_to_hex(decimal_to_binary(value))


def hex_to_decimal(text: str) -> int:
    """Parse a hex string (with or without 0x) to an integer."""
    return binary_to_decimal(hex_to_binary(text))


@dataclass
class DivisionStep:
    """One row of the repeated-division worksheet."""
    quotient_in: int
    quotient_out: int
    remainder: int

    def __str__(self) -> str:
        return (f"{self.quotient_in} / 2 = {self.quotient_out} "
                f"remainder {self.remainder}")


@dataclass
class ConversionWork:
    """Decimal→binary conversion with the full worked steps shown.

    This is what a homework solution sheet prints: the division ladder and
    the remainders read bottom-up.
    """
    value: int
    steps: list[DivisionStep] = field(default_factory=list)

    @property
    def binary(self) -> str:
        if not self.steps:
            return "0"
        return "".join(str(s.remainder) for s in reversed(self.steps))

    def render(self) -> str:
        lines = [str(s) for s in self.steps]
        lines.append(f"read remainders bottom-up: {self.value} = "
                     f"0b{self.binary}")
        return "\n".join(lines)


def decimal_to_binary_worked(value: int) -> ConversionWork:
    """Produce the repeated-division worksheet for ``value``."""
    if value < 0:
        raise BinaryError("worked conversion takes non-negative values")
    work = ConversionWork(value)
    n = value
    while n:
        work.steps.append(DivisionStep(n, n // 2, n % 2))
        n //= 2
    return work


def positional_expansion(text: str, base: int) -> list[tuple[int, int, int]]:
    """Return ``(digit, base**position, contribution)`` triples, MSB first.

    Used by homework solutions to show e.g. ``0b1011 = 1*8 + 0*4 + 1*2 + 1*1``.
    """
    if base == 2:
        s = text.strip().removeprefix("0b")
        digits = [int(c, 2) for c in s]
    elif base == 16:
        s = text.strip().lower().removeprefix("0x")
        digits = [int(c, 16) for c in s]
    else:
        raise BinaryError(f"unsupported base {base}")
    n = len(digits)
    return [(d, base ** (n - 1 - i), d * base ** (n - 1 - i))
            for i, d in enumerate(digits)]
