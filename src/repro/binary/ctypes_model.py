"""A model of C's integer types on the course's 32-bit lab machines.

CS 31 discusses "the typical number of bytes in different C types" and uses
IA-32 as the reference, so this model fixes the ILP32 sizes. It provides
the conversion/promotion semantics that the homework drills: narrowing
truncates, sign/zero extension on widening, and the usual arithmetic
conversions (signed operand converts to unsigned at equal rank).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import mask
from repro.binary.bits import BitVector
from repro.errors import BinaryError


@dataclass(frozen=True)
class CType:
    """One C integer type: a name, a byte size, and a signedness."""
    name: str
    size_bytes: int
    signed: bool

    @property
    def width(self) -> int:
        return self.size_bytes * 8

    @property
    def min_value(self) -> int:
        return -(1 << (self.width - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.width - 1)) - 1 if self.signed else mask(self.width)

    def contains(self, value: int) -> bool:
        return self.min_value <= value <= self.max_value

    def wrap(self, value: int) -> int:
        """Reduce an arbitrary integer into this type (C conversion rules).

        Unsigned: modulo 2**width (defined behaviour). Signed: we model the
        universal two's-complement wrap that real lab machines exhibit.
        """
        raw = value & mask(self.width)
        if self.signed and raw >> (self.width - 1):
            return raw - (1 << self.width)
        return raw

    def encode(self, value: int) -> BitVector:
        """Bit pattern of ``value`` after conversion into this type."""
        return BitVector(self.wrap(value) & mask(self.width), self.width)

    def to_bytes(self, value: int) -> bytes:
        """Little-endian byte image, as stored on the x86 lab machines."""
        return (self.wrap(value) & mask(self.width)).to_bytes(
            self.size_bytes, "little")

    def from_bytes(self, data: bytes) -> int:
        if len(data) != self.size_bytes:
            raise BinaryError(
                f"{self.name} needs {self.size_bytes} bytes, got {len(data)}")
        return self.wrap(int.from_bytes(data, "little"))

    def __str__(self) -> str:
        return self.name


# ILP32 (IA-32 lab machine) types.
CHAR = CType("char", 1, signed=True)
UCHAR = CType("unsigned char", 1, signed=False)
SHORT = CType("short", 2, signed=True)
USHORT = CType("unsigned short", 2, signed=False)
INT = CType("int", 4, signed=True)
UINT = CType("unsigned int", 4, signed=False)
LONG = CType("long", 4, signed=True)          # ILP32: long is 4 bytes
ULONG = CType("unsigned long", 4, signed=False)
LONG_LONG = CType("long long", 8, signed=True)
ULONG_LONG = CType("unsigned long long", 8, signed=False)
POINTER = CType("void *", 4, signed=False)     # 32-bit addresses

ALL_TYPES: tuple[CType, ...] = (
    CHAR, UCHAR, SHORT, USHORT, INT, UINT, LONG, ULONG,
    LONG_LONG, ULONG_LONG, POINTER,
)

_BY_NAME = {t.name: t for t in ALL_TYPES}


def type_named(name: str) -> CType:
    """Look up a type by its C spelling."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise BinaryError(f"unknown C type: {name!r}") from None


def _rank(t: CType) -> int:
    """Integer conversion rank (C11 6.3.1.1), by size then spelling."""
    order = ["char", "short", "int", "long", "long long"]
    base = t.name.removeprefix("unsigned ").strip()
    if base == "void *":
        return 99
    return order.index(base)


def usual_arithmetic_conversion(a: CType, b: CType) -> CType:
    """The common type of a binary operation on ``a`` and ``b``.

    Models C's rules closely enough for the course: promote both to at
    least ``int``, then at equal rank unsigned wins — the rule behind the
    classic ``-1 < 1U`` is false surprise.
    """
    def promote(t: CType) -> CType:
        if _rank(t) < _rank(INT):
            return INT  # char/short always fit in int
        return t

    a, b = promote(a), promote(b)
    if a == b:
        return a
    if a.signed == b.signed:
        return a if _rank(a) >= _rank(b) else b
    unsigned_t, signed_t = (a, b) if not a.signed else (b, a)
    if _rank(unsigned_t) >= _rank(signed_t):
        return unsigned_t
    # signed type has greater rank; it can represent all unsigned values
    # here because all our wider types double the byte count.
    return signed_t


def convert(value: int, src: CType, dst: CType) -> int:
    """C conversion of ``value`` (currently of type src) into dst."""
    if not src.contains(value):
        value = src.wrap(value)
    return dst.wrap(value)


def binary_op(op: str, x: int, tx: CType, y: int, ty: CType) -> tuple[int, CType]:
    """Evaluate ``x op y`` with C semantics; returns (value, result type).

    Supports + - * / % and the comparisons; division is C truncating
    division. This is what the C-expressions homework checker executes.
    """
    common = usual_arithmetic_conversion(tx, ty)
    a = convert(x, tx, common)
    b = convert(y, ty, common)
    if op == "+":
        return common.wrap(a + b), common
    if op == "-":
        return common.wrap(a - b), common
    if op == "*":
        return common.wrap(a * b), common
    if op == "/":
        if b == 0:
            raise ZeroDivisionError("division by zero in C expression")
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return common.wrap(q), common
    if op == "%":
        if b == 0:
            raise ZeroDivisionError("modulo by zero in C expression")
        q, _ = binary_op("/", a, common, b, common)
        return common.wrap(a - q * b), common
    if op in ("<", ">", "<=", ">=", "==", "!="):
        table = {"<": a < b, ">": a > b, "<=": a <= b,
                 ">=": a >= b, "==": a == b, "!=": a != b}
        return int(table[op]), INT
    raise BinaryError(f"unsupported C operator: {op!r}")
