"""Binary data representation (CS 31 §III-A, *Binary Representation*).

Fixed-width bit patterns, base conversion, two's complement, fixed-width
arithmetic with condition flags, the C integer type model, and binary32
floating point.
"""

from repro.binary.bits import BitVector
from repro.binary.arith import ArithResult, Flags, add, add_worked, mul, neg, sub
from repro.binary.convert import (
    binary_to_decimal,
    binary_to_hex,
    decimal_to_binary,
    decimal_to_binary_worked,
    decimal_to_hex,
    hex_to_binary,
    hex_to_decimal,
    positional_expansion,
)
from repro.binary.ctypes_model import (
    ALL_TYPES,
    CHAR,
    INT,
    LONG,
    LONG_LONG,
    POINTER,
    SHORT,
    UCHAR,
    UINT,
    ULONG,
    ULONG_LONG,
    USHORT,
    CType,
    binary_op,
    convert,
    type_named,
    usual_arithmetic_conversion,
)
from repro.binary.twos_complement import (
    MASK32,
    decode,
    encode,
    fits_signed,
    fits_unsigned,
    negate,
    negate_worked,
    reinterpret_signed,
    reinterpret_unsigned,
    sign32,
    sign_extend_value,
    signed_range,
    unsigned_range,
)
from repro.binary import floating

__all__ = [
    "BitVector", "ArithResult", "Flags", "add", "add_worked", "sub", "neg",
    "mul", "decimal_to_binary", "binary_to_decimal", "binary_to_hex",
    "hex_to_binary", "decimal_to_hex", "hex_to_decimal",
    "decimal_to_binary_worked", "positional_expansion",
    "CType", "ALL_TYPES", "CHAR", "UCHAR", "SHORT", "USHORT", "INT", "UINT",
    "LONG", "ULONG", "LONG_LONG", "ULONG_LONG", "POINTER", "type_named",
    "usual_arithmetic_conversion", "convert", "binary_op",
    "encode", "decode", "negate", "negate_worked", "signed_range",
    "unsigned_range", "fits_signed", "fits_unsigned", "reinterpret_signed",
    "reinterpret_unsigned", "sign_extend_value", "floating",
    "MASK32", "sign32",
]
