"""Fixed-width bit vectors — the course's "everything is bits" foundation.

CS 31's first systems topic is binary data representation (§III-A, *Binary
Representation*). :class:`BitVector` is the shared currency for that module
and for the circuit simulator: an immutable, fixed-width pattern of bits
with explicit unsigned and two's-complement views.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro._util import mask
from repro.errors import BinaryError, RangeError


class BitVector:
    """An immutable fixed-width bit pattern.

    The *pattern* is what is stored; *interpretation* (unsigned vs signed)
    is a view applied by the reader — exactly the distinction the course
    drills with C's ``int`` vs ``unsigned int``.

    >>> b = BitVector.from_unsigned(0b1011, 4)
    >>> b.to_unsigned(), b.to_signed()
    (11, -5)
    """

    __slots__ = ("_value", "_width")

    def __init__(self, value: int, width: int) -> None:
        if width <= 0:
            raise BinaryError(f"width must be positive, got {width}")
        if not 0 <= value <= mask(width):
            raise BinaryError(
                f"raw value {value:#x} does not fit in {width} bits")
        self._value = value
        self._width = width

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_unsigned(cls, value: int, width: int) -> "BitVector":
        """Encode a non-negative integer; raise RangeError on overflow."""
        if value < 0:
            raise RangeError(f"{value} is negative; use from_signed")
        if value > mask(width):
            raise RangeError(f"{value} does not fit in {width} unsigned bits")
        return cls(value, width)

    @classmethod
    def from_signed(cls, value: int, width: int) -> "BitVector":
        """Encode in two's complement; raise RangeError if out of range."""
        lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
        if not lo <= value <= hi:
            raise RangeError(
                f"{value} does not fit in {width}-bit two's complement "
                f"[{lo}, {hi}]")
        return cls(value & mask(width), width)

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "BitVector":
        """Build from bits listed most-significant first."""
        if not bits:
            raise BinaryError("empty bit sequence")
        value = 0
        for b in bits:
            if b not in (0, 1):
                raise BinaryError(f"bit must be 0 or 1, got {b!r}")
            value = (value << 1) | b
        return cls(value, len(bits))

    @classmethod
    def from_string(cls, text: str) -> "BitVector":
        """Parse a string like ``'1011'`` or ``'0b1011'`` (MSB first)."""
        s = text.strip().removeprefix("0b").replace("_", "")
        if not s or any(c not in "01" for c in s):
            raise BinaryError(f"not a binary string: {text!r}")
        return cls(int(s, 2), len(s))

    # -- views --------------------------------------------------------------

    @property
    def width(self) -> int:
        return self._width

    @property
    def raw(self) -> int:
        """The stored pattern as a non-negative integer."""
        return self._value

    def to_unsigned(self) -> int:
        return self._value

    def to_signed(self) -> int:
        """Two's-complement interpretation."""
        sign_bit = 1 << (self._width - 1)
        if self._value & sign_bit:
            return self._value - (1 << self._width)
        return self._value

    def bit(self, i: int) -> int:
        """Bit *i*, numbered LSB=0 (hardware convention)."""
        if not 0 <= i < self._width:
            raise BinaryError(f"bit index {i} out of range for width {self._width}")
        return (self._value >> i) & 1

    def bits_msb_first(self) -> list[int]:
        return [self.bit(i) for i in range(self._width - 1, -1, -1)]

    @property
    def msb(self) -> int:
        """The sign bit under two's complement."""
        return self.bit(self._width - 1)

    @property
    def lsb(self) -> int:
        return self.bit(0)

    # -- structure ----------------------------------------------------------

    def slice(self, hi: int, lo: int) -> "BitVector":
        """Bits ``hi..lo`` inclusive (hardware-style slice, hi >= lo)."""
        if not (0 <= lo <= hi < self._width):
            raise BinaryError(f"bad slice [{hi}:{lo}] of width {self._width}")
        width = hi - lo + 1
        return BitVector((self._value >> lo) & mask(width), width)

    def concat(self, other: "BitVector") -> "BitVector":
        """``self`` becomes the high bits, ``other`` the low bits."""
        return BitVector((self._value << other._width) | other._value,
                         self._width + other._width)

    def zero_extend(self, width: int) -> "BitVector":
        if width < self._width:
            raise BinaryError("cannot zero-extend to a smaller width")
        return BitVector(self._value, width)

    def sign_extend(self, width: int) -> "BitVector":
        """Replicate the sign bit — the Lab 3 sign-extender circuit."""
        if width < self._width:
            raise BinaryError("cannot sign-extend to a smaller width")
        return BitVector(self.to_signed() & mask(width), width)

    def truncate(self, width: int) -> "BitVector":
        """Keep the low ``width`` bits — C's narrowing conversion."""
        if width > self._width:
            raise BinaryError("truncate target wider than source")
        return BitVector(self._value & mask(width), width)

    # -- bitwise operators (width-checked) -----------------------------------

    def _check_width(self, other: "BitVector") -> None:
        if not isinstance(other, BitVector):
            raise TypeError("expected BitVector")
        if other._width != self._width:
            raise BinaryError(
                f"width mismatch: {self._width} vs {other._width}")

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._value & other._value, self._width)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._value | other._value, self._width)

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._value ^ other._value, self._width)

    def __invert__(self) -> "BitVector":
        return BitVector(~self._value & mask(self._width), self._width)

    def shift_left(self, n: int) -> "BitVector":
        """Logical left shift; bits fall off the top (C ``<<``)."""
        if n < 0:
            raise BinaryError("negative shift")
        return BitVector((self._value << n) & mask(self._width), self._width)

    def shift_right_logical(self, n: int) -> "BitVector":
        """Zero-filling right shift (C unsigned ``>>``)."""
        if n < 0:
            raise BinaryError("negative shift")
        return BitVector(self._value >> n, self._width)

    def shift_right_arith(self, n: int) -> "BitVector":
        """Sign-filling right shift (C signed ``>>`` on most compilers)."""
        if n < 0:
            raise BinaryError("negative shift")
        return BitVector((self.to_signed() >> n) & mask(self._width),
                         self._width)

    # -- protocol -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, BitVector)
                and self._value == other._value
                and self._width == other._width)

    def __hash__(self) -> int:
        return hash((self._value, self._width))

    def __len__(self) -> int:
        return self._width

    def __iter__(self) -> Iterator[int]:
        """Iterate MSB-first, matching how the string form reads."""
        return iter(self.bits_msb_first())

    def __repr__(self) -> str:
        return f"BitVector('{self.to_binary_string()}')"

    # -- formatting -------------------------------------------------------------

    def to_binary_string(self, *, group: int = 0) -> str:
        s = format(self._value, f"0{self._width}b")
        if group > 0:
            rev = s[::-1]
            s = "_".join(rev[i:i + group] for i in range(0, len(rev), group))[::-1]
        return s

    def to_hex_string(self) -> str:
        """Hex with enough digits for the full width (``0x0f`` for 8 bits)."""
        digits = (self._width + 3) // 4
        return format(self._value, f"#0{digits + 2}x")
