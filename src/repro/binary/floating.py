"""IEEE-754 single precision, at CS 31 depth.

The course "briefly discuss[es] floating point representation" without
expecting fluent conversion, so this module provides encode/decode plus a
field-by-field breakdown suitable for a lecture demo: sign, biased
exponent, significand, and the special categories (zero, subnormal,
infinity, NaN).
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass

from repro.binary.bits import BitVector
from repro.errors import BinaryError

_BIAS = 127
_EXP_BITS = 8
_FRAC_BITS = 23


@dataclass(frozen=True)
class FloatFields:
    """The three fields of a binary32 value, plus its classification."""
    sign: int            # 0 or 1
    exponent_raw: int    # 8-bit biased field
    fraction: int        # 23-bit significand field
    category: str        # 'zero' | 'subnormal' | 'normal' | 'infinity' | 'nan'

    @property
    def exponent(self) -> int:
        """The unbiased exponent (normals only; subnormals use 1-bias)."""
        if self.category == "normal":
            return self.exponent_raw - _BIAS
        return 1 - _BIAS

    def render(self) -> str:
        return (f"sign={self.sign}  exponent={self.exponent_raw:08b} "
                f"(raw {self.exponent_raw})  "
                f"fraction={self.fraction:023b}  [{self.category}]")


def encode(value: float) -> BitVector:
    """Round ``value`` to binary32 and return its 32-bit pattern."""
    raw = struct.unpack("<I", struct.pack("<f", value))[0]
    return BitVector(raw, 32)


def decode(pattern: BitVector) -> float:
    """Interpret a 32-bit pattern as binary32."""
    if pattern.width != 32:
        raise BinaryError("binary32 patterns are 32 bits")
    return struct.unpack("<f", struct.pack("<I", pattern.raw))[0]


def fields(pattern: BitVector) -> FloatFields:
    """Split a 32-bit pattern into sign/exponent/fraction and classify it."""
    if pattern.width != 32:
        raise BinaryError("binary32 patterns are 32 bits")
    sign = pattern.bit(31)
    exp = pattern.slice(30, 23).to_unsigned()
    frac = pattern.slice(22, 0).to_unsigned()
    if exp == 0:
        category = "zero" if frac == 0 else "subnormal"
    elif exp == (1 << _EXP_BITS) - 1:
        category = "infinity" if frac == 0 else "nan"
    else:
        category = "normal"
    return FloatFields(sign, exp, frac, category)


def value_from_fields(sign: int, exponent_raw: int, fraction: int) -> float:
    """Reconstruct the numeric value from raw fields (the lecture formula)."""
    if sign not in (0, 1):
        raise BinaryError("sign must be 0 or 1")
    if not 0 <= exponent_raw < (1 << _EXP_BITS):
        raise BinaryError("exponent field out of range")
    if not 0 <= fraction < (1 << _FRAC_BITS):
        raise BinaryError("fraction field out of range")
    s = -1.0 if sign else 1.0
    if exponent_raw == (1 << _EXP_BITS) - 1:
        return s * math.inf if fraction == 0 else math.nan
    if exponent_raw == 0:
        return s * (fraction / (1 << _FRAC_BITS)) * 2.0 ** (1 - _BIAS)
    return s * (1 + fraction / (1 << _FRAC_BITS)) * 2.0 ** (exponent_raw - _BIAS)


def ulp_gap(value: float) -> float:
    """Distance to the next representable binary32 above ``value``.

    Demonstrates why ``0.1 + 0.2 != 0.3``-style surprises happen: spacing
    grows with magnitude.
    """
    pattern = encode(value)
    if fields(pattern).category in ("infinity", "nan"):
        raise BinaryError("no ulp for non-finite values")
    nxt = BitVector(pattern.raw + 1, 32)
    return decode(nxt) - decode(pattern)
