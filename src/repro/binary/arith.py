"""Fixed-width binary arithmetic with condition flags.

This models the arithmetic unit the course builds up to: addition and
subtraction produce a result *pattern* plus the four condition flags
(carry, overflow, zero, sign) that the ISA machine and the Lab 3 ALU reuse.
The distinction the course hammers on — **carry** signals *unsigned*
overflow while **overflow** signals *signed* overflow — falls directly out
of the flag definitions here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import mask
from repro.binary.bits import BitVector


@dataclass(frozen=True)
class Flags:
    """The condition codes produced by an arithmetic operation.

    carry     — unsigned result did not fit (borrow, for subtraction)
    overflow  — signed result did not fit (two's-complement overflow)
    zero      — result pattern is all zeros
    sign      — most significant bit of the result
    """
    carry: bool = False
    overflow: bool = False
    zero: bool = False
    sign: bool = False

    def __str__(self) -> str:
        return (f"CF={int(self.carry)} OF={int(self.overflow)} "
                f"ZF={int(self.zero)} SF={int(self.sign)}")


@dataclass(frozen=True)
class ArithResult:
    """A result pattern together with its flags and both interpretations."""
    value: BitVector
    flags: Flags

    @property
    def unsigned(self) -> int:
        return self.value.to_unsigned()

    @property
    def signed(self) -> int:
        return self.value.to_signed()

    @property
    def unsigned_overflow(self) -> bool:
        return self.flags.carry

    @property
    def signed_overflow(self) -> bool:
        return self.flags.overflow


def _result_flags(raw_wide: int, width: int, signed_exact: int) -> ArithResult:
    """Build flags from the un-truncated result and exact signed value."""
    raw = raw_wide & mask(width)
    result = BitVector(raw, width)
    lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    flags = Flags(
        carry=raw_wide != raw,  # bits were lost above the top
        overflow=not (lo <= signed_exact <= hi),
        zero=raw == 0,
        sign=bool(raw >> (width - 1)),
    )
    return ArithResult(result, flags)


def add(a: BitVector, b: BitVector, carry_in: int = 0) -> ArithResult:
    """Fixed-width addition (with optional carry-in, for chaining adders)."""
    if a.width != b.width:
        raise ValueError(f"width mismatch: {a.width} vs {b.width}")
    wide = a.to_unsigned() + b.to_unsigned() + carry_in
    signed_exact = a.to_signed() + b.to_signed() + carry_in
    return _result_flags(wide, a.width, signed_exact)


def sub(a: BitVector, b: BitVector) -> ArithResult:
    """Fixed-width subtraction ``a - b`` implemented as ``a + ~b + 1``.

    The carry flag here follows the x86 convention: set on *borrow*,
    i.e. when ``a < b`` as unsigned values.
    """
    if a.width != b.width:
        raise ValueError(f"width mismatch: {a.width} vs {b.width}")
    w = a.width
    wide = a.to_unsigned() + ((~b).to_unsigned()) + 1
    signed_exact = a.to_signed() - b.to_signed()
    res = _result_flags(wide, w, signed_exact)
    # x86 CF on subtraction = borrow = NOT the adder's carry-out.
    borrow = a.to_unsigned() < b.to_unsigned()
    return ArithResult(res.value, Flags(carry=borrow,
                                        overflow=res.flags.overflow,
                                        zero=res.flags.zero,
                                        sign=res.flags.sign))


def neg(a: BitVector) -> ArithResult:
    """Two's-complement negation as ``0 - a``."""
    zero = BitVector(0, a.width)
    return sub(zero, a)


def mul(a: BitVector, b: BitVector, *, signed: bool) -> ArithResult:
    """Fixed-width multiplication keeping the low ``width`` bits.

    Flags: carry and overflow both indicate that the full product did not
    fit in the result width under the chosen signedness (x86 ``imul``/``mul``
    convention).
    """
    if a.width != b.width:
        raise ValueError(f"width mismatch: {a.width} vs {b.width}")
    w = a.width
    if signed:
        exact = a.to_signed() * b.to_signed()
        lo, hi = -(1 << (w - 1)), (1 << (w - 1)) - 1
        lost = not (lo <= exact <= hi)
    else:
        exact = a.to_unsigned() * b.to_unsigned()
        lost = exact > mask(w)
    raw = exact & mask(w)
    return ArithResult(
        BitVector(raw, w),
        Flags(carry=lost, overflow=lost, zero=raw == 0,
              sign=bool(raw >> (w - 1))))


@dataclass
class ColumnAddition:
    """Grade-school binary column addition with the carry row shown.

    The course teaches addition by hand before showing the adder circuit;
    homework solutions print this worksheet.
    """
    a: BitVector
    b: BitVector
    carries: str          # carry *into* each column, MSB first, w+1 chars
    result: ArithResult

    def render(self) -> str:
        w = self.a.width
        return "\n".join([
            f"carry:  {self.carries}",
            f"        {' ' + self.a.to_binary_string()}",
            f"      + {' ' + self.b.to_binary_string()}",
            f"        {'-' * (w + 1)}",
            f"        {int(self.result.flags.carry)}"
            f"{self.result.value.to_binary_string()}",
            f"flags: {self.result.flags}",
        ])


def add_worked(a: BitVector, b: BitVector) -> ColumnAddition:
    """Column-by-column addition, recording the carry into each position."""
    if a.width != b.width:
        raise ValueError(f"width mismatch: {a.width} vs {b.width}")
    w = a.width
    carries = [0] * (w + 1)  # carries[i] = carry into bit i
    for i in range(w):
        s = a.bit(i) + b.bit(i) + carries[i]
        carries[i + 1] = s >> 1
    carry_row = "".join(str(carries[i]) for i in range(w, -1, -1))
    return ColumnAddition(a, b, carry_row, add(a, b))
