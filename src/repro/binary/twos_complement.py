"""Two's-complement encoding, the course's signed-integer representation.

Provides both the direct encode/decode and the *procedural* form the course
teaches ("flip the bits and add one"), so homework solutions can show work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import mask
from repro.errors import RangeError
from repro.binary.bits import BitVector


#: the 32-bit all-ones mask — the machine word every simulator above the
#: binary module (ISA, registers, address space) truncates to
MASK32 = mask(32)


def sign32(value: int) -> int:
    """Reinterpret the low 32 bits of ``value`` as a signed int.

    The one-line special case of :func:`reinterpret_signed` the ISA
    machine applies on nearly every arithmetic instruction; defined here
    once so the sign test (`& 0x8000_0000`) isn't duplicated per module.
    """
    value &= MASK32
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


def signed_range(width: int) -> tuple[int, int]:
    """Inclusive (min, max) representable in ``width``-bit two's complement."""
    return -(1 << (width - 1)), (1 << (width - 1)) - 1


def unsigned_range(width: int) -> tuple[int, int]:
    """Inclusive (min, max) representable as ``width``-bit unsigned."""
    return 0, mask(width)


def encode(value: int, width: int) -> BitVector:
    """Encode a signed integer as a ``width``-bit two's-complement pattern."""
    return BitVector.from_signed(value, width)


def decode(pattern: BitVector) -> int:
    """Interpret a bit pattern as two's complement."""
    return pattern.to_signed()


def negate(pattern: BitVector) -> BitVector:
    """Two's-complement negation: invert and add one (mod 2**width).

    Note the classic edge case: negating the most-negative value yields
    itself (e.g. ``-128`` in 8 bits), which the course calls out explicitly.
    """
    w = pattern.width
    return BitVector(((~pattern.raw) + 1) & mask(w), w)


@dataclass
class NegationWork:
    """The 'flip the bits and add one' procedure, step by step."""
    original: BitVector
    flipped: BitVector
    result: BitVector

    def render(self) -> str:
        return (f"original: {self.original.to_binary_string()}\n"
                f" flipped: {self.flipped.to_binary_string()}\n"
                f"    +1 =: {self.result.to_binary_string()} "
                f"(= {self.result.to_signed()})")


def negate_worked(pattern: BitVector) -> NegationWork:
    """Negation with the flip-and-add-one steps recorded for display."""
    flipped = ~pattern
    return NegationWork(pattern, flipped, negate(pattern))


def reinterpret_unsigned(pattern: BitVector) -> int:
    """Read the same bits as unsigned — C's ``(unsigned)x`` cast."""
    return pattern.to_unsigned()


def reinterpret_signed(value: int, width: int) -> int:
    """Read an unsigned value's bits as signed — C's ``(int)x`` cast."""
    if not 0 <= value <= mask(width):
        raise RangeError(f"{value} is not a {width}-bit unsigned value")
    return BitVector(value, width).to_signed()


def sign_extend_value(value: int, from_width: int, to_width: int) -> int:
    """Sign-extend a raw pattern and return the new raw pattern."""
    return (BitVector(value & mask(from_width), from_width)
            .sign_extend(to_width).raw)


def fits_signed(value: int, width: int) -> bool:
    """True iff ``value`` is representable in width-bit two's complement."""
    lo, hi = signed_range(width)
    return lo <= value <= hi


def fits_unsigned(value: int, width: int) -> bool:
    """True iff ``value`` is representable as width-bit unsigned."""
    lo, hi = unsigned_range(width)
    return lo <= value <= hi
