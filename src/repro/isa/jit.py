"""Superblock JIT for the ISA machine.

The predecoded :meth:`~repro.isa.machine.Machine.run` loop still pays
Python's dispatch tax once per instruction: a dict lookup, a closure
call, attribute traffic on the register file and flag object, and a bus
round-trip per memory access. This module compiles *hot* code — entry
addresses the interpreter keeps revisiting — into one Python closure
per superblock, with registers and flags held in local variables.

A superblock starts at any hot address and follows the straight-line
path through the program's assembled CFG (:func:`build_asm_cfg`):
fall-through edges and static ``jmp``/``call`` targets extend it;
conditional jumps compile to *side exits* (return to the dispatcher
with the taken target); ``ret``, indirect jumps, ``halt``, a revisited
address (a loop closed), an unsupported instruction, or the length cap
end it. The common loop therefore becomes a single closure executed
once per iteration.

Observational equivalence with :meth:`Machine.step` is the design
constraint, pinned by the differential tests:

* Register/flag/step/halt state matches at every exit, including
  mid-block faults — the generated ``except`` handler writes locals
  back, restores ``%eip`` to the faulting instruction, and reports how
  many instructions completed so the dispatcher's step count is exact.
* Mutation *order* is transcribed from the interpreter handler by
  handler (e.g. ``pushl`` decrements ``%esp`` before the store, flags
  update before a memory destination is written), so a fault observes
  the identical partial state.
* Memory data still moves through the backing
  :class:`~repro.clib.address_space.AddressSpace` at the original
  points — the trace, watcher notifications, and segmentation faults
  are unchanged — while *bus accounting* is deferred: each access
  appends a ``(kind, address, size)`` tuple to a pending list that is
  replayed in one ``replay_block`` call per block, where the vectorized
  engines (``CacheHierarchy.simulate_trace``, ``MMU.translate_many``)
  replace per-access scalar simulation. Pending accounting is flushed
  before any interpreted instruction and on every fault, so the
  hierarchy always sees the exact scalar access sequence.

The JIT declines work instead of approximating it: byte-width
instructions, sub-register operands, and unknown space types fall back
to the predecoded interpreter.

An enabled recorder composes with the JIT instead of disabling it:
every block execution records one complete-span (``block 0x...`` on
the ``isa/cpu`` track, ``dur`` and ``args["instructions"]`` = the
instructions it retired, including partial side-exit and fault runs),
and instructions the dispatcher still interprets record one span each
— all batched through the recorder's bulk-append path, so tracing
costs the dispatch loop two list appends per block entry. That is the
JIT's span granularity: per-instruction ``eip`` args (and fetch
instants) exist only on the interpreter paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import build_asm_cfg
from repro.binary.twos_complement import MASK32
from repro.clib.address_space import Access, AddressSpace
from repro.errors import CMemoryError, MachineFault
from repro.isa.instructions import (
    Immediate,
    INSTRUCTION_SIZE,
    LabelRef,
    Memory,
    Register,
)
from repro.isa.machine import SENTINEL_RETURN, _fell_off
from repro.isa.registers import GP32

#: interpreter visits to one address before it is compiled
DEFAULT_THRESHOLD = 8
#: longest superblock, in instructions
MAX_BLOCK = 64
#: pending bus-accounting entries that force a flush at a block boundary
FLUSH_LIMIT = 1 << 16
#: pending trace spans per bulk append when the recorder is enabled
TRACE_CHUNK = 4096

_M32 = "4294967295"          # MASK32
_SIGN = "2147483648"         # 0x8000_0000

#: conditional-jump predicates over the flag locals (zf/sf/cf/of) —
#: the codegen image of machine._JUMP_CONDITIONS
_COND_SRC = {
    "je": "zf", "jne": "not zf",
    "jg": "not zf and sf == of", "jge": "sf == of",
    "jl": "sf != of", "jle": "zf or sf != of",
    "ja": "not cf and not zf", "jae": "not cf",
    "jb": "cf", "jbe": "cf or zf",
    "js": "sf", "jns": "not sf",
}

_ARITH2 = {"addl", "subl", "cmpl"}
_LOGIC = {"andl", "orl", "xorl", "testl"}
_SHIFTS = {"sall", "shll", "sarl", "shrl"}


class _Unsupported(Exception):
    """This instruction can't be compiled; the block ends before it."""


@dataclass
class JitStats:
    """What the JIT did during a machine's runs."""
    blocks_compiled: int = 0
    entries: int = 0             # times a compiled block was entered
    side_exits: int = 0          # exits before a block's final instruction
    jit_steps: int = 0           # instructions executed inside blocks
    failures: int = 0            # addresses that could not be compiled
    guards_elided: int = 0       # accesses compiled without a bounds check

    def as_dict(self) -> dict[str, int]:
        return {"blocks_compiled": self.blocks_compiled,
                "entries": self.entries, "side_exits": self.side_exits,
                "jit_steps": self.jit_steps, "failures": self.failures,
                "guards_elided": self.guards_elided}


class CompiledBlock:
    __slots__ = ("entry", "length", "fn", "name_id")

    def __init__(self, entry: int, length: int, fn,
                 name_id: int = -1) -> None:
        self.entry = entry
        self.length = length
        self.fn = fn
        #: the block's interned trace label (-1 when tracing is off)
        self.name_id = name_id


def _bind(space):
    """(backing AddressSpace, replay callable or None) for a machine space.

    Returns ``(None, None)`` when the space type is unknown — the
    machine then declines to JIT and stays on the interpreter.
    """
    if isinstance(space, AddressSpace):
        return space, None
    from repro.system.bus import CachedBus, FlatBus, ProcessView
    if isinstance(space, (FlatBus, CachedBus, ProcessView)):
        return space.space, space.replay_block
    return None, None


def supports(space) -> bool:
    """Can the JIT run over this machine's memory?"""
    return _bind(space)[0] is not None


# -- code generation ----------------------------------------------------------
#
# One generated source module per superblock. The factory (`_make`)
# closes over the machine's register dict, flag object, backing space,
# and the engine's pending-accounting list; `block()` is the compiled
# body. Every value written to a register local is already masked to 32
# bits (the same invariant the predecoded writers keep), so writeback
# is a plain store. Generated code returns `(next_eip, executed)`;
# the dispatcher replicates run()'s sentinel/masking/step logic.

class _Writer:
    def __init__(self, *, record: bool, bus: bool, trace: bool,
                 fast: bool = False,
                 safe: frozenset = frozenset()) -> None:
        self.body: list[str] = []
        self.addresses: list[int] = []
        self.used: set[str] = set()
        self.record = record
        self.bus = bus
        self.trace = trace
        self.fast = fast
        # instruction addresses whose memory accesses the optimizer's
        # range analysis proved inside the stack region — those compile
        # without the bounds compare (watcher check only)
        self.safe = safe
        self.cur_safe = False
        self.elided = 0
        self._t = 0
        self.closed = False
        # deferred fetch accounting: consecutive fetch-only instructions
        # batch into one list.extend of a prebuilt segment (see segs);
        # flushed before anything that interleaves with or aborts them
        self._frun: list[int] = []
        self.segs: list[tuple[int, int]] = []

    # -- small helpers ---------------------------------------------------

    def temp(self, prefix: str) -> str:
        self._t += 1
        return f"{prefix}{self._t}"

    def mark(self) -> tuple[int, int, int, int, int]:
        return (len(self.body), len(self.addresses),
                len(self._frun), len(self.segs), self.elided)

    def rollback(self, mark: tuple[int, int, int, int, int]) -> None:
        """Drop everything emitted since ``mark`` (unsupported ins)."""
        del self.body[mark[0]:]
        del self.addresses[mark[1]:]
        del self._frun[mark[2]:]
        del self.segs[mark[3]:]
        self.elided = mark[4]

    def reg(self, name: str) -> str:
        if name not in GP32:
            raise _Unsupported(name)
        self.used.add(name)
        return name

    def emit(self, line: str) -> None:
        self.body.append(line)

    def _ea(self, op: Memory) -> str:
        parts = []
        if op.base:
            parts.append(self.reg(op.base))
        if op.index:
            idx = self.reg(op.index)
            parts.append(idx if op.scale == 1 else f"{idx} * {op.scale}")
        if not parts:
            return str(op.displacement & MASK32)
        if op.displacement:
            parts.insert(0, str(op.displacement))
        return f"({' + '.join(parts)}) & {_M32}"

    def _load_lines(self, a: str) -> str:
        """Emit a guarded 4-byte load from the address atom ``a``.

        The fast branch reads the stack region's bytearray directly —
        sound because the guard proves the access in-bounds in a region
        whose (static) permissions allow it, and the scalar path keeps
        handling everything else: other regions, faults, and any
        attached watcher (``W`` is the live watcher list, so attaching
        one mid-run disables the shortcut for every later access).

        When the optimizer's range analysis proved this instruction's
        accesses inside the stack region (``cur_safe``), the bounds
        compare is elided — only the watcher check remains."""
        v = self.temp("v")
        if not self.fast:
            self.emit(f"{v} = load({a}, 4)")
            return v
        o = self.temp("o")
        self.emit(f"{o} = {a} - SB")
        if self.cur_safe:
            self.elided += 1
            self.emit("if W:")
        else:
            self.emit(f"if W or not 0 <= {o} <= SL:")
        self.emit(f"    {v} = load({a}, 4)")
        self.emit("else:")
        self.emit(f"    {v} = ifb(SD[{o}:{o} + 4], 'little')")
        if self.trace:
            self.emit(f"    tr(Access('load', {a}, 4))")
        return v

    def _store_lines(self, a: str, value: str) -> None:
        """Emit a guarded 4-byte store (value already masked)."""
        if not self.fast:
            self.emit(f"store({a}, {value}, 4)")
            return
        o = self.temp("o")
        self.emit(f"{o} = {a} - SB")
        if self.cur_safe:
            self.elided += 1
            self.emit("if W:")
        else:
            self.emit(f"if W or not 0 <= {o} <= SL:")
        self.emit(f"    store({a}, {value}, 4)")
        self.emit("else:")
        self.emit(f"    SD[{o}:{o} + 4] = ({value}).to_bytes(4, 'little')")
        if self.trace:
            self.emit(f"    tr(Access('store', {a}, 4))")

    def read32(self, op) -> str:
        """Emit any load lines; return an atom for the operand's value."""
        if isinstance(op, Immediate):
            return str(op.value & MASK32)
        if isinstance(op, Register):
            return self.reg(op.name)
        if isinstance(op, LabelRef):
            if op.address is None:
                raise _Unsupported("unresolved label")
            return str(op.address)
        if isinstance(op, Memory):
            self.flush_fetches()
            a = self.temp("a")
            self.emit(f"{a} = {self._ea(op)}")
            v = self._load_lines(a)
            if self.bus:
                self.emit(f"pend(('load', {a}, 4))")
            return v
        raise _Unsupported(repr(op))

    def write32(self, op, value: str) -> None:
        """Store an already-masked 32-bit value into the destination."""
        if isinstance(op, Register):
            self.emit(f"{self.reg(op.name)} = {value}")
            return
        if isinstance(op, Memory):
            self.flush_fetches()
            a = self.temp("a")
            self.emit(f"{a} = {self._ea(op)}")
            self._store_lines(a, value)
            if self.bus:
                self.emit(f"pend(('store', {a}, 4))")
            return
        raise _Unsupported(repr(op))

    def signed(self, raw: str) -> str:
        v = self.temp("s")
        self.emit(f"{v} = {raw} - 4294967296 if {raw} & {_SIGN} else {raw}")
        return v

    def flags_from_value(self, value: str) -> None:
        self.emit(f"zf = {value} == 0")
        self.emit(f"sf = ({value} & {_SIGN}) != 0")

    def writeback_lines(self) -> list[str]:
        lines = [f"_r['{r}'] = {r}" for r in sorted(self.used)]
        lines += ["flags.zf = zf", "flags.sf = sf",
                  "flags.cf = cf", "flags.of = of"]
        return lines

    # -- per-instruction emission ---------------------------------------

    def begin(self, ins, *, risky: bool) -> int:
        """Per-instruction prologue: step index, fetch trace/accounting.

        The fetch itself is deferred into ``_frun``; a risky instruction
        flushes the run first (its own fetch included — the scalar path
        fetches before executing) so a fault never leaves earlier
        fetches unaccounted or later ones over-accounted.
        """
        i = len(self.addresses)
        self.addresses.append(ins.address)
        self.cur_safe = ins.address in self.safe
        if self.record:
            self._frun.append(i)
        if risky:
            self.flush_fetches()
            self.emit(f"n = {i}")
        return i

    def flush_fetches(self) -> None:
        """Emit the deferred fetch run: one extend per multi-fetch
        segment, a plain append for a run of one. Sound because the run
        contains only fetches with nothing accounted between them, so
        their relative order (the only order) is preserved."""
        if not self._frun:
            return
        a, b = self._frun[0], self._frun[-1] + 1
        self._frun.clear()
        if b - a == 1:
            if self.bus:
                self.emit(f"pend(FT[{a}])")
            if self.trace:
                self.emit(f"tr(FA[{a}])")
            return
        k = len(self.segs)
        self.segs.append((a, b))
        if self.bus:
            self.emit(f"ext(FS[{k}])")
        if self.trace:
            self.emit(f"trx(AS[{k}])")

    def exit_const(self, target: int) -> None:
        """Leave the block for a known address (nothing executed here)."""
        self.flush_fetches()
        self.emit(f"return ({target}, {len(self.addresses)})")
        self.closed = True

    def exit_dynamic(self, expr: str) -> None:
        self.flush_fetches()
        self.emit(f"return ({expr}, {len(self.addresses)})")
        self.closed = True

    def plain(self, ins) -> None:
        """One straight-line instruction (never a control transfer)."""
        m = ins.mnemonic
        ops = ins.operands
        mem = any(isinstance(o, Memory) for o in ops)
        risky = mem or m in ("pushl", "popl", "leave", "idivl")
        self.begin(ins, risky=risky)

        if m == "nop":
            return
        if m == "movl":
            self.write32(ops[1], self.read32(ops[0]))
            return
        if m == "leal":
            if not isinstance(ops[0], Memory):
                raise _Unsupported("leal needs a memory source")
            self.write32(ops[1], self._ea(ops[0]))
            return
        if m in _ARITH2:
            src = self.read32(ops[0])
            dst = self.read32(ops[1])
            v = self.temp("v")
            if m == "addl":
                w = self.temp("w")
                self.emit(f"{w} = {dst} + {src}")
                self.emit(f"{v} = {w} & {_M32}")
                self.emit(f"cf = {w} > {_M32}")
                self.emit(f"of = (~({dst} ^ {src}) & ({dst} ^ {v})"
                          f" & {_SIGN}) != 0")
            else:
                self.emit(f"{v} = ({dst} - {src}) & {_M32}")
                self.emit(f"cf = {dst} < {src}")
                self.emit(f"of = (({dst} ^ {src}) & ({dst} ^ {v})"
                          f" & {_SIGN}) != 0")
            self.flags_from_value(v)
            if m != "cmpl":
                self.write32(ops[1], v)
            return
        if m == "imull":
            src = self.read32(ops[0])
            dst = self.read32(ops[1])
            ss = self.signed(src)
            sd = self.signed(dst)
            e = self.temp("e")
            v = self.temp("v")
            self.emit(f"{e} = {sd} * {ss}")
            self.emit(f"{v} = {e} & {_M32}")
            self.emit(f"cf = of = not -{_SIGN} <= {e} <= 2147483647")
            self.flags_from_value(v)
            self.write32(ops[1], v)
            return
        if m in _LOGIC:
            # predecode evaluates dst before src here; keep that order
            dst = self.read32(ops[1])
            src = self.read32(ops[0])
            bitop = {"andl": "&", "orl": "|", "xorl": "^", "testl": "&"}[m]
            v = self.temp("v")
            self.emit(f"{v} = {dst} {bitop} {src}")
            self.emit("cf = False")
            self.emit("of = False")
            self.flags_from_value(v)
            if m != "testl":
                self.write32(ops[1], v)
            return
        if m in _SHIFTS:
            self._shift(m, ops)
            return
        if m == "notl":
            raw = self.read32(ops[0])
            v = self.temp("v")
            self.emit(f"{v} = ~{raw} & {_M32}")
            self.write32(ops[0], v)
            return
        if m == "negl":
            raw = self.read32(ops[0])
            v = self.temp("v")
            self.emit(f"{v} = (0 - {raw}) & {_M32}")
            self.emit(f"cf = {raw} != 0")
            self.emit(f"of = ({raw} & {v} & {_SIGN}) != 0")
            self.flags_from_value(v)
            self.write32(ops[0], v)
            return
        if m in ("incl", "decl"):
            dst = self.read32(ops[0])
            v = self.temp("v")
            if m == "incl":
                self.emit(f"{v} = ({dst} + 1) & {_M32}")
                self.emit(f"of = (~({dst} ^ 1) & ({dst} ^ {v})"
                          f" & {_SIGN}) != 0")
            else:
                self.emit(f"{v} = ({dst} - 1) & {_M32}")
                self.emit(f"of = (({dst} ^ 1) & ({dst} ^ {v})"
                          f" & {_SIGN}) != 0")
            self.flags_from_value(v)          # cf preserved, as on x86
            self.write32(ops[0], v)
            return
        if m == "cltd":
            eax = self.reg("eax")
            edx = self.reg("edx")
            self.emit(f"{edx} = {_M32} if {eax} & {_SIGN} else 0")
            return
        if m == "idivl":
            self._idivl(ops)
            return
        if m == "pushl":
            self._push(self.read32(ops[0]))
            return
        if m == "popl":
            v = self._pop()
            self.write32(ops[0], v)
            return
        if m == "leave":
            esp = self.reg("esp")
            ebp = self.reg("ebp")
            self.emit(f"{esp} = {ebp}")
            v = self._pop()
            self.emit(f"{ebp} = {v}")
            return
        raise _Unsupported(m)

    def _shift(self, m: str, ops) -> None:
        left = m in ("sall", "shll")
        arith = m == "sarl"
        count = self.read32(ops[0])
        raw = self.read32(ops[1])
        if isinstance(ops[0], Immediate):
            c = (ops[0].value & MASK32) & 0x1F
            if not c:
                return                 # count 0: flags and dst untouched
            v = self.temp("v")
            if left:
                self.emit(f"cf = (({raw} >> {32 - c}) & 1) != 0")
                self.emit(f"{v} = ({raw} << {c}) & {_M32}")
            elif arith:
                s = self.signed(raw)
                self.emit(f"cf = (({raw} >> {c - 1}) & 1) != 0")
                self.emit(f"{v} = ({s} >> {c}) & {_M32}")
            else:
                self.emit(f"cf = (({raw} >> {c - 1}) & 1) != 0")
                self.emit(f"{v} = {raw} >> {c}")
            self.emit("of = False")
            self.flags_from_value(v)
            self.write32(ops[1], v)
            return
        c = self.temp("c")
        v = self.temp("v")
        self.emit(f"{c} = {count} & 31")
        self.emit(f"if {c}:")
        inner = len(self.body)
        if left:
            self.emit(f"cf = (({raw} >> (32 - {c})) & 1) != 0")
            self.emit(f"{v} = ({raw} << {c}) & {_M32}")
        elif arith:
            self.emit(f"{v} = ({raw} - 4294967296 if {raw} & {_SIGN}"
                      f" else {raw}) >> {c} & {_M32}")
            self.emit(f"cf = (({raw} >> ({c} - 1)) & 1) != 0")
        else:
            self.emit(f"cf = (({raw} >> ({c} - 1)) & 1) != 0")
            self.emit(f"{v} = {raw} >> {c}")
        self.emit("of = False")
        self.flags_from_value(v)
        self.write32(ops[1], v)
        # indent everything after the `if` one level
        for j in range(inner, len(self.body)):
            self.body[j] = "    " + self.body[j]

    def _idivl(self, ops) -> None:
        eax = self.reg("eax")
        edx = self.reg("edx")
        src = self.read32(ops[0])
        sd = self.signed(src)
        dv = self.temp("d")
        q = self.temp("q")
        r = self.temp("r")
        self.emit(f"if {sd} == 0:")
        self.emit("    raise MachineFault"
                  "('divide error: division by zero')")
        self.emit(f"{dv} = ({edx} << 32) | {eax}")
        self.emit(f"if {dv} & 9223372036854775808:")
        self.emit(f"    {dv} -= 18446744073709551616")
        self.emit(f"{q} = abs({dv}) // abs({sd})")
        self.emit(f"if ({dv} < 0) != ({sd} < 0):")
        self.emit(f"    {q} = -{q}")
        self.emit(f"{r} = {dv} - {q} * {sd}")
        self.emit(f"if not -{_SIGN} <= {q} < {_SIGN}:")
        self.emit("    raise MachineFault"
                  "('divide error: quotient overflow')")
        self.emit(f"{eax} = {q} & {_M32}")
        self.emit(f"{edx} = {r} & {_M32}")

    def _push(self, value: str) -> None:
        self.flush_fetches()
        esp = self.reg("esp")
        if value == esp:                 # pushl %esp pushes the OLD value
            value = self.temp("v")
            self.emit(f"{value} = {esp}")
        self.emit(f"{esp} = ({esp} - 4) & {_M32}")   # esp moves first,
        self._store_lines(esp, value)                # as in Machine.push
        if self.bus:
            self.emit(f"pend(('store', {esp}, 4))")

    def _pop(self) -> str:
        self.flush_fetches()
        esp = self.reg("esp")
        v = self._load_lines(esp)
        if self.bus:
            self.emit(f"pend(('load', {esp}, 4))")
        self.emit(f"{esp} = ({esp} + 4) & {_M32}")
        return v

    # -- control transfers ----------------------------------------------

    def jump(self, ins) -> None:
        """A followed static jmp: one step, fetch accounting only."""
        self.begin(ins, risky=False)

    def jump_indirect(self, ins) -> None:
        target = ins.operands[0]
        if not isinstance(target, Register) or target.name not in GP32:
            raise _Unsupported("indirect jmp operand")
        self.begin(ins, risky=False)
        self.exit_dynamic(self.reg(target.name))

    def side_exit(self, ins) -> None:
        """jcc: taken leaves the block, not-taken continues inline."""
        op = ins.operands[0]
        if isinstance(op, LabelRef) and op.address is not None:
            target = str(op.address)
        elif isinstance(op, Register) and op.name in GP32:
            target = self.reg(op.name)
        else:
            raise _Unsupported("jcc operand")
        i = self.begin(ins, risky=False)
        self.flush_fetches()           # a taken branch must not leave
        self.emit(f"if {_COND_SRC[ins.mnemonic]}:")   # its fetch pending
        self.emit(f"    return ({target}, {i + 1})")

    def call(self, ins) -> int | None:
        """call: push the return address; returns the static target to
        keep compiling into, or None after emitting a dynamic exit."""
        op = ins.operands[0]
        if isinstance(op, LabelRef) and op.address is not None:
            self.begin(ins, risky=True)
            self._push(str((ins.address + INSTRUCTION_SIZE) & MASK32))
            return op.address
        if isinstance(op, Register) and op.name in GP32:
            self.begin(ins, risky=True)
            self._push(str((ins.address + INSTRUCTION_SIZE) & MASK32))
            self.exit_dynamic(self.reg(op.name))   # read after the push
            return None
        raise _Unsupported("call operand")

    def ret(self, ins) -> None:
        self.begin(ins, risky=True)
        self.exit_dynamic(self._pop())

    def halt(self, ins) -> None:
        self.begin(ins, risky=False)
        self.emit("m.halted = True")
        self.exit_const((ins.address + INSTRUCTION_SIZE) & MASK32)

    # -- assembly of the module source -----------------------------------

    def render(self) -> str:
        head = ["def _make(m, eng, A, FT, FA, FS, AS, MachineFault):",
                "    regs = m.regs",
                "    _r = regs._regs",
                "    flags = regs.flags",
                "    load = eng.backing.load_uint",
                "    store = eng.backing.store_uint"]
        if self.bus:
            head += ["    pend = eng.pending.append",
                     "    ext = eng.pending.extend"]
        if self.trace:
            head.append("    tr = eng.backing.trace.append")
        if self.record and self.trace:
            head.append("    trx = eng.backing.trace.extend")
        if self.fast:
            head += ["    W = eng.backing._watchers",
                     "    SB = eng.stack_region.start",
                     "    SL = eng.stack_region.size - 4",
                     "    SD = eng.stack_region.data",
                     "    ifb = int.from_bytes"]
        head.append("    def block():")
        lines = head
        for r in sorted(self.used):
            lines.append(f"        {r} = _r['{r}']")
        lines += ["        zf = flags.zf", "        sf = flags.sf",
                  "        cf = flags.cf", "        of = flags.of",
                  "        n = 0",
                  "        try:"]
        lines += ["            " + b for b in self.body]
        lines += ["        except BaseException:",
                  "            regs.eip = A[n]",
                  "            eng.fault_steps = n",
                  "            raise",
                  "        finally:"]
        lines += ["            " + w for w in self.writeback_lines()]
        lines.append("    return block")
        return "\n".join(lines) + "\n"


# -- the engine ---------------------------------------------------------------

class JitEngine:
    """Per-machine superblock compiler + dispatch loop.

    Compiled blocks close over this machine's registers, backing space,
    and pending-accounting list, so the engine (and its block cache)
    lives on the machine, not the program.
    """

    def __init__(self, machine, *, threshold: int = DEFAULT_THRESHOLD,
                 max_block: int = MAX_BLOCK) -> None:
        self.machine = machine
        self.threshold = max(1, threshold)
        self.max_block = max_block
        self.blocks: dict[int, CompiledBlock] = {}
        self.counts: dict[int, int] = {}
        self.failed: set[int] = set()
        self.stats = JitStats()
        self.pending: list[tuple] = []
        self.fault_steps: int | None = None
        self._cfg = None
        self._trace_ids: dict[int, int] | None = None
        self.backing, replay = _bind(machine.space)
        if self.backing is None:
            raise MachineFault(
                f"JIT cannot run over {type(machine.space).__name__}")
        #: the region generated loads/stores shortcut to (the stack,
        #: where compiled C keeps its locals); None disables the inline
        #: fast path and every access takes the scalar AddressSpace road
        self.stack_region = None
        esp = machine.regs.get("esp")
        for region in self.backing.regions:
            if region.readable and region.writable \
                    and region.contains(esp, 1):
                self.stack_region = region
                break
        #: instruction addresses whose guards may be elided: only when
        #: the optimizer stamped its proof on the program, the machine
        #: is still at the entry state the proof assumed (step 0, eip at
        #: the entry point), and the stack region actually covers the
        #: analysis's safe envelope around the entry %esp
        self.safe: frozenset = frozenset()
        proved = getattr(machine.program, "stack_safe", None)
        if proved and self.stack_region is not None \
                and machine.steps == 0 \
                and machine.regs.eip == machine.program.entry_address:
            from repro.analysis.opt import SAFE_HI, SAFE_LO
            region = self.stack_region
            if region.contains(esp + SAFE_LO, 1) \
                    and region.contains(esp + SAFE_HI + 3, 1):
                self.safe = frozenset(proved)
        if replay is None:
            self.flush = None
        else:
            pending = self.pending

            def flush() -> None:
                replay(pending)
                del pending[:]
            self.flush = flush

    # -- dispatch ---------------------------------------------------------

    def run(self, max_steps: int, *, raise_on_limit: bool = True) -> int:
        """The :meth:`Machine.run` loop with block dispatch.

        Compiled blocks execute whole; everything else (cold code, the
        approach to the step limit, uncompilable instructions) goes
        through the predecoded handlers one instruction at a time, with
        pending bus accounting flushed first so the memory hierarchy
        sees accesses in exact program order.

        With the recorder enabled, block executions and interpreted
        instructions append (name, ts, instructions) triples to one
        pending stream, bulk-flushed every :data:`TRACE_CHUNK` events
        (and before any fault instant), so buffer order follows
        execution order at a few list appends per dispatch.
        """
        m = self.machine
        regs = m.regs
        record = m.record_fetches
        space = m.space
        handlers = m._predecode()
        compiled = self.blocks
        counts = self.counts
        failed = self.failed
        threshold = self.threshold
        pending = self.pending
        flush = self.flush
        stats = self.stats
        fetch = space.fetch
        steps = m.steps
        entries = side_exits = jit_steps = 0
        rec = m.recorder
        traced = rec.enabled
        if traced:
            if self._trace_ids is None:
                self._trace_ids = {
                    addr: rec.intern(ins.mnemonic)
                    for addr, ins in m.program.by_address.items()}
            ids = self._trace_ids
            t_track = rec.intern_track("isa", "cpu")
            t_cat = rec.intern("isa")
            t_key = rec.intern("instructions")
            p_names: list[int] = []
            p_ts: list[int] = []
            p_ins: list[int] = []

            def rflush() -> None:
                rec.complete_batch(p_names, p_ts, p_ins, track_id=t_track,
                                   cat_id=t_cat, key_id=t_key, vals=p_ins)
                p_names.clear()
                p_ts.clear()
                p_ins.clear()
        try:
            while not m.halted:
                eip = regs.eip
                blk = compiled.get(eip)
                if blk is not None:
                    if steps + blk.length <= max_steps:
                        next_eip, executed = blk.fn()
                        if traced:
                            p_names.append(blk.name_id)
                            p_ts.append(steps)
                            p_ins.append(executed)
                            if len(p_names) >= TRACE_CHUNK:
                                rflush()
                        steps += executed
                        entries += 1
                        jit_steps += executed
                        if executed < blk.length:
                            side_exits += 1
                        if next_eip == SENTINEL_RETURN:
                            m.halted = True
                        regs.eip = next_eip & MASK32
                        if len(pending) >= FLUSH_LIMIT:
                            flush()
                        continue
                elif eip not in failed:
                    c = counts.get(eip, 0) + 1
                    if c < threshold:
                        counts[eip] = c
                    else:
                        blk = self._compile(eip)
                        if blk is None:
                            failed.add(eip)
                            stats.failures += 1
                        else:
                            compiled[eip] = blk
                            counts.pop(eip, None)
                            stats.blocks_compiled += 1
                            continue
                # interpreter path: one predecoded instruction
                if steps >= max_steps:
                    if raise_on_limit:
                        raise MachineFault(
                            "step limit exceeded (infinite loop?)")
                    break
                handler = handlers.get(eip)
                if handler is None:
                    raise MachineFault(_fell_off(eip, steps))
                if pending:
                    flush()
                if record:
                    fetch(eip, INSTRUCTION_SIZE)
                next_eip = handler(m, eip + INSTRUCTION_SIZE)
                if traced:
                    p_names.append(ids[eip])
                    p_ts.append(steps)
                    p_ins.append(1)
                    if len(p_names) >= TRACE_CHUNK:
                        rflush()
                if next_eip == SENTINEL_RETURN:
                    m.halted = True
                regs.eip = next_eip & MASK32
                steps += 1
        except BaseException as exc:
            if self.fault_steps is not None:
                if traced:
                    # the faulting block's partial run, span included
                    p_names.append(blk.name_id)
                    p_ts.append(steps)
                    p_ins.append(self.fault_steps)
                steps += self.fault_steps
                jit_steps += self.fault_steps
                entries += 1
                self.fault_steps = None
            if traced:
                rflush()
                rec.instant("fault", ts=steps, pid="isa", tid="cpu",
                            cat="isa",
                            args={"eip": regs.eip, "what": str(exc)})
            raise
        finally:
            m.steps = steps
            stats.entries += entries
            stats.side_exits += side_exits
            stats.jit_steps += jit_steps
            if pending:
                flush()
            if traced and p_names:
                rflush()
        return regs.get_signed("eax")

    # -- compilation ------------------------------------------------------

    def _compile(self, entry: int) -> CompiledBlock | None:
        """Form and compile the superblock at ``entry`` (None: give up)."""
        m = self.machine
        if self._cfg is None:
            self._cfg = build_asm_cfg(m.program)
        record = m.record_fetches
        writer = _Writer(record=record, bus=self.flush is not None,
                         trace=self.backing.trace_enabled,
                         fast=self.stack_region is not None,
                         safe=self.safe)
        self._form(writer, entry)
        if not writer.addresses:
            return None
        if record and not self._fetchable(writer.addresses):
            return None               # the interpreter faults identically
        self.stats.guards_elided += writer.elided
        return self._finish(writer, entry)

    def _fetchable(self, addresses: list[int]) -> bool:
        """Would every fetch in this block succeed? (Compile-time check
        replacing the per-step executable test the scalar fetch does.)"""
        for addr in addresses:
            try:
                region = self.backing.region_for(addr, INSTRUCTION_SIZE)
            except CMemoryError:
                return False
            if not region.executable:
                return False
        return True

    def _form(self, writer: _Writer, entry: int) -> None:
        """Walk the asm CFG from ``entry``, emitting until an exit."""
        cfg = self._cfg
        seen: set[int] = set()
        addr = entry
        while not writer.closed:
            if addr in seen or len(writer.addresses) >= self.max_block:
                writer.exit_const(addr)        # loop closed / length cap
                return
            got = cfg.run_from(addr)
            if got is None:
                writer.exit_const(addr)        # fell off: interpreter raises
                return
            instrs, term, target, fall = got
            plain = instrs if term == "fall" else instrs[:-1]
            for ins in plain:
                if len(writer.addresses) >= self.max_block:
                    writer.exit_const(ins.address)
                    return
                mark = writer.mark()
                try:
                    writer.plain(ins)
                except _Unsupported:
                    writer.rollback(mark)
                    writer.exit_const(ins.address)
                    return
                seen.add(ins.address)
            if term == "fall":
                addr = fall
                continue
            last = instrs[-1]
            if len(writer.addresses) >= self.max_block:
                writer.exit_const(last.address)
                return
            mark = writer.mark()
            try:
                if term == "jmp":
                    writer.jump(last)
                    seen.add(last.address)
                    addr = target
                elif term == "indirect":
                    writer.jump_indirect(last)
                elif term == "jcc":
                    writer.side_exit(last)
                    seen.add(last.address)
                    addr = fall
                elif term == "call":
                    nxt = writer.call(last)
                    if nxt is None:
                        return
                    seen.add(last.address)
                    addr = nxt
                elif term == "ret":
                    writer.ret(last)
                else:                          # halt
                    writer.halt(last)
            except _Unsupported:
                writer.rollback(mark)
                writer.exit_const(last.address)
                return

    def _finish(self, writer: _Writer, entry: int) -> CompiledBlock:
        source = writer.render()
        addresses = tuple(writer.addresses)
        fetch_tuples = None
        fetch_accesses = None
        if writer.record and writer.bus:
            fetch_tuples = tuple(("fetch", a, INSTRUCTION_SIZE)
                                 for a in addresses)
        if writer.record and writer.trace:
            fetch_accesses = tuple(Access("fetch", a, INSTRUCTION_SIZE)
                                  for a in addresses)
        fetch_segs = None
        access_segs = None
        if fetch_tuples is not None:
            fetch_segs = tuple(fetch_tuples[a:b] for a, b in writer.segs)
        if fetch_accesses is not None:
            access_segs = tuple(fetch_accesses[a:b] for a, b in writer.segs)
        namespace: dict = {"Access": Access}
        exec(compile(source, f"<jit block {entry:#x}>", "exec"),  # noqa: S102
             namespace)
        fn = namespace["_make"](self.machine, self, addresses,
                                fetch_tuples, fetch_accesses,
                                fetch_segs, access_segs, MachineFault)
        rec = self.machine.recorder
        name_id = rec.intern(f"block {entry:#x}") if rec.enabled else -1
        return CompiledBlock(entry, len(addresses), fn, name_id)
