"""The IA-32-subset machine: executes assembled programs.

Models what the course's GDB tracing exercises observe: registers,
condition flags, the runtime stack (push/pop/call/ret/leave and the
%ebp frame chain), memory operands with full x86 addressing modes, and
cdecl function calls. Arithmetic flag semantics come from
:mod:`repro.binary.arith` — the same definitions the binary module
teaches, now driving conditional jumps.
"""

from __future__ import annotations

from typing import Callable

from repro.binary.arith import add as _badd, mul as _bmul, sub as _bsub
from repro.binary.bits import BitVector
from repro.binary.twos_complement import MASK32, sign32
from repro.clib.address_space import AddressSpace, STACK_TOP
from repro.errors import IllegalInstruction, MachineFault
from repro.isa.instructions import (
    Immediate,
    Instruction,
    INSTRUCTION_SIZE,
    LabelRef,
    Memory,
    Operand,
    Program,
    Register,
)
from repro.isa.registers import GP32, RegisterSet

#: "return address" of the outermost frame; reaching it ends the program
SENTINEL_RETURN = 0xFFFF_FFF0


#: flag predicates for the conditional jumps, shared by the step-by-step
#: interpreter and the predecoded handler compiler
_JUMP_CONDITIONS = {
    "je": lambda f: f.zf,
    "jne": lambda f: not f.zf,
    "jg": lambda f: not f.zf and f.sf == f.of,
    "jge": lambda f: f.sf == f.of,
    "jl": lambda f: f.sf != f.of,
    "jle": lambda f: f.zf or f.sf != f.of,
    "ja": lambda f: not f.cf and not f.zf,
    "jae": lambda f: not f.cf,
    "jb": lambda f: f.cf,
    "jbe": lambda f: f.cf or f.zf,
    "js": lambda f: f.sf,
    "jns": lambda f: not f.sf,
}


def _fell_off(eip: int, steps: int) -> str:
    """Both execution paths report the faulting %eip the same way."""
    return (f"no instruction at eip={eip:#010x} after {steps} steps "
            "(fell off the program?)")


class Machine:
    """Executes a :class:`Program` over an :class:`AddressSpace` or bus.

    ``space`` may be anything byte-addressable — a plain address space
    (the default, unchanged behaviour) or any
    :class:`repro.system.bus.MemoryBus` view. Alternatively pass
    ``bus=`` (with ``pid=`` for a per-process
    :class:`~repro.system.bus.VirtualBus`) and the machine binds its
    view itself; every load, store, and instruction fetch then travels
    the bus seam and is accounted there.
    """

    def __init__(self, program: Program, space: AddressSpace | None = None,
                 *, bus=None, pid: int | None = None,
                 record_fetches: bool = False, recorder=None,
                 jit: bool = False, jit_threshold: int = 8) -> None:
        from repro.obs.recorder import coalesce
        if bus is not None:
            if space is not None:
                raise MachineFault("pass either space= or bus=, not both")
            space = bus.view(pid)
        self.program = program
        self.bus = bus
        self.space = space or AddressSpace.standard()
        self.regs = RegisterSet()
        self.record_fetches = record_fetches
        self.jit = jit
        self.jit_threshold = jit_threshold
        self._jit_engine = None       # built lazily; False = unsupported
        #: shared trace recorder (see repro.obs); NULL_RECORDER when off
        self.recorder = coalesce(recorder)
        self.regs.set("esp", STACK_TOP - 16)
        self.regs.eip = program.entry_address
        self.halted = False
        self.steps = 0
        if program.data_image:
            self.space.write(program.data_base, program.data_image)
        # a `ret` from the entry function returns here and ends the program
        self.push(SENTINEL_RETURN)

    # -- operand access --------------------------------------------------------

    def effective_address(self, op: Memory) -> int:
        """disp + base + index*scale — the x86 addressing-mode formula."""
        addr = op.displacement
        if op.base:
            addr += self.regs.get(op.base)
        if op.index:
            addr += self.regs.get(op.index) * op.scale
        return addr & MASK32

    def read_operand(self, op: Operand) -> int:
        """Evaluate a 32-bit source operand to its unsigned value."""
        if isinstance(op, Immediate):
            return op.value & MASK32
        if isinstance(op, Register):
            return self.regs.get(op.name)
        if isinstance(op, Memory):
            return self.space.load_uint(self.effective_address(op), 4)
        if isinstance(op, LabelRef):
            if op.address is None:
                raise MachineFault(f"unresolved label {op.name!r}")
            return op.address
        raise IllegalInstruction(f"cannot read operand {op!r}")

    def write_operand(self, op: Operand, value: int) -> None:
        """Store a 32-bit value into a register or memory destination."""
        if isinstance(op, Register):
            self.regs.set(op.name, value)
        elif isinstance(op, Memory):
            self.space.store_uint(self.effective_address(op), value, 4)
        else:
            raise IllegalInstruction(f"cannot write operand {op!r}")

    # -- byte-width operands (movb / movzbl / movsbl / cmpb) ----------------

    def read_byte_operand(self, op: Operand) -> int:
        """Evaluate an 8-bit operand (byte register, memory, immediate)."""
        if isinstance(op, Immediate):
            return op.value & 0xFF
        if isinstance(op, Register):
            from repro.isa.registers import register_width
            if register_width(op.name) != 8:
                raise IllegalInstruction(
                    f"byte operation needs an 8-bit register, got %{op.name}")
            return self.regs.get(op.name)
        if isinstance(op, Memory):
            return self.space.load_uint(self.effective_address(op), 1)
        raise IllegalInstruction(f"cannot read byte operand {op!r}")

    def write_byte_operand(self, op: Operand, value: int) -> None:
        """Store one byte into a byte register or memory destination."""
        if isinstance(op, Register):
            from repro.isa.registers import register_width
            if register_width(op.name) != 8:
                raise IllegalInstruction(
                    f"byte operation needs an 8-bit register, got %{op.name}")
            self.regs.set(op.name, value & 0xFF)
        elif isinstance(op, Memory):
            self.space.store_uint(self.effective_address(op),
                                  value & 0xFF, 1)
        else:
            raise IllegalInstruction(f"cannot write byte operand {op!r}")

    # -- stack -------------------------------------------------------------------

    def push(self, value: int) -> None:
        """pushl: decrement %esp by 4 and store the value there."""
        esp = (self.regs.get("esp") - 4) & MASK32
        self.regs.set("esp", esp)
        self.space.store_uint(esp, value, 4)

    def pop(self) -> int:
        """popl: load from %esp and increment it by 4."""
        esp = self.regs.get("esp")
        value = self.space.load_uint(esp, 4)
        self.regs.set("esp", (esp + 4) & MASK32)
        return value

    # -- flags ---------------------------------------------------------------------

    def _set_flags_arith(self, result) -> None:
        f = self.regs.flags
        f.cf = result.flags.carry
        f.of = result.flags.overflow
        f.zf = result.flags.zero
        f.sf = result.flags.sign

    def _set_flags_logic(self, value: int) -> None:
        f = self.regs.flags
        f.cf = False
        f.of = False
        f.zf = (value & MASK32) == 0
        f.sf = bool(value & 0x8000_0000)

    def _condition(self, mnemonic: str) -> bool:
        return _JUMP_CONDITIONS[mnemonic](self.regs.flags)

    # -- execution --------------------------------------------------------------------

    def step(self) -> Instruction:
        """Fetch, execute, and return the instruction at %eip."""
        if self.halted:
            raise MachineFault("machine is halted")
        eip = self.regs.eip
        ins = self.program.at(eip)
        if ins is None:
            if self.recorder.enabled:
                self.recorder.instant(
                    "fault", ts=self.steps, pid="isa", tid="cpu",
                    cat="isa", args={"eip": eip,
                                     "what": _fell_off(eip, self.steps)})
            raise MachineFault(_fell_off(eip, self.steps))
        if self.record_fetches:
            self.space.fetch(eip, INSTRUCTION_SIZE)
            if self.recorder.enabled:
                self.recorder.instant("fetch", ts=self.steps, pid="isa",
                                      tid="cpu", cat="isa",
                                      args={"eip": eip})
        next_eip = eip + INSTRUCTION_SIZE
        m = ins.mnemonic
        ops = ins.operands

        if m == "movl":
            self.write_operand(ops[1], self.read_operand(ops[0]))
        elif m == "movb":
            self.write_byte_operand(ops[1], self.read_byte_operand(ops[0]))
        elif m == "movzbl":
            if not isinstance(ops[1], Register):
                raise IllegalInstruction("movzbl destination must be a "
                                         "32-bit register")
            self.regs.set(ops[1].name, self.read_byte_operand(ops[0]))
        elif m == "movsbl":
            if not isinstance(ops[1], Register):
                raise IllegalInstruction("movsbl destination must be a "
                                         "32-bit register")
            byte = self.read_byte_operand(ops[0])
            self.regs.set(ops[1].name,
                          byte - 0x100 if byte & 0x80 else byte)
        elif m == "cmpb":
            src = BitVector(self.read_byte_operand(ops[0]), 8)
            dst = BitVector(self.read_byte_operand(ops[1]), 8)
            self._set_flags_arith(_bsub(dst, src))
        elif m == "leal":
            if not isinstance(ops[0], Memory):
                raise IllegalInstruction("leal source must be a memory operand")
            self.write_operand(ops[1], self.effective_address(ops[0]))
        elif m in ("addl", "subl", "cmpl"):
            src = BitVector(self.read_operand(ops[0]), 32)
            dst = BitVector(self.read_operand(ops[1]), 32)
            result = _badd(dst, src) if m == "addl" else _bsub(dst, src)
            self._set_flags_arith(result)
            if m != "cmpl":
                self.write_operand(ops[1], result.value.raw)
        elif m == "imull":
            src = BitVector(self.read_operand(ops[0]), 32)
            dst = BitVector(self.read_operand(ops[1]), 32)
            result = _bmul(dst, src, signed=True)
            self._set_flags_arith(result)
            self.write_operand(ops[1], result.value.raw)
        elif m in ("andl", "orl", "xorl", "testl"):
            src = self.read_operand(ops[0])
            dst = self.read_operand(ops[1])
            value = {"andl": dst & src, "orl": dst | src,
                     "xorl": dst ^ src, "testl": dst & src}[m]
            self._set_flags_logic(value)
            if m != "testl":
                self.write_operand(ops[1], value)
        elif m in ("sall", "shll", "sarl", "shrl"):
            count = self.read_operand(ops[0]) & 0x1F
            raw = self.read_operand(ops[1])
            if count:
                if m in ("sall", "shll"):
                    cf = bool((raw >> (32 - count)) & 1)
                    value = (raw << count) & MASK32
                elif m == "shrl":
                    cf = bool((raw >> (count - 1)) & 1)
                    value = raw >> count
                else:  # sarl
                    cf = bool((raw >> (count - 1)) & 1)
                    value = (sign32(raw) >> count) & MASK32
                self._set_flags_logic(value)
                self.regs.flags.cf = cf
                self.write_operand(ops[1], value)
        elif m == "notl":
            self.write_operand(ops[0], ~self.read_operand(ops[0]) & MASK32)
        elif m == "negl":
            raw = self.read_operand(ops[0])
            result = _bsub(BitVector(0, 32), BitVector(raw, 32))
            self._set_flags_arith(result)
            self.regs.flags.cf = raw != 0
            self.write_operand(ops[0], result.value.raw)
        elif m in ("incl", "decl"):
            raw = BitVector(self.read_operand(ops[0]), 32)
            one = BitVector(1, 32)
            result = _badd(raw, one) if m == "incl" else _bsub(raw, one)
            saved_cf = self.regs.flags.cf     # inc/dec preserve CF on x86
            self._set_flags_arith(result)
            self.regs.flags.cf = saved_cf
            self.write_operand(ops[0], result.value.raw)
        elif m == "idivl":
            divisor = sign32(self.read_operand(ops[0]))
            if divisor == 0:
                raise MachineFault("divide error: division by zero")
            dividend = (self.regs.get("edx") << 32) | self.regs.get("eax")
            if dividend & (1 << 63):
                dividend -= 1 << 64
            quotient = abs(dividend) // abs(divisor)
            if (dividend < 0) != (divisor < 0):
                quotient = -quotient
            remainder = dividend - quotient * divisor
            if not -(1 << 31) <= quotient < (1 << 31):
                raise MachineFault("divide error: quotient overflow")
            self.regs.set("eax", quotient & MASK32)
            self.regs.set("edx", remainder & MASK32)
        elif m == "cltd":
            self.regs.set("edx",
                          MASK32 if self.regs.get("eax") & 0x8000_0000 else 0)
        elif m == "pushl":
            self.push(self.read_operand(ops[0]))
        elif m == "popl":
            self.write_operand(ops[0], self.pop())
        elif m == "jmp":
            next_eip = self.read_operand(ops[0])
        elif m in ("je", "jne", "jg", "jge", "jl", "jle",
                   "ja", "jae", "jb", "jbe", "js", "jns"):
            if self._condition(m):
                next_eip = self.read_operand(ops[0])
        elif m == "call":
            self.push(next_eip)
            next_eip = self.read_operand(ops[0])
        elif m == "ret":
            next_eip = self.pop()
        elif m == "leave":
            self.regs.set("esp", self.regs.get("ebp"))
            self.regs.set("ebp", self.pop())
        elif m == "nop":
            pass
        elif m == "halt":
            self.halted = True
        else:  # pragma: no cover - assembler rejects unknown mnemonics
            raise IllegalInstruction(f"unimplemented mnemonic {m!r}")

        if next_eip == SENTINEL_RETURN:
            self.halted = True
        if self.recorder.enabled:
            self.recorder.complete(m, ts=self.steps, dur=1, pid="isa",
                                   tid="cpu", cat="isa",
                                   args={"eip": eip})
        self.regs.eip = next_eip & MASK32
        self.steps += 1
        return ins

    def _predecode(self) -> dict[int, Callable]:
        """The program's decode-once handler table, built lazily.

        Cached on the :class:`Program` itself, so every machine (and
        every :meth:`call`) executing the same program shares one
        compilation. Operand decoding — the ``isinstance`` dispatch and
        addressing-mode analysis the interpreter repeats on every step
        — happens here exactly once per instruction.
        """
        handlers = self.program.predecoded
        if handlers is None:
            handlers = {addr: _compile_instruction(ins)
                        for addr, ins in self.program.by_address.items()}
            self.program.predecoded = handlers
        return handlers

    def _jit(self):
        """This machine's JIT engine, or None when JIT can't apply here
        (unsupported space type). An enabled recorder no longer falls
        back to the interpreter: the engine records one complete-span
        per superblock execution instead of per-instruction spans."""
        if self._jit_engine is None:
            from repro.isa import jit as _jitmod
            if _jitmod.supports(self.space):
                self._jit_engine = _jitmod.JitEngine(
                    self, threshold=self.jit_threshold)
            else:
                self._jit_engine = False
        return self._jit_engine or None

    @property
    def jit_stats(self):
        """JitStats once the JIT has been engaged, else None."""
        engine = self._jit_engine
        return engine.stats if engine else None

    def run(self, max_steps: int = 1_000_000, *,
            jit: bool | None = None) -> int:
        """Run to completion; returns %eax as a signed int (C return value).

        Dispatches through the predecoded handler table rather than
        :meth:`step`'s interpreting ``if/elif`` chain; the
        ``record_fetches`` branch is resolved once outside the loop.
        :meth:`step` remains the step-by-step oracle — the differential
        tests pin both paths to identical final state, faults, and
        fetch traces.

        With ``jit=True`` (or a machine built with ``jit=True``) hot
        code additionally compiles to superblocks (see
        :mod:`repro.isa.jit`) — same observable behaviour, pinned by
        the same oracle tests.
        """
        use_jit = self.jit if jit is None else jit
        if use_jit:
            engine = self._jit()
            if engine is not None:
                return engine.run(max_steps)
        handlers = self._predecode()
        if self.recorder.enabled:
            return self._run_traced(handlers, max_steps)
        regs = self.regs
        record = self.record_fetches
        fetch = self.space.fetch
        steps = self.steps
        try:
            while not self.halted:
                if steps >= max_steps:
                    raise MachineFault(
                        "step limit exceeded (infinite loop?)")
                eip = regs.eip
                handler = handlers.get(eip)
                if handler is None:
                    raise MachineFault(_fell_off(eip, steps))
                if record:
                    fetch(eip, INSTRUCTION_SIZE)
                next_eip = handler(self, eip + INSTRUCTION_SIZE)
                if next_eip == SENTINEL_RETURN:
                    self.halted = True
                regs.eip = next_eip & MASK32
                steps += 1
        finally:
            self.steps = steps
        return regs.get_signed("eax")

    #: pending per-instruction events per bulk flush in the traced loop
    TRACE_CHUNK = 4096

    def _run_traced(self, handlers, max_steps: int) -> int:
        """The :meth:`run` loop with per-instruction span recording.

        Identical state transitions to the untraced loop (the oracle
        tests pin both). The per-step cost is two list appends: spans
        (and fetch instants, when ``record_fetches``) accumulate in
        plain lists and land in the recorder's structured-array ring in
        :attr:`TRACE_CHUNK`-sized bulk appends — one numpy slice
        assignment per column instead of one event object per step.
        Flushes happen before any fault instant and on exit, so event
        order in the buffer still follows execution order.
        """
        regs = self.regs
        record = self.record_fetches
        fetch = self.space.fetch
        rec = self.recorder
        ids = {addr: rec.intern(ins.mnemonic)
               for addr, ins in self.program.by_address.items()}
        track = rec.intern_track("isa", "cpu")
        cat = rec.intern("isa")
        eip_key = rec.intern("eip")
        fetch_id = rec.intern("fetch") if record else -1
        chunk = self.TRACE_CHUNK
        pending: list[int] = []                      # eips, in step order
        append = pending.append
        steps = self.steps
        base = steps                                 # ts of pending[0]
        flush_at = base + chunk

        def flush() -> None:
            nonlocal base, flush_at
            if pending:
                if record:
                    rec.instant_run(fetch_id, base, track_id=track,
                                    cat_id=cat, key_id=eip_key,
                                    vals=pending)
                rec.complete_run(list(map(ids.__getitem__, pending)),
                                 base, track_id=track, cat_id=cat,
                                 key_id=eip_key, vals=pending)
                pending.clear()
            base = steps
            flush_at = base + chunk

        try:
            while not self.halted:
                if steps >= max_steps:
                    raise MachineFault(
                        "step limit exceeded (infinite loop?)")
                eip = regs.eip
                handler = handlers.get(eip)
                if handler is None:
                    flush()
                    rec.instant("fault", ts=steps, pid="isa", tid="cpu",
                                cat="isa",
                                args={"eip": eip,
                                      "what": _fell_off(eip, steps)})
                    raise MachineFault(_fell_off(eip, steps))
                if record:
                    fetch(eip, INSTRUCTION_SIZE)
                try:
                    next_eip = handler(self, eip + INSTRUCTION_SIZE)
                except MachineFault as exc:
                    flush()
                    rec.instant("fault", ts=steps, pid="isa", tid="cpu",
                                cat="isa",
                                args={"eip": eip, "what": str(exc)})
                    raise
                steps += 1
                append(eip)
                if steps >= flush_at:
                    flush()
                if next_eip == SENTINEL_RETURN:
                    self.halted = True
                regs.eip = next_eip & MASK32
        finally:
            self.steps = steps
            flush()
        return regs.get_signed("eax")

    def run_slice(self, limit: int, *, jit: bool | None = None) -> int:
        """Execute up to ``limit`` instructions; returns how many ran.

        The kernel's timeslice primitive: stops early on halt, raises
        on faults like :meth:`step`, and never raises for hitting the
        limit. With JIT enabled, whole superblocks execute per
        dispatch, so a slice costs far fewer Python-level iterations.
        """
        before = self.steps
        use_jit = self.jit if jit is None else jit
        if use_jit:
            engine = self._jit()
            if engine is not None:
                engine.run(before + limit, raise_on_limit=False)
                return self.steps - before
        while not self.halted and self.steps - before < limit:
            self.step()
        return self.steps - before

    def call(self, label: str, *args: int,
             max_steps: int = 1_000_000) -> int:
        """Invoke a function cdecl-style and return its (signed) result.

        Pushes args right-to-left, pushes the sentinel return address, and
        runs until the function returns to it.
        """
        if label not in self.program.labels:
            raise MachineFault(f"no function labelled {label!r}")
        saved_esp = self.regs.get("esp")
        for a in reversed(args):
            self.push(a & MASK32)
        self.push(SENTINEL_RETURN)
        self.regs.eip = self.program.labels[label]
        self.halted = False
        result = self.run(max_steps=max_steps)
        self.regs.set("esp", saved_esp)   # caller cleans up (cdecl)
        return result


# -- the predecoded fast path ------------------------------------------------
#
# One compiled closure per instruction, built once per Program and cached
# on it (Program.predecoded). Each closure takes (machine, fall_through)
# and returns the next %eip. Operand readers/writers are specialized per
# operand *kind* at compile time, so the hot loop never repeats the
# isinstance dispatch, addressing-mode analysis, or mnemonic chain the
# step-by-step interpreter performs. Operand evaluation order — visible
# through the address-space access trace — matches step() exactly.

def _compile_ea(op: Memory) -> Callable[[Machine], int]:
    disp, base, index, scale = op.displacement, op.base, op.index, op.scale
    if base and index:
        return lambda m: ((disp + m.regs.get(base)
                           + m.regs.get(index) * scale) & MASK32)
    if base:
        if disp:
            return lambda m: (disp + m.regs.get(base)) & MASK32
        return lambda m: m.regs.get(base)
    if index:
        return lambda m: (disp + m.regs.get(index) * scale) & MASK32
    absolute = disp & MASK32
    return lambda m: absolute


def _compile_read(op: Operand) -> Callable[[Machine], int]:
    if isinstance(op, Immediate):
        value = op.value & MASK32
        return lambda m: value
    if isinstance(op, Register):
        name = op.name
        if name in GP32:        # skip the width-dispatch chain in get()
            return lambda m: m.regs._regs[name]
        return lambda m: m.regs.get(name)
    if isinstance(op, Memory):
        ea = _compile_ea(op)
        return lambda m: m.space.load_uint(ea(m), 4)
    if isinstance(op, LabelRef):
        if op.address is None:
            name = op.name

            def unresolved(m: Machine) -> int:
                raise MachineFault(f"unresolved label {name!r}")
            return unresolved
        address = op.address
        return lambda m: address
    return lambda m: m.read_operand(op)     # raises the scalar error


def _compile_write(op: Operand) -> Callable[[Machine, int], None]:
    if isinstance(op, Register):
        name = op.name
        if name in GP32:
            def wr32(m: Machine, v: int, _name: str = name) -> None:
                m.regs._regs[_name] = v & MASK32
            return wr32
        return lambda m, v: m.regs.set(name, v)
    if isinstance(op, Memory):
        ea = _compile_ea(op)
        return lambda m, v: m.space.store_uint(ea(m), v, 4)
    return lambda m, v: m.write_operand(op, v)   # raises the scalar error


def _compile_read_byte(op: Operand) -> Callable[[Machine], int]:
    from repro.isa.registers import register_width
    if isinstance(op, Immediate):
        value = op.value & 0xFF
        return lambda m: value
    if isinstance(op, Register):
        name = op.name
        if register_width(name) != 8:
            def bad_width(m: Machine) -> int:
                raise IllegalInstruction(
                    f"byte operation needs an 8-bit register, got %{name}")
            return bad_width
        return lambda m: m.regs.get(name)
    if isinstance(op, Memory):
        ea = _compile_ea(op)
        return lambda m: m.space.load_uint(ea(m), 1)
    return lambda m: m.read_byte_operand(op)


def _compile_write_byte(op: Operand) -> Callable[[Machine, int], None]:
    from repro.isa.registers import register_width
    if isinstance(op, Register):
        name = op.name
        if register_width(name) != 8:
            def bad_width(m: Machine, v: int) -> None:
                raise IllegalInstruction(
                    f"byte operation needs an 8-bit register, got %{name}")
            return bad_width
        return lambda m, v: m.regs.set(name, v & 0xFF)
    if isinstance(op, Memory):
        ea = _compile_ea(op)
        return lambda m, v: m.space.store_uint(ea(m), v & 0xFF, 1)
    return lambda m, v: m.write_byte_operand(op, v)


def _raiser(exc: Exception) -> Callable[[Machine, int], int]:
    """A handler that faults when (and only when) it executes."""
    def handler(m: Machine, nxt: int) -> int:
        raise exc
    return handler


def _compile_instruction(ins: Instruction) -> Callable[[Machine, int], int]:
    """Compile one decoded instruction to a (machine, nxt) -> eip closure."""
    m_ = ins.mnemonic
    ops = ins.operands

    if m_ == "movl":
        rd, wr = _compile_read(ops[0]), _compile_write(ops[1])

        def movl(m: Machine, nxt: int) -> int:
            wr(m, rd(m))
            return nxt
        return movl

    if m_ == "movb":
        rdb, wrb = _compile_read_byte(ops[0]), _compile_write_byte(ops[1])

        def movb(m: Machine, nxt: int) -> int:
            wrb(m, rdb(m))
            return nxt
        return movb

    if m_ in ("movzbl", "movsbl"):
        if not isinstance(ops[1], Register):
            return _raiser(IllegalInstruction(
                f"{m_} destination must be a 32-bit register"))
        rdb = _compile_read_byte(ops[0])
        dest = ops[1].name
        if m_ == "movzbl":
            def movzbl(m: Machine, nxt: int) -> int:
                m.regs.set(dest, rdb(m))
                return nxt
            return movzbl

        def movsbl(m: Machine, nxt: int) -> int:
            byte = rdb(m)
            m.regs.set(dest, byte - 0x100 if byte & 0x80 else byte)
            return nxt
        return movsbl

    if m_ == "cmpb":
        rd0, rd1 = _compile_read_byte(ops[0]), _compile_read_byte(ops[1])

        def cmpb(m: Machine, nxt: int) -> int:
            src = rd0(m)
            dst = rd1(m)
            value = (dst - src) & 0xFF
            f = m.regs.flags
            f.cf = dst < src
            f.of = bool((dst ^ src) & (dst ^ value) & 0x80)
            f.zf = value == 0
            f.sf = bool(value & 0x80)
            return nxt
        return cmpb

    if m_ == "leal":
        if not isinstance(ops[0], Memory):
            return _raiser(IllegalInstruction(
                "leal source must be a memory operand"))
        ea, wr = _compile_ea(ops[0]), _compile_write(ops[1])

        def leal(m: Machine, nxt: int) -> int:
            wr(m, ea(m))
            return nxt
        return leal

    if m_ in ("addl", "subl", "cmpl"):
        rd0, rd1 = _compile_read(ops[0]), _compile_read(ops[1])
        wr = None if m_ == "cmpl" else _compile_write(ops[1])
        # flags computed inline with int arithmetic — same definitions as
        # repro.binary.arith.add/sub, minus the BitVector object traffic
        if m_ == "addl":
            def addl(m: Machine, nxt: int) -> int:
                src = rd0(m)
                dst = rd1(m)
                wide = dst + src
                value = wide & MASK32
                f = m.regs.flags
                f.cf = wide > MASK32
                f.of = bool(~(dst ^ src) & (dst ^ value) & 0x8000_0000)
                f.zf = value == 0
                f.sf = bool(value & 0x8000_0000)
                wr(m, value)
                return nxt
            return addl

        def subl(m: Machine, nxt: int) -> int:
            src = rd0(m)
            dst = rd1(m)
            value = (dst - src) & MASK32
            f = m.regs.flags
            f.cf = dst < src
            f.of = bool((dst ^ src) & (dst ^ value) & 0x8000_0000)
            f.zf = value == 0
            f.sf = bool(value & 0x8000_0000)
            if wr is not None:
                wr(m, value)
            return nxt
        return subl

    if m_ == "imull":
        rd0, rd1 = _compile_read(ops[0]), _compile_read(ops[1])
        wr = _compile_write(ops[1])

        def imull(m: Machine, nxt: int) -> int:
            src = sign32(rd0(m))
            dst = sign32(rd1(m))
            exact = dst * src
            value = exact & MASK32
            lost = not -0x8000_0000 <= exact <= 0x7FFF_FFFF
            f = m.regs.flags
            f.cf = lost
            f.of = lost
            f.zf = value == 0
            f.sf = bool(value & 0x8000_0000)
            wr(m, value)
            return nxt
        return imull

    if m_ in ("andl", "orl", "xorl", "testl"):
        rd0, rd1 = _compile_read(ops[0]), _compile_read(ops[1])
        bitop = {"andl": lambda d, s: d & s, "orl": lambda d, s: d | s,
                 "xorl": lambda d, s: d ^ s,
                 "testl": lambda d, s: d & s}[m_]
        wr = None if m_ == "testl" else _compile_write(ops[1])

        def logic(m: Machine, nxt: int) -> int:
            value = bitop(rd1(m), rd0(m))
            f = m.regs.flags
            f.cf = False
            f.of = False
            f.zf = value == 0
            f.sf = bool(value & 0x8000_0000)
            if wr is not None:
                wr(m, value)
            return nxt
        return logic

    if m_ in ("sall", "shll", "sarl", "shrl"):
        rd0, rd1 = _compile_read(ops[0]), _compile_read(ops[1])
        wr = _compile_write(ops[1])
        left = m_ in ("sall", "shll")
        arithmetic = m_ == "sarl"

        def shift(m: Machine, nxt: int) -> int:
            count = rd0(m) & 0x1F
            raw = rd1(m)
            if count:
                if left:
                    cf = bool((raw >> (32 - count)) & 1)
                    value = (raw << count) & MASK32
                elif arithmetic:
                    cf = bool((raw >> (count - 1)) & 1)
                    value = (sign32(raw) >> count) & MASK32
                else:
                    cf = bool((raw >> (count - 1)) & 1)
                    value = raw >> count
                f = m.regs.flags
                f.cf = cf
                f.of = False
                f.zf = (value & MASK32) == 0
                f.sf = bool(value & 0x8000_0000)
                wr(m, value)
            return nxt
        return shift

    if m_ == "notl":
        rd, wr = _compile_read(ops[0]), _compile_write(ops[0])

        def notl(m: Machine, nxt: int) -> int:
            wr(m, ~rd(m) & MASK32)
            return nxt
        return notl

    if m_ == "negl":
        rd, wr = _compile_read(ops[0]), _compile_write(ops[0])

        def negl(m: Machine, nxt: int) -> int:
            raw = rd(m)
            value = (0 - raw) & MASK32
            f = m.regs.flags
            f.cf = raw != 0
            f.of = bool(raw & value & 0x8000_0000)
            f.zf = value == 0
            f.sf = bool(value & 0x8000_0000)
            wr(m, value)
            return nxt
        return negl

    if m_ in ("incl", "decl"):
        rd, wr = _compile_read(ops[0]), _compile_write(ops[0])
        if m_ == "incl":
            def incl(m: Machine, nxt: int) -> int:
                dst = rd(m)
                value = (dst + 1) & MASK32
                f = m.regs.flags       # inc/dec preserve CF on x86
                f.of = bool(~(dst ^ 1) & (dst ^ value) & 0x8000_0000)
                f.zf = value == 0
                f.sf = bool(value & 0x8000_0000)
                wr(m, value)
                return nxt
            return incl

        def decl(m: Machine, nxt: int) -> int:
            dst = rd(m)
            value = (dst - 1) & MASK32
            f = m.regs.flags           # inc/dec preserve CF on x86
            f.of = bool((dst ^ 1) & (dst ^ value) & 0x8000_0000)
            f.zf = value == 0
            f.sf = bool(value & 0x8000_0000)
            wr(m, value)
            return nxt
        return decl

    if m_ == "idivl":
        rd = _compile_read(ops[0])

        def idivl(m: Machine, nxt: int) -> int:
            divisor = sign32(rd(m))
            if divisor == 0:
                raise MachineFault("divide error: division by zero")
            dividend = (m.regs.get("edx") << 32) | m.regs.get("eax")
            if dividend & (1 << 63):
                dividend -= 1 << 64
            quotient = abs(dividend) // abs(divisor)
            if (dividend < 0) != (divisor < 0):
                quotient = -quotient
            remainder = dividend - quotient * divisor
            if not -(1 << 31) <= quotient < (1 << 31):
                raise MachineFault("divide error: quotient overflow")
            m.regs.set("eax", quotient & MASK32)
            m.regs.set("edx", remainder & MASK32)
            return nxt
        return idivl

    if m_ == "cltd":
        def cltd(m: Machine, nxt: int) -> int:
            m.regs.set("edx",
                       MASK32 if m.regs.get("eax") & 0x8000_0000 else 0)
            return nxt
        return cltd

    if m_ == "pushl":
        rd = _compile_read(ops[0])

        def pushl(m: Machine, nxt: int) -> int:
            m.push(rd(m))
            return nxt
        return pushl

    if m_ == "popl":
        wr = _compile_write(ops[0])

        def popl(m: Machine, nxt: int) -> int:
            wr(m, m.pop())
            return nxt
        return popl

    if m_ == "jmp":
        rd = _compile_read(ops[0])

        def jmp(m: Machine, nxt: int) -> int:
            return rd(m)
        return jmp

    if m_ in _JUMP_CONDITIONS:
        cond = _JUMP_CONDITIONS[m_]
        rd = _compile_read(ops[0])

        def jcc(m: Machine, nxt: int) -> int:
            return rd(m) if cond(m.regs.flags) else nxt
        return jcc

    if m_ == "call":
        rd = _compile_read(ops[0])

        def call(m: Machine, nxt: int) -> int:
            m.push(nxt)
            return rd(m)
        return call

    if m_ == "ret":
        def ret(m: Machine, nxt: int) -> int:
            return m.pop()
        return ret

    if m_ == "leave":
        def leave(m: Machine, nxt: int) -> int:
            m.regs.set("esp", m.regs.get("ebp"))
            m.regs.set("ebp", m.pop())
            return nxt
        return leave

    if m_ == "nop":
        def nop(m: Machine, nxt: int) -> int:
            return nxt
        return nop

    if m_ == "halt":
        def halt(m: Machine, nxt: int) -> int:
            m.halted = True
            return nxt
        return halt

    # pragma: no cover - the assembler rejects unknown mnemonics
    return _raiser(IllegalInstruction(f"unimplemented mnemonic {m_!r}"))
