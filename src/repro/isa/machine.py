"""The IA-32-subset machine: executes assembled programs.

Models what the course's GDB tracing exercises observe: registers,
condition flags, the runtime stack (push/pop/call/ret/leave and the
%ebp frame chain), memory operands with full x86 addressing modes, and
cdecl function calls. Arithmetic flag semantics come from
:mod:`repro.binary.arith` — the same definitions the binary module
teaches, now driving conditional jumps.
"""

from __future__ import annotations

from typing import Callable

from repro.binary.arith import add as _badd, mul as _bmul, sub as _bsub
from repro.binary.bits import BitVector
from repro.clib.address_space import AddressSpace, STACK_TOP
from repro.errors import IllegalInstruction, MachineFault
from repro.isa.instructions import (
    Immediate,
    Instruction,
    INSTRUCTION_SIZE,
    LabelRef,
    Memory,
    Operand,
    Program,
    Register,
)
from repro.isa.registers import RegisterSet

_MASK32 = 0xFFFF_FFFF

#: "return address" of the outermost frame; reaching it ends the program
SENTINEL_RETURN = 0xFFFF_FFF0


def _signed(value: int) -> int:
    value &= _MASK32
    return value - (1 << 32) if value & 0x8000_0000 else value


class Machine:
    """Executes a :class:`Program` over an :class:`AddressSpace`."""

    def __init__(self, program: Program, space: AddressSpace | None = None,
                 *, record_fetches: bool = False) -> None:
        self.program = program
        self.space = space or AddressSpace.standard()
        self.regs = RegisterSet()
        self.record_fetches = record_fetches
        self.regs.set("esp", STACK_TOP - 16)
        self.regs.eip = program.entry_address
        self.halted = False
        self.steps = 0
        if program.data_image:
            self.space.write(program.data_base, program.data_image)
        # a `ret` from the entry function returns here and ends the program
        self.push(SENTINEL_RETURN)

    # -- operand access --------------------------------------------------------

    def effective_address(self, op: Memory) -> int:
        """disp + base + index*scale — the x86 addressing-mode formula."""
        addr = op.displacement
        if op.base:
            addr += self.regs.get(op.base)
        if op.index:
            addr += self.regs.get(op.index) * op.scale
        return addr & _MASK32

    def read_operand(self, op: Operand) -> int:
        """Evaluate a 32-bit source operand to its unsigned value."""
        if isinstance(op, Immediate):
            return op.value & _MASK32
        if isinstance(op, Register):
            return self.regs.get(op.name)
        if isinstance(op, Memory):
            return self.space.load_uint(self.effective_address(op), 4)
        if isinstance(op, LabelRef):
            if op.address is None:
                raise MachineFault(f"unresolved label {op.name!r}")
            return op.address
        raise IllegalInstruction(f"cannot read operand {op!r}")

    def write_operand(self, op: Operand, value: int) -> None:
        """Store a 32-bit value into a register or memory destination."""
        if isinstance(op, Register):
            self.regs.set(op.name, value)
        elif isinstance(op, Memory):
            self.space.store_uint(self.effective_address(op), value, 4)
        else:
            raise IllegalInstruction(f"cannot write operand {op!r}")

    # -- byte-width operands (movb / movzbl / movsbl / cmpb) ----------------

    def read_byte_operand(self, op: Operand) -> int:
        """Evaluate an 8-bit operand (byte register, memory, immediate)."""
        if isinstance(op, Immediate):
            return op.value & 0xFF
        if isinstance(op, Register):
            from repro.isa.registers import register_width
            if register_width(op.name) != 8:
                raise IllegalInstruction(
                    f"byte operation needs an 8-bit register, got %{op.name}")
            return self.regs.get(op.name)
        if isinstance(op, Memory):
            return self.space.load_uint(self.effective_address(op), 1)
        raise IllegalInstruction(f"cannot read byte operand {op!r}")

    def write_byte_operand(self, op: Operand, value: int) -> None:
        """Store one byte into a byte register or memory destination."""
        if isinstance(op, Register):
            from repro.isa.registers import register_width
            if register_width(op.name) != 8:
                raise IllegalInstruction(
                    f"byte operation needs an 8-bit register, got %{op.name}")
            self.regs.set(op.name, value & 0xFF)
        elif isinstance(op, Memory):
            self.space.store_uint(self.effective_address(op),
                                  value & 0xFF, 1)
        else:
            raise IllegalInstruction(f"cannot write byte operand {op!r}")

    # -- stack -------------------------------------------------------------------

    def push(self, value: int) -> None:
        """pushl: decrement %esp by 4 and store the value there."""
        esp = (self.regs.get("esp") - 4) & _MASK32
        self.regs.set("esp", esp)
        self.space.store_uint(esp, value, 4)

    def pop(self) -> int:
        """popl: load from %esp and increment it by 4."""
        esp = self.regs.get("esp")
        value = self.space.load_uint(esp, 4)
        self.regs.set("esp", (esp + 4) & _MASK32)
        return value

    # -- flags ---------------------------------------------------------------------

    def _set_flags_arith(self, result) -> None:
        f = self.regs.flags
        f.cf = result.flags.carry
        f.of = result.flags.overflow
        f.zf = result.flags.zero
        f.sf = result.flags.sign

    def _set_flags_logic(self, value: int) -> None:
        f = self.regs.flags
        f.cf = False
        f.of = False
        f.zf = (value & _MASK32) == 0
        f.sf = bool(value & 0x8000_0000)

    def _condition(self, mnemonic: str) -> bool:
        f = self.regs.flags
        table: dict[str, Callable[[], bool]] = {
            "je": lambda: f.zf,
            "jne": lambda: not f.zf,
            "jg": lambda: not f.zf and f.sf == f.of,
            "jge": lambda: f.sf == f.of,
            "jl": lambda: f.sf != f.of,
            "jle": lambda: f.zf or f.sf != f.of,
            "ja": lambda: not f.cf and not f.zf,
            "jae": lambda: not f.cf,
            "jb": lambda: f.cf,
            "jbe": lambda: f.cf or f.zf,
            "js": lambda: f.sf,
            "jns": lambda: not f.sf,
        }
        return table[mnemonic]()

    # -- execution --------------------------------------------------------------------

    def step(self) -> Instruction:
        """Fetch, execute, and return the instruction at %eip."""
        if self.halted:
            raise MachineFault("machine is halted")
        eip = self.regs.eip
        ins = self.program.at(eip)
        if ins is None:
            raise MachineFault(f"no instruction at {eip:#010x} "
                               "(fell off the program?)")
        if self.record_fetches:
            self.space.fetch(eip, INSTRUCTION_SIZE)
        next_eip = eip + INSTRUCTION_SIZE
        m = ins.mnemonic
        ops = ins.operands

        if m == "movl":
            self.write_operand(ops[1], self.read_operand(ops[0]))
        elif m == "movb":
            self.write_byte_operand(ops[1], self.read_byte_operand(ops[0]))
        elif m == "movzbl":
            if not isinstance(ops[1], Register):
                raise IllegalInstruction("movzbl destination must be a "
                                         "32-bit register")
            self.regs.set(ops[1].name, self.read_byte_operand(ops[0]))
        elif m == "movsbl":
            if not isinstance(ops[1], Register):
                raise IllegalInstruction("movsbl destination must be a "
                                         "32-bit register")
            byte = self.read_byte_operand(ops[0])
            self.regs.set(ops[1].name,
                          byte - 0x100 if byte & 0x80 else byte)
        elif m == "cmpb":
            src = BitVector(self.read_byte_operand(ops[0]), 8)
            dst = BitVector(self.read_byte_operand(ops[1]), 8)
            self._set_flags_arith(_bsub(dst, src))
        elif m == "leal":
            if not isinstance(ops[0], Memory):
                raise IllegalInstruction("leal source must be a memory operand")
            self.write_operand(ops[1], self.effective_address(ops[0]))
        elif m in ("addl", "subl", "cmpl"):
            src = BitVector(self.read_operand(ops[0]), 32)
            dst = BitVector(self.read_operand(ops[1]), 32)
            result = _badd(dst, src) if m == "addl" else _bsub(dst, src)
            self._set_flags_arith(result)
            if m != "cmpl":
                self.write_operand(ops[1], result.value.raw)
        elif m == "imull":
            src = BitVector(self.read_operand(ops[0]), 32)
            dst = BitVector(self.read_operand(ops[1]), 32)
            result = _bmul(dst, src, signed=True)
            self._set_flags_arith(result)
            self.write_operand(ops[1], result.value.raw)
        elif m in ("andl", "orl", "xorl", "testl"):
            src = self.read_operand(ops[0])
            dst = self.read_operand(ops[1])
            value = {"andl": dst & src, "orl": dst | src,
                     "xorl": dst ^ src, "testl": dst & src}[m]
            self._set_flags_logic(value)
            if m != "testl":
                self.write_operand(ops[1], value)
        elif m in ("sall", "shll", "sarl", "shrl"):
            count = self.read_operand(ops[0]) & 0x1F
            raw = self.read_operand(ops[1])
            if count:
                if m in ("sall", "shll"):
                    cf = bool((raw >> (32 - count)) & 1)
                    value = (raw << count) & _MASK32
                elif m == "shrl":
                    cf = bool((raw >> (count - 1)) & 1)
                    value = raw >> count
                else:  # sarl
                    cf = bool((raw >> (count - 1)) & 1)
                    value = (_signed(raw) >> count) & _MASK32
                self._set_flags_logic(value)
                self.regs.flags.cf = cf
                self.write_operand(ops[1], value)
        elif m == "notl":
            self.write_operand(ops[0], ~self.read_operand(ops[0]) & _MASK32)
        elif m == "negl":
            raw = self.read_operand(ops[0])
            result = _bsub(BitVector(0, 32), BitVector(raw, 32))
            self._set_flags_arith(result)
            self.regs.flags.cf = raw != 0
            self.write_operand(ops[0], result.value.raw)
        elif m in ("incl", "decl"):
            raw = BitVector(self.read_operand(ops[0]), 32)
            one = BitVector(1, 32)
            result = _badd(raw, one) if m == "incl" else _bsub(raw, one)
            saved_cf = self.regs.flags.cf     # inc/dec preserve CF on x86
            self._set_flags_arith(result)
            self.regs.flags.cf = saved_cf
            self.write_operand(ops[0], result.value.raw)
        elif m == "idivl":
            divisor = _signed(self.read_operand(ops[0]))
            if divisor == 0:
                raise MachineFault("divide error: division by zero")
            dividend = (self.regs.get("edx") << 32) | self.regs.get("eax")
            if dividend & (1 << 63):
                dividend -= 1 << 64
            quotient = abs(dividend) // abs(divisor)
            if (dividend < 0) != (divisor < 0):
                quotient = -quotient
            remainder = dividend - quotient * divisor
            if not -(1 << 31) <= quotient < (1 << 31):
                raise MachineFault("divide error: quotient overflow")
            self.regs.set("eax", quotient & _MASK32)
            self.regs.set("edx", remainder & _MASK32)
        elif m == "cltd":
            self.regs.set("edx",
                          _MASK32 if self.regs.get("eax") & 0x8000_0000 else 0)
        elif m == "pushl":
            self.push(self.read_operand(ops[0]))
        elif m == "popl":
            self.write_operand(ops[0], self.pop())
        elif m == "jmp":
            next_eip = self.read_operand(ops[0])
        elif m in ("je", "jne", "jg", "jge", "jl", "jle",
                   "ja", "jae", "jb", "jbe", "js", "jns"):
            if self._condition(m):
                next_eip = self.read_operand(ops[0])
        elif m == "call":
            self.push(next_eip)
            next_eip = self.read_operand(ops[0])
        elif m == "ret":
            next_eip = self.pop()
        elif m == "leave":
            self.regs.set("esp", self.regs.get("ebp"))
            self.regs.set("ebp", self.pop())
        elif m == "nop":
            pass
        elif m == "halt":
            self.halted = True
        else:  # pragma: no cover - assembler rejects unknown mnemonics
            raise IllegalInstruction(f"unimplemented mnemonic {m!r}")

        if next_eip == SENTINEL_RETURN:
            self.halted = True
        self.regs.eip = next_eip & _MASK32
        self.steps += 1
        return ins

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run to completion; returns %eax as a signed int (C return value)."""
        while not self.halted:
            if self.steps >= max_steps:
                raise MachineFault("step limit exceeded (infinite loop?)")
            self.step()
        return self.regs.get_signed("eax")

    def call(self, label: str, *args: int, max_steps: int = 1_000_000) -> int:
        """Invoke a function cdecl-style and return its (signed) result.

        Pushes args right-to-left, pushes the sentinel return address, and
        runs until the function returns to it.
        """
        if label not in self.program.labels:
            raise MachineFault(f"no function labelled {label!r}")
        saved_esp = self.regs.get("esp")
        for a in reversed(args):
            self.push(a & _MASK32)
        self.push(SENTINEL_RETURN)
        self.regs.eip = self.program.labels[label]
        self.halted = False
        result = self.run(max_steps=max_steps)
        self.regs.set("esp", saved_esp)   # caller cleans up (cdecl)
        return result
