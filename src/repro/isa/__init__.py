"""The IA-32 subset: assembler, machine, tools (CS 31 §III-A, *Assembly*).

Register set with sub-register views, AT&T-syntax assembler, the
executing machine with x86 flag semantics and cdecl calls, GDB-style
disassembler and debugger, the Lab 5 binary maze generator, and a tiny
C-subset compiler that grounds "the role of the compiler".
"""

from repro.isa.registers import Flags, GP32, RegisterSet, register_width
from repro.isa.instructions import (
    Immediate,
    Instruction,
    INSTRUCTION_SIZE,
    LabelRef,
    Memory,
    Operand,
    Program,
    Register,
)
from repro.isa.assembler import assemble, parse_operand
from repro.isa.machine import Machine, SENTINEL_RETURN
from repro.isa.disassembler import (
    annotate,
    disassemble_function,
    disassemble_range,
    function_bounds,
)
from repro.isa.debugger import Debugger, StackFrameInfo
from repro.isa.maze import Floor, Maze, SCHEMES
from repro.isa.ccompiler import CompileError, compile_c, parse_c, run_c

__all__ = [
    "RegisterSet", "Flags", "GP32", "register_width",
    "Instruction", "Program", "Operand", "Register", "Immediate", "Memory",
    "LabelRef", "INSTRUCTION_SIZE",
    "assemble", "parse_operand",
    "Machine", "SENTINEL_RETURN",
    "disassemble_function", "disassemble_range", "function_bounds", "annotate",
    "Debugger", "StackFrameInfo",
    "Maze", "Floor", "SCHEMES",
    "compile_c", "parse_c", "run_c", "CompileError",
]
