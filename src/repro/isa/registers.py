"""The IA-32 register set, with 16- and 8-bit sub-register views.

CS 31 "start[s] with introducing the IA-32 register set" (§III-A,
*Assembly Programming*). :class:`RegisterSet` models the eight general
purpose 32-bit registers, the program counter (%eip), and the four
condition flags the course uses (ZF, SF, CF, OF). Writing %ax or %al
updates the right slice of %eax, exactly as on hardware — the source of
several classic homework questions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.binary.twos_complement import MASK32
from repro.errors import IsaError

GP32 = ("eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi")
#: 16-bit names and their parent 32-bit register
SUB16 = {"ax": "eax", "cx": "ecx", "dx": "edx", "bx": "ebx",
         "sp": "esp", "bp": "ebp", "si": "esi", "di": "edi"}
#: 8-bit names → (parent, shift)
SUB8 = {"al": ("eax", 0), "ah": ("eax", 8),
        "cl": ("ecx", 0), "ch": ("ecx", 8),
        "dl": ("edx", 0), "dh": ("edx", 8),
        "bl": ("ebx", 0), "bh": ("ebx", 8)}

def register_width(name: str) -> int:
    """Width in bits of a register name (without the % sigil)."""
    if name in GP32 or name == "eip":
        return 32
    if name in SUB16:
        return 16
    if name in SUB8:
        return 8
    raise IsaError(f"unknown register %{name}")


@dataclass
class Flags:
    """The condition codes conditional jumps read."""
    zf: bool = False
    sf: bool = False
    cf: bool = False
    of: bool = False

    def __str__(self) -> str:
        return (f"ZF={int(self.zf)} SF={int(self.sf)} "
                f"CF={int(self.cf)} OF={int(self.of)}")


@dataclass
class RegisterSet:
    """All machine registers. Values are stored as unsigned 32-bit."""
    eip: int = 0
    flags: Flags = field(default_factory=Flags)

    def __post_init__(self) -> None:
        self._regs: dict[str, int] = {r: 0 for r in GP32}

    def get(self, name: str) -> int:
        """Read a register by name (any width); returns unsigned."""
        if name in self._regs:
            return self._regs[name]
        if name == "eip":
            return self.eip
        if name in SUB16:
            return self._regs[SUB16[name]] & 0xFFFF
        if name in SUB8:
            parent, shift = SUB8[name]
            return (self._regs[parent] >> shift) & 0xFF
        raise IsaError(f"unknown register %{name}")

    def set(self, name: str, value: int) -> None:
        """Write a register; sub-register writes merge into the parent."""
        if name in self._regs:
            self._regs[name] = value & MASK32
            return
        if name == "eip":
            self.eip = value & MASK32
            return
        if name in SUB16:
            parent = SUB16[name]
            self._regs[parent] = ((self._regs[parent] & 0xFFFF_0000)
                                  | (value & 0xFFFF))
            return
        if name in SUB8:
            parent, shift = SUB8[name]
            mask = 0xFF << shift
            self._regs[parent] = ((self._regs[parent] & (~mask & MASK32))
                                  | ((value & 0xFF) << shift))
            return
        raise IsaError(f"unknown register %{name}")

    def get_signed(self, name: str) -> int:
        """Two's-complement view at the register's width."""
        width = register_width(name)
        raw = self.get(name)
        sign = 1 << (width - 1)
        return raw - (1 << width) if raw & sign else raw

    def snapshot(self) -> dict[str, int]:
        """All 32-bit registers + eip, for the debugger's `info registers`."""
        snap = dict(self._regs)
        snap["eip"] = self.eip
        return snap

    def render(self) -> str:
        rows = []
        for name in GP32:
            v = self._regs[name]
            rows.append(f"%{name:<3} = {v:#010x} ({self.get_signed(name)})")
        rows.append(f"%eip = {self.eip:#010x}")
        rows.append(str(self.flags))
        return "\n".join(rows)
