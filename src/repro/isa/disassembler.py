"""Disassembly views of assembled programs.

The course has students "disassemble their own program binaries to the
assembly code they learn"; the Lab 5 maze is solved by reading
disassembly in GDB. These helpers render :class:`Program` instructions
the way ``disassemble`` prints them in GDB: address, optional label,
mnemonic, operands, and a ``<+offset>`` relative to the enclosing
function.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction, Program


def function_bounds(program: Program, label: str) -> tuple[int, int]:
    """(start, end) addresses of the function beginning at ``label``.

    The function extends to the next label at a higher address or the end
    of the program.
    """
    if label not in program.labels:
        raise KeyError(f"no label {label!r}")
    start = program.labels[label]
    higher = [a for a in program.labels.values() if a > start]
    if higher:
        end = min(higher)
    else:
        last = program.instructions[-1]
        end = last.address + 4
    return start, end


def disassemble_function(program: Program, label: str) -> str:
    """GDB-style listing of one function."""
    start, end = function_bounds(program, label)
    lines = [f"Dump of assembler code for function {label}:"]
    for ins in program.instructions:
        if start <= ins.address < end:
            offset = ins.address - start
            lines.append(f"   {ins.address:#010x} <+{offset}>:\t{ins}")
    lines.append("End of assembler dump.")
    return "\n".join(lines)


def disassemble_range(program: Program, start: int, count: int) -> list[str]:
    """``count`` instructions starting at ``start`` (for `x/Ni` style use)."""
    out = []
    addr = start
    for _ in range(count):
        ins = program.at(addr)
        if ins is None:
            break
        out.append(f"{addr:#010x}:\t{ins}")
        addr += 4
    return out


def annotate(program: Program, instruction: Instruction) -> str:
    """One-line rendering with the enclosing label context, for traces."""
    label = None
    best = -1
    for name, addr in program.labels.items():
        if addr <= instruction.address and addr > best:
            best = addr
            label = name
    prefix = f"<{label}+{instruction.address - best}>" if label else ""
    return f"{instruction.address:#010x} {prefix}: {instruction}"
