"""A GDB-like debugger for the IA-32-subset machine.

Lab 4 teaches "the basics of Valgrind and GDB"; Lab 5's maze is solved
almost entirely inside GDB. :class:`Debugger` provides the operations
those labs use: breakpoints (by label or address), single-stepping,
continue, register/memory inspection, and a backtrace that walks the
saved-%ebp chain — plus a tiny command interpreter so examples can show
real GDB-flavoured sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.errors import MachineFault
from repro.isa.disassembler import annotate, disassemble_function
from repro.isa.machine import Machine, SENTINEL_RETURN

StopReason = Literal["breakpoint", "watchpoint", "halted", "step-limit"]


@dataclass(frozen=True)
class StackFrameInfo:
    """One backtrace entry."""
    function: str
    frame_base: int
    return_address: int


class Debugger:
    """Drives a :class:`Machine` the way the labs drive GDB."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.breakpoints: set[int] = set()
        #: watched address → last observed 4-byte value
        self.watchpoints: dict[int, int] = {}

    # -- breakpoints -------------------------------------------------------

    def resolve(self, where: str | int) -> int:
        """An address, or a label name (GDB's `break floor_1`)."""
        if isinstance(where, int):
            return where
        labels = self.machine.program.labels
        if where not in labels:
            raise MachineFault(f"no symbol {where!r} in program")
        return labels[where]

    def break_at(self, where: str | int) -> int:
        addr = self.resolve(where)
        self.breakpoints.add(addr)
        return addr

    def delete_breakpoint(self, where: str | int) -> None:
        self.breakpoints.discard(self.resolve(where))

    # -- watchpoints (GDB's `watch`) -----------------------------------------

    def watch(self, address: int) -> None:
        """Stop when the 4-byte value at ``address`` changes."""
        self.watchpoints[address] = self.machine.space.load_uint(address, 4)

    def unwatch(self, address: int) -> None:
        self.watchpoints.pop(address, None)

    def _changed_watchpoint(self) -> tuple[int, int, int] | None:
        """(address, old, new) of the first tripped watchpoint, if any."""
        for addr, old in self.watchpoints.items():
            new = self.machine.space.load_uint(addr, 4)
            if new != old:
                self.watchpoints[addr] = new
                return addr, old, new
        return None

    # -- execution ----------------------------------------------------------

    def stepi(self, count: int = 1) -> list[str]:
        """Execute ``count`` instructions; returns annotated trace lines."""
        lines = []
        for _ in range(count):
            if self.machine.halted:
                break
            ins = self.machine.step()
            lines.append(annotate(self.machine.program, ins))
        return lines

    def cont(self, max_steps: int = 1_000_000) -> StopReason:
        """Run until a breakpoint/watchpoint fires, or the program ends.

        After a watchpoint stop, :attr:`last_watch_hit` holds
        ``(address, old_value, new_value)``.
        """
        stepped = 0
        while not self.machine.halted:
            if stepped >= max_steps:
                return "step-limit"
            self.machine.step()
            stepped += 1
            if self.machine.regs.eip in self.breakpoints:
                return "breakpoint"
            if self.watchpoints:
                hit = self._changed_watchpoint()
                if hit is not None:
                    self.last_watch_hit = hit
                    return "watchpoint"
        return "halted"

    last_watch_hit: tuple[int, int, int] | None = None

    def run_to(self, where: str | int, max_steps: int = 1_000_000) -> StopReason:
        """Temporary breakpoint + continue (GDB's `advance`)."""
        addr = self.resolve(where)
        added = addr not in self.breakpoints
        self.breakpoints.add(addr)
        try:
            return self.cont(max_steps)
        finally:
            if added:
                self.breakpoints.discard(addr)

    # -- inspection -----------------------------------------------------------

    def info_registers(self) -> str:
        return self.machine.regs.render()

    def examine(self, address: int, count: int = 1, size: int = 4) -> list[int]:
        """GDB's ``x/<count>`` — read ``count`` units of ``size`` bytes."""
        return [self.machine.space.load_uint(address + i * size, size)
                for i in range(count)]

    def current_function(self) -> str | None:
        eip = self.machine.regs.eip
        best_name, best_addr = None, -1
        for name, addr in self.machine.program.labels.items():
            if addr <= eip and addr > best_addr:
                best_name, best_addr = name, addr
        return best_name

    def backtrace(self, limit: int = 32) -> list[StackFrameInfo]:
        """Walk the saved-%ebp chain, innermost frame first."""
        frames: list[StackFrameInfo] = []
        ebp = self.machine.regs.get("ebp")
        function = self.current_function() or "??"
        for _ in range(limit):
            if ebp == 0:
                break
            try:
                saved_ebp = self.machine.space.load_uint(ebp, 4)
                ret = self.machine.space.load_uint(ebp + 4, 4)
            except Exception:
                break
            frames.append(StackFrameInfo(function, ebp, ret))
            if ret == SENTINEL_RETURN:
                break
            caller = None
            best = -1
            for name, addr in self.machine.program.labels.items():
                if addr <= ret and addr > best:
                    caller, best = name, addr
            function = caller or "??"
            ebp = saved_ebp
        return frames

    def disassemble(self, label: str | None = None) -> str:
        label = label or self.current_function()
        if label is None:
            raise MachineFault("no current function to disassemble")
        return disassemble_function(self.machine.program, label)

    # -- command interpreter (for examples/demos) --------------------------------

    def execute_command(self, command: str) -> str:
        """A tiny GDB command language: break/delete/stepi/continue/info/x/bt/disas."""
        parts = command.split()
        if not parts:
            return ""
        op, args = parts[0], parts[1:]
        if op in ("b", "break"):
            addr = self.break_at(args[0] if not args[0].startswith("0x")
                                 else int(args[0], 16))
            return f"Breakpoint at {addr:#010x}"
        if op in ("d", "delete"):
            self.delete_breakpoint(args[0])
            return "deleted"
        if op == "watch":
            addr = int(args[0], 0)
            self.watch(addr)
            return f"Watchpoint at {addr:#010x}"
        if op == "stepi" or op == "si":
            n = int(args[0]) if args else 1
            return "\n".join(self.stepi(n)) or "(halted)"
        if op in ("c", "continue"):
            return f"stopped: {self.cont()}"
        if op == "info" and args and args[0] == "registers":
            return self.info_registers()
        if op.startswith("x/"):
            count = int(op[2:].rstrip("xwd") or "1")
            addr = int(args[0], 0)
            vals = self.examine(addr, count)
            return "  ".join(f"{v:#010x}" for v in vals)
        if op in ("bt", "backtrace"):
            return "\n".join(
                f"#{i} {f.function} (frame {f.frame_base:#010x}, "
                f"ret {f.return_address:#010x})"
                for i, f in enumerate(self.backtrace()))
        if op in ("disas", "disassemble"):
            return self.disassemble(args[0] if args else None)
        raise MachineFault(f"unknown debugger command {command!r}")
