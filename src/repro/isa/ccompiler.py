"""A tiny C-subset compiler targeting the IA-32 subset.

The course frames assembly via "the role of the compiler in translating
a C program to the binary form" and Lab 4 has students hand-translate C
functions to IA-32. This compiler performs that same translation
mechanically, in the gcc -O0 style the course shows: one stack slot per
local, parameters at ``8(%ebp)``/``12(%ebp)``..., expression results in
``%eax``, and the classic prologue/epilogue.

Supported subset::

    int name(int a, int b) { ... }          functions, int-only
    int g;  int g = 5;                      file-scope globals (.data)
    int x;  int x = e;  x = e;              declarations & assignment
    int a[10];  a[i] = e;  a[i]             local arrays (Lab 4/6 style)
    &x  &a[i]  *p  *p = e                   address-of and dereference
    return e;  if (e) {...} else {...}      control flow
    while (e) {...}                         loops
    for (init; cond; update) {...}          counted loops (desugared)
    e;                                      expression statements (calls)
    + - * / %  == != < > <= >=  && || !     operators (&&/|| short-circuit)
    f(a, b), literals, variables, (e)       primaries

Everything is a 32-bit int; pointers are int addresses (byte-scaled by
4 only through the a[i] form, as the course's first pointer weeks do).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import IsaError


class CompileError(IsaError):
    """Source program rejected by the tiny compiler."""


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|//[^\n]*|/\*.*?\*/)
  | (?P<num>\d+)
  | (?P<name>[A-Za-z_]\w*)
  | (?P<op>&&|\|\||==|!=|<=|>=|[-+*/%<>=!(){},;\[\]&])
""", re.VERBOSE | re.DOTALL)

KEYWORDS = {"int", "return", "if", "else", "while", "for"}


@dataclass(frozen=True)
class Token:
    kind: str      # 'num' | 'name' | 'op' | 'kw' | 'eof'
    text: str
    pos: int
    line: int = 1


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    while i < len(source):
        m = _TOKEN_RE.match(source, i)
        if not m:
            raise CompileError(
                f"line {line}: unexpected character {source[i]!r} at {i}")
        i = m.end()
        if m.lastgroup == "ws":
            line += m.group().count("\n")
            continue
        kind = m.lastgroup
        text = m.group()
        if kind == "name" and text in KEYWORDS:
            kind = "kw"
        tokens.append(Token(kind, text, m.start(), line))
    tokens.append(Token("eof", "", len(source), line))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

@dataclass
class Num:
    value: int
    line: int = 0


@dataclass
class Var:
    name: str
    line: int = 0


@dataclass
class Call:
    name: str
    args: list
    line: int = 0


@dataclass
class Unary:
    op: str
    operand: object
    line: int = 0


@dataclass
class Binary:
    op: str
    left: object
    right: object
    line: int = 0


@dataclass
class Index:
    """``a[i]`` as an rvalue."""
    name: str
    index: object
    line: int = 0


@dataclass
class AddressOf:
    """``&x`` or ``&a[i]``."""
    name: str
    index: object | None = None
    line: int = 0


@dataclass
class Deref:
    """``*p`` as an rvalue (p any expression)."""
    pointer: object
    line: int = 0


@dataclass
class Declare:
    name: str
    init: object | None
    line: int = 0


@dataclass
class DeclareArray:
    """``int a[n];`` — n must be a literal."""
    name: str
    size: int
    line: int = 0


@dataclass
class Assign:
    name: str
    value: object
    line: int = 0


@dataclass
class AssignIndex:
    """``a[i] = e;``"""
    name: str
    index: object
    value: object
    line: int = 0


@dataclass
class AssignDeref:
    """``*p = e;`` (p any expression)."""
    pointer: object
    value: object
    line: int = 0


@dataclass
class Return:
    value: object
    line: int = 0


@dataclass
class If:
    cond: object
    then: list
    otherwise: list
    line: int = 0


@dataclass
class While:
    cond: object
    body: list
    line: int = 0


@dataclass
class ExprStmt:
    expr: object
    line: int = 0


@dataclass
class Function:
    name: str
    params: list[str]
    body: list
    line: int = 0


@dataclass
class GlobalVar:
    """``int g = 5;`` at file scope (constant initializer only)."""
    name: str
    init: int = 0
    line: int = 0


# ---------------------------------------------------------------------------
# Parser (recursive descent)
# ---------------------------------------------------------------------------

class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.i = 0

    def peek(self) -> Token:
        return self.tokens[self.i]

    def next(self) -> Token:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise CompileError(
                f"line {tok.line}: expected {want!r} but found "
                f"{tok.text!r} at {tok.pos}")
        return tok

    def accept(self, kind: str, text: str) -> bool:
        tok = self.peek()
        if tok.kind == kind and tok.text == text:
            self.i += 1
            return True
        return False

    # -- grammar -----------------------------------------------------------

    def parse_program(self) -> list:
        """Top-level items: functions and global int declarations."""
        items: list = []
        while self.peek().kind != "eof":
            items.append(self.parse_top_level())
        if not any(isinstance(i, Function) for i in items):
            raise CompileError("empty program")
        return items

    def parse_top_level(self):
        line = self.expect("kw", "int").line
        name = self.expect("name").text
        if self.peek().kind == "op" and self.peek().text == "(":
            return self._parse_function_rest(name, line)
        init = 0
        if self.accept("op", "="):
            negative = self.accept("op", "-")
            num = self.expect("num")
            init = -int(num.text) if negative else int(num.text)
        self.expect("op", ";")
        return GlobalVar(name, init, line=line)

    def parse_function(self) -> Function:
        line = self.expect("kw", "int").line
        name = self.expect("name").text
        return self._parse_function_rest(name, line)

    def _parse_function_rest(self, name: str, line: int = 0) -> Function:
        self.expect("op", "(")
        params: list[str] = []
        if not self.accept("op", ")"):
            while True:
                self.expect("kw", "int")
                params.append(self.expect("name").text)
                if self.accept("op", ")"):
                    break
                self.expect("op", ",")
        body = self.parse_block()
        return Function(name, params, body, line=line)

    def parse_block(self) -> list:
        self.expect("op", "{")
        stmts = []
        while not self.accept("op", "}"):
            stmts.append(self.parse_statement())
        return stmts

    def parse_statement(self):
        tok = self.peek()
        line = tok.line
        if tok.kind == "kw" and tok.text == "int":
            decl = self._parse_declaration()
            self.expect("op", ";")
            return decl
        if tok.kind == "kw" and tok.text == "return":
            self.next()
            value = self.parse_expr()
            self.expect("op", ";")
            return Return(value, line=line)
        if tok.kind == "kw" and tok.text == "if":
            self.next()
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            then = self.parse_block()
            otherwise = []
            if self.accept("kw", "else"):
                otherwise = self.parse_block()
            return If(cond, then, otherwise, line=line)
        if tok.kind == "kw" and tok.text == "while":
            self.next()
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            return While(cond, self.parse_block(), line=line)
        if tok.kind == "kw" and tok.text == "for":
            return self._parse_for()
        if tok.kind == "op" and tok.text == "*":
            # *expr = value;
            self.next()
            pointer = self.parse_unary()
            self.expect("op", "=")
            value = self.parse_expr()
            self.expect("op", ";")
            return AssignDeref(pointer, value, line=line)
        if (tok.kind == "name"
                and self.tokens[self.i + 1].kind == "op"
                and self.tokens[self.i + 1].text in ("=", "[")):
            stmt = self._parse_assignment()
            self.expect("op", ";")
            return stmt
        expr = self.parse_expr()
        self.expect("op", ";")
        return ExprStmt(expr, line=line)

    def _parse_declaration(self):
        """``int x``, ``int x = e``, or ``int a[n]`` (no trailing ';')."""
        line = self.expect("kw", "int").line
        name = self.expect("name").text
        if self.accept("op", "["):
            size_tok = self.expect("num")
            self.expect("op", "]")
            size = int(size_tok.text)
            if size <= 0:
                raise CompileError(
                    f"line {line}: array {name!r} needs positive size")
            return DeclareArray(name, size, line=line)
        init = None
        if self.accept("op", "="):
            init = self.parse_expr()
        return Declare(name, init, line=line)

    def _parse_assignment(self):
        """``x = e`` or ``a[i] = e`` (no trailing ';')."""
        tok = self.expect("name")
        name, line = tok.text, tok.line
        if self.accept("op", "["):
            index = self.parse_expr()
            self.expect("op", "]")
            self.expect("op", "=")
            return AssignIndex(name, index, self.parse_expr(), line=line)
        self.expect("op", "=")
        return Assign(name, self.parse_expr(), line=line)

    def _parse_for(self):
        """for (init; cond; update) block — desugared to a while loop.

        The init clause may be a declaration or assignment (or empty);
        the update clause an assignment (or empty).
        """
        for_line = self.expect("kw", "for").line
        self.expect("op", "(")
        init = None
        if not self.accept("op", ";"):
            if self.peek().kind == "kw" and self.peek().text == "int":
                init = self._parse_declaration()
            else:
                init = self._parse_assignment()
            self.expect("op", ";")
        cond = Num(1, line=for_line)
        if not self.accept("op", ";"):
            cond = self.parse_expr()
            self.expect("op", ";")
        update = None
        if not self.accept("op", ")"):
            update = self._parse_assignment()
            self.expect("op", ")")
        body = self.parse_block()
        loop_body = body + ([update] if update is not None else [])
        loop = While(cond, loop_body, line=for_line)
        return If(Num(1, line=for_line),
                  ([init] if init is not None else []) + [loop],
                  [], line=for_line)

    # expression precedence: || < && < (== !=) < (< > <= >=) < (+ -) < (* / %)
    def parse_expr(self):
        return self.parse_or()

    def _binary_level(self, sub, ops):
        node = sub()
        while self.peek().kind == "op" and self.peek().text in ops:
            op_tok = self.next()
            node = Binary(op_tok.text, node, sub(), line=op_tok.line)
        return node

    def parse_or(self):
        return self._binary_level(self.parse_and, {"||"})

    def parse_and(self):
        return self._binary_level(self.parse_equality, {"&&"})

    def parse_equality(self):
        return self._binary_level(self.parse_relational, {"==", "!="})

    def parse_relational(self):
        return self._binary_level(self.parse_additive,
                                  {"<", ">", "<=", ">="})

    def parse_additive(self):
        return self._binary_level(self.parse_multiplicative, {"+", "-"})

    def parse_multiplicative(self):
        return self._binary_level(self.parse_unary, {"*", "/", "%"})

    def parse_unary(self):
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "!"):
            self.next()
            return Unary(tok.text, self.parse_unary(), line=tok.line)
        if tok.kind == "op" and tok.text == "*":
            self.next()
            return Deref(self.parse_unary(), line=tok.line)
        if tok.kind == "op" and tok.text == "&":
            self.next()
            name = self.expect("name").text
            if self.accept("op", "["):
                index = self.parse_expr()
                self.expect("op", "]")
                return AddressOf(name, index, line=tok.line)
            return AddressOf(name, line=tok.line)
        return self.parse_primary()

    def parse_primary(self):
        tok = self.next()
        if tok.kind == "num":
            return Num(int(tok.text), line=tok.line)
        if tok.kind == "name":
            if self.accept("op", "("):
                args = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if self.accept("op", ")"):
                            break
                        self.expect("op", ",")
                return Call(tok.text, args, line=tok.line)
            if self.accept("op", "["):
                index = self.parse_expr()
                self.expect("op", "]")
                return Index(tok.text, index, line=tok.line)
            return Var(tok.text, line=tok.line)
        if tok.kind == "op" and tok.text == "(":
            e = self.parse_expr()
            self.expect("op", ")")
            return e
        raise CompileError(
            f"line {tok.line}: unexpected token {tok.text!r} at {tok.pos}")


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------

_CMP_JUMP = {"==": "je", "!=": "jne", "<": "jl",
             ">": "jg", "<=": "jle", ">=": "jge"}


class CodeGen:
    def __init__(self, globals_: set[str] | None = None) -> None:
        self.lines: list[str] = []
        self.globals: set[str] = globals_ or set()
        self._label_counter = 0

    def label(self, stem: str) -> str:
        self._label_counter += 1
        return f".L{stem}{self._label_counter}"

    def emit(self, text: str) -> None:
        self.lines.append(f"  {text}" if not text.endswith(":") else text)

    # -- functions ------------------------------------------------------------

    def gen_function(self, fn: Function) -> None:
        # pre-scan for locals so the prologue can reserve all slots at once
        offsets: dict[str, int] = {}
        for i, p in enumerate(fn.params):
            if p in offsets:
                raise CompileError(
                    f"line {fn.line}: duplicate parameter {p!r}")
            offsets[p] = 8 + 4 * i

        local_count = self._count_locals(fn.body, set(fn.params))
        self.emit(f"{fn.name}:")
        self.emit("pushl %ebp")
        self.emit("movl %esp, %ebp")
        if local_count:
            self.emit(f"subl ${4 * local_count}, %esp")
        self._next_local = -4
        self._gen_block(fn.body, dict(offsets))
        # implicit `return 0` if control falls off the end
        self.emit("movl $0, %eax")
        self.emit("leave")
        self.emit("ret")

    def _count_locals(self, stmts: list, seen: set[str]) -> int:
        count = 0
        for s in stmts:
            if isinstance(s, Declare):
                if s.name in seen:
                    raise CompileError(
                        f"line {s.line}: redeclaration of {s.name!r}")
                seen.add(s.name)
                count += 1
            elif isinstance(s, DeclareArray):
                if s.name in seen:
                    raise CompileError(
                        f"line {s.line}: redeclaration of {s.name!r}")
                seen.add(s.name)
                count += s.size
            elif isinstance(s, If):
                count += self._count_locals(s.then, set(seen))
                count += self._count_locals(s.otherwise, set(seen))
            elif isinstance(s, While):
                count += self._count_locals(s.body, set(seen))
        return count

    @staticmethod
    def _scalar_offset(scope: dict, name: str, line: int = 0) -> int:
        entry = scope.get(name)
        if entry is None:
            raise CompileError(
                f"line {line}: use of undeclared variable {name!r}")
        if isinstance(entry, tuple):
            raise CompileError(
                f"line {line}: {name!r} is an array, not a scalar")
        return entry

    @staticmethod
    def _array_entry(scope: dict, name: str,
                     line: int = 0) -> tuple[int, int]:
        """(base_offset, size) — scalars are usable too (int* values)."""
        entry = scope.get(name)
        if entry is None:
            raise CompileError(
                f"line {line}: use of undeclared variable {name!r}")
        if isinstance(entry, tuple):
            return entry[1], entry[2]
        raise CompileError(f"line {line}: {name!r} is not an array")

    def _gen_block(self, stmts: list, scope: dict[str, int]) -> None:
        for s in stmts:
            self._gen_statement(s, scope)

    def _gen_statement(self, s, scope: dict[str, int]) -> None:
        if isinstance(s, Declare):
            scope[s.name] = self._next_local
            self._next_local -= 4
            if s.init is not None:
                self._gen_expr(s.init, scope)
                self.emit(f"movl %eax, {scope[s.name]}(%ebp)")
        elif isinstance(s, DeclareArray):
            base = self._next_local - 4 * (s.size - 1)
            scope[s.name] = ("array", base, s.size)
            self._next_local = base - 4
        elif isinstance(s, Assign):
            if s.name in scope:
                offset = self._scalar_offset(scope, s.name, s.line)
                self._gen_expr(s.value, scope)
                self.emit(f"movl %eax, {offset}(%ebp)")
            elif s.name in self.globals:
                self._gen_expr(s.value, scope)
                self.emit(f"movl %eax, {s.name}")
            else:
                raise CompileError(
                    f"line {s.line}: assignment to undeclared {s.name!r}")
        elif isinstance(s, AssignIndex):
            base, _size = self._array_entry(scope, s.name, s.line)
            self._gen_expr(s.value, scope)
            self.emit("pushl %eax")
            self._gen_expr(s.index, scope)
            self.emit("movl %eax, %ecx")
            self.emit("popl %eax")
            self.emit(f"movl %eax, {base}(%ebp,%ecx,4)")
        elif isinstance(s, AssignDeref):
            self._gen_expr(s.value, scope)
            self.emit("pushl %eax")
            self._gen_expr(s.pointer, scope)
            self.emit("movl %eax, %ecx")
            self.emit("popl %eax")
            self.emit("movl %eax, (%ecx)")
        elif isinstance(s, Return):
            self._gen_expr(s.value, scope)
            self.emit("leave")
            self.emit("ret")
        elif isinstance(s, If):
            else_label = self.label("else")
            end_label = self.label("endif")
            self._gen_expr(s.cond, scope)
            self.emit("cmpl $0, %eax")
            self.emit(f"je {else_label}")
            self._gen_block(s.then, dict(scope))
            self.emit(f"jmp {end_label}")
            self.emit(f"{else_label}:")
            self._gen_block(s.otherwise, dict(scope))
            self.emit(f"{end_label}:")
        elif isinstance(s, While):
            top = self.label("loop")
            end = self.label("endloop")
            self.emit(f"{top}:")
            self._gen_expr(s.cond, scope)
            self.emit("cmpl $0, %eax")
            self.emit(f"je {end}")
            self._gen_block(s.body, dict(scope))
            self.emit(f"jmp {top}")
            self.emit(f"{end}:")
        elif isinstance(s, ExprStmt):
            self._gen_expr(s.expr, scope)
        else:  # pragma: no cover
            raise CompileError(f"unknown statement {s!r}")

    # -- expressions -------------------------------------------------------------

    def _gen_expr(self, e, scope: dict[str, int]) -> None:
        """Evaluate ``e`` into %eax (may clobber %ecx/%edx and the stack)."""
        if isinstance(e, Num):
            self.emit(f"movl ${e.value}, %eax")
        elif isinstance(e, Var):
            entry = scope.get(e.name)
            if entry is None:
                if e.name in self.globals:
                    self.emit(f"movl {e.name}, %eax")
                    return
                raise CompileError(
                    f"line {e.line}: use of undeclared variable {e.name!r}")
            if isinstance(entry, tuple):
                # an array name decays to its base address
                self.emit(f"leal {entry[1]}(%ebp), %eax")
            else:
                self.emit(f"movl {entry}(%ebp), %eax")
        elif isinstance(e, Index):
            base, _size = self._array_entry(scope, e.name, e.line)
            self._gen_expr(e.index, scope)
            self.emit("movl %eax, %ecx")
            self.emit(f"movl {base}(%ebp,%ecx,4), %eax")
        elif isinstance(e, AddressOf):
            if e.index is None:
                entry = scope.get(e.name)
                if entry is None:
                    if e.name in self.globals:
                        self.emit(f"movl ${e.name}, %eax")
                        return
                    raise CompileError(
                        f"line {e.line}: use of undeclared variable "
                        f"{e.name!r}")
                offset = entry[1] if isinstance(entry, tuple) else entry
                self.emit(f"leal {offset}(%ebp), %eax")
            else:
                base, _size = self._array_entry(scope, e.name, e.line)
                self._gen_expr(e.index, scope)
                self.emit("movl %eax, %ecx")
                self.emit(f"leal {base}(%ebp,%ecx,4), %eax")
        elif isinstance(e, Deref):
            self._gen_expr(e.pointer, scope)
            self.emit("movl (%eax), %eax")
        elif isinstance(e, Unary):
            self._gen_expr(e.operand, scope)
            if e.op == "-":
                self.emit("negl %eax")
            else:  # '!'
                true_label = self.label("t")
                end = self.label("e")
                self.emit("cmpl $0, %eax")
                self.emit(f"je {true_label}")
                self.emit("movl $0, %eax")
                self.emit(f"jmp {end}")
                self.emit(f"{true_label}:")
                self.emit("movl $1, %eax")
                self.emit(f"{end}:")
        elif isinstance(e, Call):
            for arg in reversed(e.args):
                self._gen_expr(arg, scope)
                self.emit("pushl %eax")
            self.emit(f"call {e.name}")
            if e.args:
                self.emit(f"addl ${4 * len(e.args)}, %esp")
        elif isinstance(e, Binary):
            if e.op in ("&&", "||"):
                self._gen_short_circuit(e, scope)
                return
            self._gen_expr(e.left, scope)
            self.emit("pushl %eax")
            self._gen_expr(e.right, scope)
            self.emit("movl %eax, %ecx")
            self.emit("popl %eax")
            if e.op == "+":
                self.emit("addl %ecx, %eax")
            elif e.op == "-":
                self.emit("subl %ecx, %eax")
            elif e.op == "*":
                self.emit("imull %ecx, %eax")
            elif e.op in ("/", "%"):
                self.emit("cltd")
                self.emit("idivl %ecx")
                if e.op == "%":
                    self.emit("movl %edx, %eax")
            elif e.op in _CMP_JUMP:
                true_label = self.label("t")
                end = self.label("e")
                self.emit("cmpl %ecx, %eax")
                self.emit(f"{_CMP_JUMP[e.op]} {true_label}")
                self.emit("movl $0, %eax")
                self.emit(f"jmp {end}")
                self.emit(f"{true_label}:")
                self.emit("movl $1, %eax")
                self.emit(f"{end}:")
            else:  # pragma: no cover
                raise CompileError(f"unknown operator {e.op!r}")
        else:  # pragma: no cover
            raise CompileError(f"unknown expression {e!r}")

    def _gen_short_circuit(self, e: Binary, scope: dict[str, int]) -> None:
        out_zero = self.label("sc0")
        out_one = self.label("sc1")
        end = self.label("scend")
        self._gen_expr(e.left, scope)
        self.emit("cmpl $0, %eax")
        if e.op == "&&":
            self.emit(f"je {out_zero}")
        else:
            self.emit(f"jne {out_one}")
        self._gen_expr(e.right, scope)
        self.emit("cmpl $0, %eax")
        self.emit(f"je {out_zero}")
        self.emit(f"{out_one}:")
        self.emit("movl $1, %eax")
        self.emit(f"jmp {end}")
        self.emit(f"{out_zero}:")
        self.emit("movl $0, %eax")
        self.emit(f"{end}:")


def parse_c(source: str) -> list:
    """Parse C-subset source to a line-annotated AST (top-level items).

    The returned list holds :class:`Function` and :class:`GlobalVar`
    nodes; every node carries the 1-based source ``line`` it started on.
    This is the entry point ``repro.analysis`` builds its CFG from.
    """
    return Parser(tokenize(source)).parse_program()


def compile_c(source: str) -> str:
    """Compile C-subset source to IA-32-subset assembly text."""
    items = parse_c(source)
    functions = [i for i in items if isinstance(i, Function)]
    globals_ = [i for i in items if isinstance(i, GlobalVar)]
    seen: dict[str, object] = {}
    for item in functions + globals_:
        if item.name in seen:
            raise CompileError(
                f"line {item.line}: duplicate top-level definitions "
                f"({item.name!r})")
        seen[item.name] = item
    gen = CodeGen({g.name for g in globals_})
    if globals_:
        gen.emit(".data")
        for g in globals_:
            gen.emit(f"{g.name}:")
            gen.emit(f".long {g.init}")
        gen.emit(".text")
    for fn in functions:
        gen.gen_function(fn)
    return "\n".join(gen.lines)


def run_c(source: str, function: str = "main", *args: int,
          max_steps: int = 1_000_000) -> int:
    """Compile, assemble, and call ``function(*args)``; returns the int result."""
    from repro.isa.assembler import assemble
    from repro.isa.machine import Machine

    program = assemble(compile_c(source), entry=function)
    return Machine(program).call(function, *args, max_steps=max_steps)
