"""Operand and instruction modelling for the IA-32 subset (AT&T syntax).

Instructions are kept in decoded form, each pinned to an address in the
text region (4 bytes apart, so addresses, the PC, and GDB-style
breakpoints behave realistically) with the machine fetching from a side
table. Binary encoding of IA-32 is deliberately out of scope — the course
treats assembly as "the human-readable form of ... machine code", and
this repo's observable unit is the instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssemblerError

#: every mnemonic the machine executes, grouped for the assembler
ARITH2 = {"movl", "addl", "subl", "imull", "andl", "orl", "xorl",
          "sall", "shll", "sarl", "shrl", "leal", "cmpl", "testl",
          "movb", "movzbl", "movsbl", "cmpb"}
ARITH1 = {"notl", "negl", "incl", "decl", "idivl", "pushl", "popl"}
JUMPS = {"jmp", "je", "jne", "jg", "jge", "jl", "jle",
         "ja", "jae", "jb", "jbe", "js", "jns"}
ZEROARY = {"ret", "leave", "nop", "cltd", "halt"}
CALLS = {"call"}

ALL_MNEMONICS = ARITH2 | ARITH1 | JUMPS | ZEROARY | CALLS

#: bytes per instruction slot in the text region
INSTRUCTION_SIZE = 4


class Operand:
    """Base class for instruction operands."""


@dataclass(frozen=True)
class Register(Operand):
    """``%eax`` — a register operand (name stored without the sigil)."""
    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Immediate(Operand):
    """``$42`` — a literal value."""
    value: int

    def __str__(self) -> str:
        return f"${self.value}"


@dataclass(frozen=True)
class Memory(Operand):
    """``disp(base, index, scale)`` — an x86 effective address.

    Any of base/index may be None; scale ∈ {1, 2, 4, 8}.
    """
    displacement: int = 0
    base: str | None = None
    index: str | None = None
    scale: int = 1

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise AssemblerError(f"invalid scale {self.scale}")
        if self.base is None and self.index is None:
            # absolute addressing: displacement only
            pass

    def __str__(self) -> str:
        disp = str(self.displacement) if self.displacement else ""
        if self.base is None and self.index is None:
            return str(self.displacement)
        inner = f"%{self.base}" if self.base else ""
        if self.index:
            inner += f",%{self.index},{self.scale}"
        return f"{disp}({inner})"


@dataclass(frozen=True)
class LabelRef(Operand):
    """A code label used by jumps and calls; resolved to an address."""
    name: str
    address: int | None = None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class LabelImmediate(Operand):
    """``$label`` — the *address* of a label as an immediate (AT&T)."""
    name: str
    address: int | None = None

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass
class Instruction:
    """One decoded instruction at a fixed text address."""
    mnemonic: str
    operands: tuple[Operand, ...] = ()
    address: int = 0
    source_line: int = 0
    label: str | None = None   # label defined at this address, if any

    def __str__(self) -> str:
        if not self.operands:
            return self.mnemonic
        return f"{self.mnemonic} " + ", ".join(str(o) for o in self.operands)


@dataclass
class Program:
    """An assembled program: instructions by address, labels, entry point,
    and the initialised-data image to load at ``data_base``."""
    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    entry: str = "main"
    data_image: bytes = b""
    data_base: int = 0
    #: decode-once handler table built lazily by the machine's run loop
    #: (address → compiled handler); shared by every Machine executing
    #: this program — see repro.isa.machine._compile_instruction
    predecoded: dict | None = field(default=None, init=False,
                                    repr=False, compare=False)
    #: addresses of instructions whose every memory access the
    #: optimizer's value-range analysis proved inside the stack
    #: (repro.analysis.opt stamps this; the JIT elides per-access
    #: bounds guards for exactly these instructions)
    stack_safe: frozenset | None = field(default=None, init=False,
                                         repr=False, compare=False)

    def __post_init__(self) -> None:
        self.by_address = {ins.address: ins for ins in self.instructions}

    def invalidate_predecode(self) -> None:
        """Drop the cached handler table (after patching instructions)."""
        self.predecoded = None

    @property
    def entry_address(self) -> int:
        if self.entry not in self.labels:
            raise AssemblerError(f"program has no {self.entry!r} label")
        return self.labels[self.entry]

    def at(self, address: int) -> Instruction | None:
        return self.by_address.get(address)

    def label_at(self, address: int) -> str | None:
        for name, addr in self.labels.items():
            if addr == address:
                return name
        return None

    def listing(self) -> str:
        """Address-annotated disassembly of the whole program."""
        lines = []
        for ins in self.instructions:
            if ins.label:
                lines.append(f"{ins.label}:")
            lines.append(f"  {ins.address:#010x}:  {ins}")
        return "\n".join(lines)
