"""Lab 5: the binary maze — decipher assembly with a debugger.

"Inspired by the 'binary bomb lab' ... students work through a series of
challenges ('floors' in a 'maze') for which they use GDB to decipher
assembly functions. Each floor requires a specific input pattern to
advance. Each successive floor increases in complexity." (§III-B)

:class:`Maze` generates a seeded program with one function per floor,
each guarding its exit with a different (and progressively harder) check
scheme. Students get the assembled program and a debugger; the generator
keeps the (hidden) solutions so graders — and our tests — can verify.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import MachineFault
from repro.isa.assembler import assemble
from repro.isa.debugger import Debugger
from repro.isa.machine import Machine

#: check schemes in order of increasing difficulty; floors cycle through
SCHEMES = ("constant", "sum", "xor", "shift", "loop")


@dataclass(frozen=True)
class Floor:
    """One maze floor: its function label, scheme, and hidden solution."""
    number: int
    label: str
    scheme: str
    solution: int


def _emit_floor(n: int, scheme: str, rng: random.Random) -> tuple[str, int]:
    """Assembly text for floor ``n`` plus its solution.

    Every floor function takes the guess at 8(%ebp) and returns 1 (pass)
    or 0 (fail) in %eax.
    """
    label = f"floor_{n}"
    prologue = [f"{label}:", "  pushl %ebp", "  movl %esp, %ebp",
                "  movl 8(%ebp), %eax"]
    epilogue_pass = [f"{label}_ok:", "  movl $1, %eax", "  leave", "  ret"]
    epilogue_fail = [f"{label}_no:", "  movl $0, %eax", "  leave", "  ret"]

    if scheme == "constant":
        key = rng.randrange(10, 100)
        body = [f"  cmpl ${key}, %eax", f"  je {label}_ok",
                f"  jmp {label}_no"]
        solution = key
    elif scheme == "sum":
        a, b = rng.randrange(100, 500), rng.randrange(100, 500)
        body = [f"  movl ${a}, %ebx", f"  addl ${b}, %ebx",
                "  cmpl %ebx, %eax", f"  je {label}_ok", f"  jmp {label}_no"]
        solution = a + b
    elif scheme == "xor":
        key = rng.randrange(1 << 8, 1 << 12)
        lock = rng.randrange(1 << 8, 1 << 12)
        body = [f"  xorl ${key}, %eax", f"  cmpl ${lock}, %eax",
                f"  je {label}_ok", f"  jmp {label}_no"]
        solution = key ^ lock
    elif scheme == "shift":
        key = rng.randrange(8, 64)
        shift = rng.choice((1, 2, 3))
        body = [f"  sarl ${shift}, %eax", f"  cmpl ${key}, %eax",
                f"  je {label}_ok", f"  jmp {label}_no"]
        solution = key << shift   # one valid answer among several
    elif scheme == "loop":
        # guess must equal sum(1..k), computed by an actual loop
        k = rng.randrange(5, 12)
        body = [
            "  movl $0, %ebx",          # acc = 0
            f"  movl ${k}, %ecx",       # i = k
            f"{label}_top:",
            "  cmpl $0, %ecx",
            f"  je {label}_chk",
            "  addl %ecx, %ebx",
            "  decl %ecx",
            f"  jmp {label}_top",
            f"{label}_chk:",
            "  cmpl %ebx, %eax",
            f"  je {label}_ok",
            f"  jmp {label}_no",
        ]
        solution = k * (k + 1) // 2
    else:  # pragma: no cover
        raise ValueError(f"unknown scheme {scheme!r}")

    lines = prologue + body + epilogue_pass + epilogue_fail
    return "\n".join(lines), solution


class Maze:
    """A seeded binary maze with ``floors`` challenges."""

    def __init__(self, *, floors: int = 5, seed: int = 31) -> None:
        if floors < 1:
            raise ValueError("a maze needs at least one floor")
        rng = random.Random(seed)
        self.floors: list[Floor] = []
        sources: list[str] = []
        for n in range(1, floors + 1):
            scheme = SCHEMES[(n - 1) % len(SCHEMES)]
            text, solution = _emit_floor(n, scheme, rng)
            sources.append(text)
            self.floors.append(Floor(n, f"floor_{n}", scheme, solution))
        # an entry stub so the program has a conventional `main`
        sources.append("main:\n  movl $0, %eax\n  ret")
        self.program = assemble("\n".join(sources))

    @property
    def num_floors(self) -> int:
        return len(self.floors)

    def fresh_machine(self) -> Machine:
        return Machine(self.program)

    def fresh_debugger(self) -> Debugger:
        return Debugger(self.fresh_machine())

    def enter(self, floor_number: int, guess: int) -> bool:
        """Try one guess on one floor; True means the floor opens."""
        floor = self._floor(floor_number)
        machine = self.fresh_machine()
        return machine.call(floor.label, guess) == 1

    def attempt(self, guesses: list[int]) -> int:
        """Run guesses floor by floor; returns how many floors were passed.

        Like the real lab, one wrong input stops the run ("explosion").
        """
        passed = 0
        for i, guess in enumerate(guesses[:self.num_floors], start=1):
            if not self.enter(i, guess):
                break
            passed += 1
        return passed

    def escaped(self, guesses: list[int]) -> bool:
        return self.attempt(guesses) == self.num_floors

    def solutions(self) -> list[int]:
        """The instructor's answer key (used by tests, not students)."""
        return [f.solution for f in self.floors]

    def _floor(self, number: int) -> Floor:
        if not 1 <= number <= self.num_floors:
            raise MachineFault(f"no floor {number}")
        return self.floors[number - 1]
