"""Two-pass assembler for the IA-32 subset (AT&T syntax).

Accepts the assembly dialect the course reads and writes: ``movl $5,
%eax``, ``addl %ebx, %eax``, ``movl 8(%ebp), %eax``, indexed forms like
``movl (%eax,%ecx,4), %edx``, labels, jumps, call/ret/leave, and
comments (``#`` to end of line). Pass one lays out instructions at
4-byte slots in the text region and collects labels; pass two resolves
label references.
"""

from __future__ import annotations

import re

from repro.clib.address_space import TEXT_BASE
from repro.errors import AssemblerError
from repro.isa.instructions import (
    ALL_MNEMONICS,
    ARITH1,
    ARITH2,
    CALLS,
    INSTRUCTION_SIZE,
    Immediate,
    Instruction,
    JUMPS,
    LabelImmediate,
    LabelRef,
    Memory,
    Operand,
    Program,
    Register,
)
from repro.isa.registers import GP32, SUB16, SUB8

_LABEL_RE = re.compile(r"^([A-Za-z_.][\w.$]*):$")
_MEM_RE = re.compile(
    r"^(-?(?:0x[0-9a-fA-F]+|\d+))?"          # displacement
    r"\(\s*(%\w+)?\s*(?:,\s*(%\w+)\s*(?:,\s*([1248]))?)?\s*\)$")

_VALID_REGS = set(GP32) | set(SUB16) | set(SUB8) | {"eip"}


def _parse_int(text: str) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"bad integer literal {text!r}") from None


def _parse_register(tok: str) -> str:
    if not tok.startswith("%"):
        raise AssemblerError(f"expected register, got {tok!r}")
    name = tok[1:]
    if name not in _VALID_REGS:
        raise AssemblerError(f"unknown register {tok!r}")
    return name


def parse_operand(tok: str) -> Operand:
    """Parse one AT&T operand: $imm, %reg, disp(base,index,scale), label."""
    tok = tok.strip()
    if not tok:
        raise AssemblerError("empty operand")
    if tok.startswith("$"):
        body = tok[1:]
        if re.fullmatch(r"[A-Za-z_.][\w.$]*", body):
            return LabelImmediate(body)        # $label: address-of
        return Immediate(_parse_int(body))
    if tok.startswith("%"):
        return Register(_parse_register(tok))
    m = _MEM_RE.match(tok)
    if m:
        disp = _parse_int(m.group(1)) if m.group(1) else 0
        base = _parse_register(m.group(2)) if m.group(2) else None
        index = _parse_register(m.group(3)) if m.group(3) else None
        scale = int(m.group(4)) if m.group(4) else 1
        return Memory(disp, base, index, scale)
    # bare integer = absolute memory address (rare, but legal AT&T)
    if re.fullmatch(r"-?(?:0x[0-9a-fA-F]+|\d+)", tok):
        return Memory(displacement=_parse_int(tok))
    # otherwise: a label reference
    if re.fullmatch(r"[A-Za-z_.][\w.$]*", tok):
        return LabelRef(tok)
    raise AssemblerError(f"cannot parse operand {tok!r}")


def _split_operands(text: str) -> list[str]:
    """Split on commas that are not inside parentheses."""
    parts: list[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [p.strip() for p in parts if p.strip()]


def _parse_data_directive(line: str, image: bytearray, lineno: int) -> None:
    """Append one .data directive's bytes to the image."""
    parts = line.split(None, 1)
    directive = parts[0]
    rest = parts[1] if len(parts) > 1 else ""
    if directive == ".long":
        for tok in _split_operands(rest):
            image.extend((_parse_int(tok) & 0xFFFF_FFFF)
                         .to_bytes(4, "little"))
    elif directive == ".byte":
        for tok in _split_operands(rest):
            image.append(_parse_int(tok) & 0xFF)
    elif directive == ".space":
        image.extend(b"\x00" * _parse_int(rest.strip()))
    elif directive in (".asciz", ".string"):
        text = rest.strip()
        if len(text) < 2 or text[0] != '"' or text[-1] != '"':
            raise AssemblerError(
                f"line {lineno}: {directive} needs a quoted string")
        body = (text[1:-1].replace("\\n", "\n").replace("\\t", "\t")
                .replace('\\"', '"').replace("\\\\", "\\"))
        image.extend(body.encode() + b"\x00")
    elif directive == ".ascii":
        text = rest.strip()
        if len(text) < 2 or text[0] != '"' or text[-1] != '"':
            raise AssemblerError(
                f"line {lineno}: .ascii needs a quoted string")
        image.extend(text[1:-1].encode())
    else:
        raise AssemblerError(
            f"line {lineno}: unknown data directive {directive!r}")


def assemble(source: str, *, entry: str = "main",
             base_address: int = TEXT_BASE,
             data_base: int | None = None) -> Program:
    """Assemble AT&T source text into a :class:`Program`.

    Supports ``.text``/``.data`` sections. In the data section, labels
    name positions in the initialised-data image and the directives
    ``.long``, ``.byte``, ``.space``, ``.asciz``/``.string``/``.ascii``
    emit bytes. Data labels are usable from code as ``label`` (a memory
    operand) or ``$label`` (the address as an immediate).
    """
    from repro.clib.address_space import DATA_BASE
    if data_base is None:
        data_base = DATA_BASE

    instructions: list[Instruction] = []
    labels: dict[str, int] = {}
    pending_labels: list[str] = []
    address = base_address
    data_image = bytearray()
    section = "text"

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line == ".data":
            section = "data"
            continue
        if line == ".text":
            section = "text"
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            name = label_match.group(1)
            if name in labels:
                raise AssemblerError(f"line {lineno}: duplicate label {name!r}")
            if section == "data":
                labels[name] = data_base + len(data_image)
            else:
                labels[name] = address
                pending_labels.append(name)
            continue
        if section == "data":
            if line.startswith("."):
                _parse_data_directive(line, data_image, lineno)
                continue
            raise AssemblerError(
                f"line {lineno}: instructions are not allowed in .data")
        if line.startswith("."):
            continue                           # other directives ignored

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        if mnemonic == "push":
            mnemonic = "pushl"
        elif mnemonic == "pop":
            mnemonic = "popl"
        if mnemonic not in ALL_MNEMONICS:
            raise AssemblerError(f"line {lineno}: unknown mnemonic "
                                 f"{mnemonic!r}")
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = tuple(parse_operand(t)
                         for t in _split_operands(operand_text))
        _check_arity(mnemonic, operands, lineno)

        ins = Instruction(mnemonic, operands, address=address,
                          source_line=lineno,
                          label=pending_labels[0] if pending_labels else None)
        pending_labels.clear()
        instructions.append(ins)
        address += INSTRUCTION_SIZE

    if pending_labels:
        # labels at the very end point one past the last instruction
        for name in pending_labels:
            labels[name] = address

    # pass two: resolve label references
    for ins in instructions:
        resolved = []
        for op in ins.operands:
            if isinstance(op, (LabelRef, LabelImmediate)):
                if op.name not in labels:
                    raise AssemblerError(
                        f"line {ins.source_line}: undefined label "
                        f"{op.name!r}")
                addr = labels[op.name]
                if isinstance(op, LabelImmediate):
                    resolved.append(Immediate(addr))
                elif ins.mnemonic in JUMPS | CALLS:
                    resolved.append(LabelRef(op.name, addr))
                else:
                    # data reference: `movl counter, %eax` loads FROM
                    # the label's address (AT&T absolute addressing)
                    resolved.append(Memory(displacement=addr))
            else:
                resolved.append(op)
        ins.operands = tuple(resolved)

    return Program(instructions, labels, entry=entry,
                   data_image=bytes(data_image), data_base=data_base)


def _check_arity(mnemonic: str, operands: tuple[Operand, ...],
                 lineno: int) -> None:
    def fail(msg: str) -> None:
        raise AssemblerError(f"line {lineno}: {mnemonic} {msg}")

    if mnemonic in ARITH2 and len(operands) != 2:
        fail("takes two operands")
    if mnemonic in ARITH1 and len(operands) != 1:
        fail("takes one operand")
    if mnemonic in JUMPS | CALLS:
        if len(operands) != 1:
            fail("takes one target")
        if not isinstance(operands[0], (LabelRef, Register)):
            fail("target must be a label (or register for indirect)")
    if mnemonic in ("ret", "leave", "nop", "cltd", "halt") and operands:
        fail("takes no operands")
    # destination of data-moving two-operand ops cannot be an immediate
    if mnemonic in ARITH2 and mnemonic not in ("cmpl", "testl"):
        if isinstance(operands[1], Immediate):
            fail("destination cannot be an immediate")
