"""Homework engines: simple and advanced assembly (areas 5 and 6).

Register-trace problems use the machine as the oracle; translation
problems compile a small C function with the tiny compiler and grade a
student's assembly *behaviourally* — differential testing on sampled
inputs, which is how an autograder for Lab 4 actually works.
"""

from __future__ import annotations

import random

from repro.errors import ReproError
from repro.homework.base import Problem
from repro.isa import Machine, assemble, compile_c


def generate_register_trace(*, seed: int = 0) -> Problem:
    """Trace a short arithmetic sequence; give the final %eax (area 5)."""
    rng = random.Random(seed)
    a = rng.randrange(1, 20)
    b = rng.randrange(1, 20)
    shift = rng.randrange(1, 3)
    lines = [
        "main:",
        f"  movl ${a}, %eax",
        f"  movl ${b}, %ebx",
        "  addl %ebx, %eax",
        f"  sall ${shift}, %eax",
        "  subl %ebx, %eax",
        "  ret",
    ]
    source = "\n".join(lines)
    final = Machine(assemble(source)).run()
    return Problem(
        kind="register-trace",
        prompt=("Trace this IA-32 and give the final value of %eax:\n"
                + source),
        answer=final,
        context={"source": source})


def generate_condition_trace(*, seed: int = 0) -> Problem:
    """Flags + conditional jump behaviour (area 5/6 boundary)."""
    rng = random.Random(seed)
    x = rng.randrange(-10, 10)
    y = rng.randrange(-10, 10)
    jump = rng.choice(["jg", "jl", "je", "jne"])
    source = "\n".join([
        "main:",
        f"  movl ${x}, %eax",
        f"  cmpl ${y}, %eax",
        f"  {jump} taken",
        "  movl $0, %eax",
        "  ret",
        "taken:",
        "  movl $1, %eax",
        "  ret",
    ])
    result = Machine(assemble(source)).run()
    return Problem(
        kind="condition-trace",
        prompt=(f"With %eax = {x} compared against {y}, is the {jump} "
                "taken? Answer 1 (taken) or 0:\n" + source),
        answer=result,
        context={"x": x, "y": y, "jump": jump})


_TRANSLATION_TEMPLATES = [
    ("absdiff",
     "int absdiff(int a, int b) {{ if (a > b) {{ return a - b; }} "
     "return b - a; }}",
     2),
    ("sumto",
     "int sumto(int n) {{ int t = 0; int i = 1; "
     "while (i <= n) {{ t = t + i; i = i + 1; }} return t; }}",
     1),
    ("clampk",
     "int clampk(int x) {{ if (x > {k}) {{ return {k}; }} "
     "if (x < 0) {{ return 0; }} return x; }}",
     1),
]


def generate_translation(*, seed: int = 0) -> Problem:
    """Translate-this-C-to-assembly (area 6), graded behaviourally.

    The answer stored is the reference assembly produced by the tiny
    compiler; :func:`check_translation` grades any student assembly by
    differential testing.
    """
    rng = random.Random(seed)
    name, template, arity = rng.choice(_TRANSLATION_TEMPLATES)
    k = rng.randrange(5, 50)
    c_source = template.format(k=k)
    reference_asm = compile_c(c_source)
    inputs = [tuple(rng.randrange(-40, 60) for _ in range(arity))
              for _ in range(12)]
    return Problem(
        kind="translation",
        prompt=(f"Translate to IA-32 (function {name!r}):\n{c_source}"),
        answer=reference_asm,
        context={"c_source": c_source, "function": name,
                 "inputs": inputs})


def check_translation(problem: Problem, student_asm: str) -> bool:
    """Grade by behaviour: student assembly must match the C reference
    on every sampled input."""
    if problem.kind != "translation":
        raise ReproError("not a translation problem")
    function = problem.context["function"]
    inputs = problem.context["inputs"]
    reference = Machine(assemble(problem.answer, entry=function))
    try:
        student = Machine(assemble(student_asm, entry=function))
    except Exception:
        return False
    for args in inputs:
        try:
            got = student.call(function, *args)
        except Exception:
            return False
        expected = reference.call(function, *args)
        if got != expected:
            return False
    return True
