"""Homework engines: circuits (area 3).

Both directions of the homework: trace a given circuit to its truth
table, and *create* a circuit from a given truth table. The synthesis
direction is implemented for real — a sum-of-products builder over the
gate library — so the checker can simulate the synthesized circuit and
compare tables.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.circuits import And, Circuit, Nand, Nor, Not, Or, Wire, Xor
from repro.circuits.combinational import SubCircuit
from repro.errors import CircuitError
from repro.homework.base import Problem

_GATES = {"and": And, "or": Or, "xor": Xor, "nand": Nand, "nor": Nor}


class TwoLevelCircuit(SubCircuit):
    """A random two-level, three-input circuit for tracing problems.

    out = g2(g1(a, b), c) with optional inversion of c — small enough to
    trace by hand, rich enough to be non-obvious.
    """

    def __init__(self, g1_name: str, g2_name: str, invert_c: bool) -> None:
        super().__init__()
        self.g1_name, self.g2_name, self.invert_c = g1_name, g2_name, invert_c
        self.a, self.b, self.c = Wire("a"), Wire("b"), Wire("c")
        self.out = Wire("out")
        mid = Wire("mid")
        self.add(_GATES[g1_name]([self.a, self.b], mid))
        c_in = self.c
        if invert_c:
            nc = Wire("nc")
            self.add(Not(self.c, nc))
            c_in = nc
        self.add(_GATES[g2_name]([mid, c_in], self.out))

    def describe(self) -> str:
        c_term = "NOT c" if self.invert_c else "c"
        return (f"out = {self.g2_name.upper()}("
                f"{self.g1_name.upper()}(a, b), {c_term})")

    def truth_table(self) -> list[int]:
        """Output for inputs abc = 000..111 (a is the MSB)."""
        rows = []
        circuit = Circuit()
        circuit.add(self)
        for combo in range(8):
            self.a.set((combo >> 2) & 1)
            self.b.set((combo >> 1) & 1)
            self.c.set(combo & 1)
            circuit.settle()
            rows.append(self.out.value)
        return rows


def generate_truth_table(*, seed: int = 0) -> Problem:
    """Trace a two-level circuit to its 8-row truth table."""
    rng = random.Random(seed)
    g1 = rng.choice(list(_GATES))
    g2 = rng.choice(list(_GATES))
    invert_c = rng.random() < 0.5
    circuit = TwoLevelCircuit(g1, g2, invert_c)
    return Problem(
        kind="truth-table",
        prompt=(f"Trace the circuit {circuit.describe()} and give its "
                "truth table output column for abc = 000..111."),
        answer=circuit.truth_table(),
        context={"g1": g1, "g2": g2, "invert_c": invert_c})


class SumOfProducts(SubCircuit):
    """Synthesize any n-input truth table as AND-of-literals into OR.

    The 'create a circuit given a logic table' half of the homework,
    done the way the course teaches (minterms).
    """

    def __init__(self, outputs: Sequence[int], inputs: list[Wire],
                 out: Wire) -> None:
        super().__init__()
        n = len(inputs)
        if len(outputs) != (1 << n):
            raise CircuitError(
                f"{n}-input table needs {1 << n} rows, got {len(outputs)}")
        if any(v not in (0, 1) for v in outputs):
            raise CircuitError("truth table entries must be bits")
        inverted = []
        for i, w in enumerate(inputs):
            nw = Wire(f"n{i}")
            self.add(Not(w, nw))
            inverted.append(nw)
        minterms = []
        for row, value in enumerate(outputs):
            if not value:
                continue
            literals = []
            for i in range(n):
                bit = (row >> (n - 1 - i)) & 1
                literals.append(inputs[i] if bit else inverted[i])
            if len(literals) == 1:
                term = literals[0]
            else:
                term = Wire(f"m{row}")
                self.add(And(literals, term))
            minterms.append(term)
        from repro.circuits.combinational import Constant
        if not minterms:
            self.add(Constant(out, 0))
        elif len(minterms) == 1:
            from repro.circuits.gates import Buffer
            self.add(Buffer(minterms[0], out))
        else:
            self.add(Or(minterms, out))


def synthesize(outputs: Sequence[int], n_inputs: int
               ) -> tuple[SumOfProducts, list[Wire], Wire]:
    """Build a circuit computing the given truth table."""
    inputs = [Wire(f"in{i}") for i in range(n_inputs)]
    out = Wire("out")
    return SumOfProducts(outputs, inputs, out), inputs, out


def simulate_table(sop: SumOfProducts, inputs: list[Wire],
                   out: Wire) -> list[int]:
    circuit = Circuit()
    circuit.add(sop)
    n = len(inputs)
    rows = []
    for combo in range(1 << n):
        for i, w in enumerate(inputs):
            w.set((combo >> (n - 1 - i)) & 1)
        circuit.settle()
        rows.append(out.value)
    return rows


def generate_synthesis(*, seed: int = 0, n_inputs: int = 3) -> Problem:
    """Create-a-circuit problem: here's a table, build SOP for it.

    The answer is the minterm list; the checker can also verify a
    student's arbitrary circuit by simulating it against the table.
    """
    rng = random.Random(seed)
    outputs = [rng.randrange(2) for _ in range(1 << n_inputs)]
    minterms = [i for i, v in enumerate(outputs) if v]
    return Problem(
        kind="synthesis",
        prompt=(f"Design a {n_inputs}-input circuit with output column "
                f"{outputs} (rows 0..{(1 << n_inputs) - 1}). List its "
                "minterm row numbers."),
        answer=minterms,
        context={"outputs": outputs, "n_inputs": n_inputs})
