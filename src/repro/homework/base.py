"""Shared problem/checker machinery for the homework engines.

Every generator returns a :class:`Problem`: a rendered prompt, a hidden
answer, and a checker id. ``check(problem, answer)`` grades an attempt.
Generators are seeded and deterministic so a course staff (or a test)
can regenerate any problem set exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ReproError


@dataclass
class Problem:
    """One generated homework problem."""
    kind: str
    prompt: str
    answer: Any
    #: extra data checkers or renderers may need
    context: dict = field(default_factory=dict)

    def reveal(self) -> Any:
        """The solution key (what the instructor's copy shows)."""
        return self.answer


def check(problem: Problem, attempt: Any) -> bool:
    """Grade an attempt against the hidden answer.

    Comparison is type-aware: sets compare unordered, floats with
    tolerance, everything else by equality.
    """
    answer = problem.answer
    if isinstance(answer, float) and isinstance(attempt, (int, float)):
        return abs(answer - float(attempt)) < 1e-9
    if isinstance(answer, (set, frozenset)):
        try:
            return set(attempt) == set(answer)
        except TypeError:
            return False
    return attempt == answer


def grade(problems: list[Problem], attempts: list[Any]) -> float:
    """Fraction correct across a problem set."""
    if len(problems) != len(attempts):
        raise ReproError("attempts must match problems one-to-one")
    if not problems:
        return 0.0
    correct = sum(1 for p, a in zip(problems, attempts) if check(p, a))
    return correct / len(problems)


def problem_set(generator: Callable[..., Problem], count: int, *,
                seed: int = 0, **kwargs) -> list[Problem]:
    """Generate ``count`` problems with derived per-problem seeds."""
    return [generator(seed=seed * 1000 + i, **kwargs)
            for i in range(count)]
