"""Homework engines: binary/arithmetic, C expressions, pointer traces.

Covers homework areas 1 (C programming), 2 (binary and arithmetic) and
4 (C pointers) of §III-B, using the binary and clib substrates as the
answer oracles.
"""

from __future__ import annotations

import random

from repro.binary import (
    BitVector,
    INT,
    UINT,
    add,
    binary_op,
    binary_to_hex,
    decimal_to_binary,
    sub,
)
from repro.clib import AddressSpace, Heap, Pointer
from repro.homework.base import Problem


def generate_conversion(*, seed: int = 0) -> Problem:
    """Convert a decimal value to binary and hex (homework 2)."""
    rng = random.Random(seed)
    value = rng.randrange(16, 1024)
    binary = decimal_to_binary(value)
    return Problem(
        kind="conversion",
        prompt=f"Convert {value} to binary and hexadecimal.",
        answer={"binary": binary, "hex": binary_to_hex(binary)},
        context={"value": value})


def generate_arithmetic(*, seed: int = 0, width: int = 8) -> Problem:
    """Fixed-width add/sub with flags (homework 2's arithmetic half)."""
    rng = random.Random(seed)
    a = rng.randrange(0, 1 << width)
    b = rng.randrange(0, 1 << width)
    op = rng.choice(["add", "sub"])
    va, vb = BitVector(a, width), BitVector(b, width)
    result = add(va, vb) if op == "add" else sub(va, vb)
    sign = "+" if op == "add" else "-"
    return Problem(
        kind="arithmetic",
        prompt=(f"Compute {a:#0{width // 4 + 2}x} {sign} "
                f"{b:#0{width // 4 + 2}x} as {width}-bit values. Give the "
                "result (unsigned), and the carry and overflow flags."),
        answer={"result": result.unsigned,
                "carry": result.flags.carry,
                "overflow": result.flags.overflow},
        context={"a": a, "b": b, "op": op, "width": width})


def generate_c_expression(*, seed: int = 0) -> Problem:
    """Evaluate a C expression with mixed signedness (homework 1)."""
    rng = random.Random(seed)
    x = rng.randrange(-50, 50)
    y = rng.randrange(1, 50)
    op = rng.choice(["+", "-", "*", "/", "%", "<"])
    mixed = rng.random() < 0.5
    tx = INT
    ty = UINT if mixed else INT
    value, rtype = binary_op(op, x, tx, y, ty)
    y_src = f"{y}U" if mixed else str(y)
    return Problem(
        kind="c-expression",
        prompt=(f"int x = {x}; what is the value and type of "
                f"(x {op} {y_src}) on a 32-bit machine?"),
        answer={"value": value, "type": rtype.name},
        context={"x": x, "y": y, "op": op, "unsigned_rhs": mixed})


def generate_struct_layout(*, seed: int = 0) -> Problem:
    """sizeof/offsetof for a randomly ordered struct (homework 1/4)."""
    import random as _random
    from repro.clib.structs import StructLayout
    rng = _random.Random(seed)
    pool = [("a", "char"), ("b", "int"), ("c", "short"),
            ("d", "char"), ("e", "int")]
    fields = rng.sample(pool, k=rng.choice([3, 4]))
    layout = StructLayout("s", fields)
    decl = " ".join(f"{t} {n};" for n, t in fields)
    target = rng.choice(fields)[0]
    return Problem(
        kind="struct-layout",
        prompt=(f"struct s {{ {decl} }}; On a 32-bit machine, what is "
                f"sizeof(struct s) and the offset of field {target!r}?"),
        answer={"sizeof": layout.size,
                "offset": layout.offset_of(target)},
        context={"fields": fields, "target": target})


def generate_array2d_address(*, seed: int = 0) -> Problem:
    """&a[i][j] arithmetic for a row-major 2-D array (homework 4)."""
    import random as _random
    from repro.clib.structs import array2d_address
    rng = _random.Random(seed)
    rows, cols = rng.randrange(3, 8), rng.randrange(3, 8)
    i, j = rng.randrange(rows), rng.randrange(cols)
    base = 0x1000 + rng.randrange(16) * 0x100
    answer = array2d_address(base, i, j, cols=cols)
    return Problem(
        kind="array2d-address",
        prompt=(f"int a[{rows}][{cols}]; a starts at {base:#x}. "
                f"What is the address of a[{i}][{j}]?"),
        answer=answer,
        context={"base": base, "rows": rows, "cols": cols,
                 "i": i, "j": j})


def generate_pointer_trace(*, seed: int = 0) -> Problem:
    """Pointer arithmetic and dereference trace (homework 4)."""
    rng = random.Random(seed)
    values = [rng.randrange(-20, 20) for _ in range(5)]
    i = rng.randrange(0, 4)
    space = AddressSpace.standard()
    heap = Heap(space)
    base = heap.malloc(4 * len(values))
    p = Pointer(space, INT, base)
    for k, v in enumerate(values):
        p.set_index(k, v)
    # the question: int *q = p + i; what is *q and q - p after q++?
    q = p + i
    deref_before = q.load()
    q = q + 1
    answer = {"deref": deref_before, "offset_after": q - p}
    listing = ", ".join(str(v) for v in values)
    return Problem(
        kind="pointer-trace",
        prompt=(f"int a[5] = {{{listing}}}; int *p = a; "
                f"int *q = p + {i}; print *q, then q++; what is *q's old "
                "value and q - p now?"),
        answer=answer,
        context={"values": values, "i": i})
