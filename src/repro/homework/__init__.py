"""Mechanical homework engines (CS 31 §III-B, *Written Homeworks*).

One generator+checker module per written-homework topic area, each
using the corresponding simulator as its answer oracle: binary and C
expressions, circuits (trace and synthesis), assembly (trace and
behaviourally-graded translation), caching, processes (possible
outputs), virtual memory, and threads.
"""

from repro.homework.base import Problem, check, grade, problem_set
from repro.homework import (
    assembly_hw,
    binary_hw,
    cache_hw,
    circuits_hw,
    processes_hw,
    threads_hw,
    vm_hw,
)

__all__ = [
    "Problem", "check", "grade", "problem_set",
    "binary_hw", "circuits_hw", "assembly_hw", "cache_hw",
    "processes_hw", "vm_hw", "threads_hw",
]
