"""Homework engines: threads (area 12) — counter races, Amdahl, speedup.

The threads homework starts from the in-class producer/consumer
exercise and the shared-counter demos; these generators use the
simulated machine as the oracle so lost updates are real, not asserted.
"""

from __future__ import annotations

import random

from repro.core import (
    Mutex,
    SharedCounter,
    SimMachine,
    SyncCosts,
    amdahl_speedup,
    run_producer_consumer,
)
from repro.homework.base import Problem

_FREE = SyncCosts(lock=0, unlock=0, barrier=0, cond=0, sem=0, spawn=0)


def generate_counter_outcome(*, seed: int = 0) -> Problem:
    """Shared counter with/without a mutex: what is the final value?

    Without the mutex the answer is what the deterministic machine
    actually produces (strictly less than the nominal total); with the
    mutex it is exactly threads × increments.
    """
    rng = random.Random(seed)
    threads = rng.choice([2, 4])
    increments = rng.choice([10, 25])
    locked = rng.random() < 0.5
    counter = SharedCounter()
    machine = SimMachine(threads, costs=_FREE)
    if locked:
        mutex = Mutex()
        for _ in range(threads):
            machine.spawn(counter.safe_incrementer(mutex, increments))
    else:
        for _ in range(threads):
            machine.spawn(counter.unsafe_incrementer(increments))
    machine.run()
    nominal = threads * increments
    lock_text = "inside a mutex-protected critical section" if locked \
        else "with NO synchronization"
    return Problem(
        kind="counter-outcome",
        prompt=(f"{threads} threads each increment a shared counter "
                f"{increments} times {lock_text} on a {threads}-core "
                "machine. Is the final value equal to "
                f"{nominal}? Answer the final value this schedule "
                "produces."),
        answer=counter.value,
        context={"threads": threads, "increments": increments,
                 "locked": locked, "nominal": nominal})


def generate_amdahl(*, seed: int = 0) -> Problem:
    """Compute the Amdahl bound (the course introduces the concept)."""
    rng = random.Random(seed)
    parallel_pct = rng.choice([50, 75, 90, 95])
    cores = rng.choice([2, 4, 8, 16])
    answer = amdahl_speedup(parallel_pct / 100, cores)
    return Problem(
        kind="amdahl",
        prompt=(f"A program is {parallel_pct}% parallelizable. What "
                f"speedup does Amdahl's law allow on {cores} cores? "
                "(3 decimal places)"),
        answer=round(answer, 3),
        context={"parallel_pct": parallel_pct, "cores": cores})


def generate_producer_consumer(*, seed: int = 0) -> Problem:
    """Bounded-buffer comprehension: can occupancy exceed capacity?"""
    rng = random.Random(seed)
    capacity = rng.choice([1, 2, 4])
    result = run_producer_consumer(
        producers=2, consumers=2, items_per_producer=8,
        capacity=capacity)
    return Problem(
        kind="producer-consumer",
        prompt=(f"Two producers and two consumers share a bounded buffer "
                f"of capacity {capacity}; each producer makes 8 items. "
                "What is the maximum number of items ever in the buffer, "
                "and how many items are consumed in total?"),
        answer={"max_occupancy": result.max_occupancy,
                "consumed": result.items},
        context={"capacity": capacity})


def generate_sync_placement(*, seed: int = 0) -> Problem:
    """Where does the synchronization go? (the in-class exercise)

    Presents producer/consumer pseudocode lines; the answer lists the
    line numbers that must be inside the critical section.
    """
    lines = [
        "1: item = make_item()          # produce",
        "2: while buffer is full: wait  # guard",
        "3: buffer.append(item)         # shared write",
        "4: signal not_empty            # wake consumers",
        "5: log_locally(item)           # private state",
    ]
    answer = {2, 3, 4}
    return Problem(
        kind="sync-placement",
        prompt=("Which numbered lines must execute while holding the "
                "buffer mutex?\n" + "\n".join(lines)),
        answer=answer,
        context={})
