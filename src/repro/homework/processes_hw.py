"""Homework engines: processes (area 9).

Generates fork/wait/exit programs and uses the kernel's exhaustive
schedule explorer as the answer key for "identify possible outputs".
"""

from __future__ import annotations

import random

from repro.homework.base import Problem
from repro.ossim import Exit, Fork, Print, Wait, enumerate_outputs


def _render_c(ops, indent=0) -> list[str]:
    """Render the op program as the C the homework would print."""
    pad = "    " * indent
    lines: list[str] = []
    for op in ops:
        if isinstance(op, Print):
            lines.append(f'{pad}printf("{op.text}");')
        elif isinstance(op, Fork):
            lines.append(f"{pad}if (fork() == 0) {{")
            lines.extend(_render_c(op.child, indent + 1))
            if op.parent:
                lines.append(f"{pad}}} else {{")
                lines.extend(_render_c(op.parent, indent + 1))
            lines.append(f"{pad}}}")
        elif isinstance(op, Wait):
            lines.append(f"{pad}wait(NULL);")
        elif isinstance(op, Exit):
            lines.append(f"{pad}exit({op.status});")
    return lines


def generate_fork_outputs(*, seed: int = 0) -> Problem:
    """A fork program; the answer is its set of possible outputs."""
    rng = random.Random(seed)
    letters = iter("ABCDEF")
    shape = rng.choice(["plain", "child-exit", "wait", "double"])
    if shape == "plain":
        ops = [Print(next(letters)), Fork(), Print(next(letters)),
               Exit(0)]
    elif shape == "child-exit":
        ops = [Print(next(letters)),
               Fork(child=[Print(next(letters)), Exit(0)]),
               Print(next(letters)), Exit(0)]
    elif shape == "wait":
        ops = [Fork(child=[Print(next(letters)), Exit(0)]),
               Wait(), Print(next(letters)), Exit(0)]
    else:  # double fork
        ops = [Fork(child=[Print(next(letters)), Exit(0)]),
               Fork(child=[Print(next(letters)), Exit(0)]),
               Print(next(letters)), Exit(0)]
    outputs = enumerate_outputs(ops)
    c_text = "\n".join(_render_c(ops))
    return Problem(
        kind="fork-outputs",
        prompt=("What outputs can this program print (any "
                "scheduling)?\n" + c_text),
        answer=outputs,
        context={"ops": ops, "shape": shape})


def generate_fork_count(*, seed: int = 0) -> Problem:
    """The other classic: how many processes does this create?"""
    rng = random.Random(seed)
    n_forks = rng.randrange(1, 4)
    ops: list = [Fork() for _ in range(n_forks)]
    ops.append(Exit(0))
    c_text = "\n".join("fork();" for _ in range(n_forks))
    # n sequential forks: 2**n processes total (including the original)
    return Problem(
        kind="fork-count",
        prompt=(f"How many processes exist in total after this "
                f"code runs?\n{c_text}"),
        answer=2 ** n_forks,
        context={"n_forks": n_forks})
