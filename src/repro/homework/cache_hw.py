"""Homework engines: direct-mapped and set-associative caching (7, 8).

Generates the classic worksheet: a small cache geometry, a sequence of
loads/stores, and the answer trace (hit/miss per access, with LRU
replacement where applicable), all produced by the cache simulator.
"""

from __future__ import annotations

import random

from repro.homework.base import Problem
from repro.memory import Cache, CacheConfig


def generate_cache_trace(*, seed: int = 0, associativity: int = 1,
                         accesses: int = 8) -> Problem:
    """A cache-trace worksheet; associativity 1 = homework 7, 2 = 8."""
    rng = random.Random(seed)
    config = CacheConfig(num_lines=4, block_size=4,
                         associativity=associativity)
    # draw addresses that collide interestingly: a few blocks per set
    pool = [rng.randrange(0, 8) * 4 + rng.randrange(0, 4)
            for _ in range(accesses)]
    kinds = [rng.choice(["load", "store"]) for _ in range(accesses)]
    cache = Cache(config)
    results = [cache.access(a, k) for a, k in zip(pool, kinds)]
    hit_miss = ["hit" if r.hit else "miss" for r in results]
    lines = [f"{k} {a:#06x}" for a, k in zip(pool, kinds)]
    kind_name = ("direct-mapped" if associativity == 1
                 else f"{associativity}-way set-associative (LRU)")
    return Problem(
        kind="cache-trace",
        prompt=(f"A {kind_name} cache has {config.num_lines} lines of "
                f"{config.block_size} bytes. For each access below, "
                "write hit or miss:\n" + "\n".join(lines)),
        answer=hit_miss,
        context={"config": config, "addresses": pool, "kinds": kinds})


def generate_address_division(*, seed: int = 0) -> Problem:
    """Split an address into tag/index/offset for a given geometry."""
    rng = random.Random(seed)
    block = rng.choice([4, 8, 16])
    sets = rng.choice([4, 8, 16])
    config = CacheConfig(num_lines=sets, block_size=block,
                         associativity=1, address_bits=16)
    address = rng.randrange(0, 1 << 16)
    parts = config.layout.divide(address)
    return Problem(
        kind="address-division",
        prompt=(f"A direct-mapped cache has {sets} lines of {block} "
                f"bytes; addresses are 16 bits. Divide {address:#06x} "
                "into tag, index, and offset (as integers)."),
        answer={"tag": parts.tag, "index": parts.index,
                "offset": parts.offset},
        context={"address": address, "block": block, "sets": sets})


def worksheet_solution(problem: Problem) -> str:
    """Render the instructor's answer sheet for a cache-trace problem."""
    if problem.kind != "cache-trace":
        return str(problem.answer)
    rows = []
    for (a, k), verdict in zip(
            zip(problem.context["addresses"], problem.context["kinds"]),
            problem.answer):
        rows.append(f"{k:>5} {a:#06x} -> {verdict}")
    return "\n".join(rows)
