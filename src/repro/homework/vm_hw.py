"""Homework engines: virtual memory 1 and 2 (areas 10, 11).

VM-1: one process's accesses through a page table. VM-2: two processes
with context switches and LRU replacement. The MMU is the oracle.
"""

from __future__ import annotations

import random

from repro.homework.base import Problem
from repro.vm import MMU, PhysicalMemory

PAGE = 256


def _make_mmu(frames: int) -> MMU:
    return MMU(PhysicalMemory(frames, PAGE), page_size=PAGE,
               tlb_entries=4)


def generate_vm_trace(*, seed: int = 0, processes: int = 1,
                      accesses: int = 8) -> Problem:
    """processes=1 → VM-1; processes=2 → VM-2 (context switching)."""
    rng = random.Random(seed)
    frames = 2 if processes == 1 else 3
    mmu = _make_mmu(frames)
    for pid in range(1, processes + 1):
        mmu.create_process(pid, 4)
    trace = []
    for _ in range(accesses):
        pid = rng.randrange(1, processes + 1)
        page = rng.randrange(0, 4)
        offset = rng.randrange(0, PAGE)
        write = rng.random() < 0.4
        trace.append((pid, page * PAGE + offset, write))
    results = mmu.run_trace(trace)
    answer = {
        "faults": [r.page_fault for r in results],
        "fault_count": mmu.stats.page_faults,
        "final_resident": {
            pid: tuple(mmu.page_tables[pid].resident_pages())
            for pid in range(1, processes + 1)},
    }
    lines = [f"P{pid} {'store' if w else 'load'} {va:#06x} (page {va // PAGE})"
             for pid, va, w in trace]
    kind = "VM-1" if processes == 1 else "VM-2"
    return Problem(
        kind="vm-trace",
        prompt=(f"[{kind}] RAM has {frames} frames of {PAGE} bytes; pages "
                f"are {PAGE} bytes; LRU replacement. For each access, "
                "mark page fault or not, and give each process's final "
                "resident pages:\n" + "\n".join(lines)),
        answer=answer,
        context={"trace": trace, "frames": frames,
                 "processes": processes})


def generate_translation_problem(*, seed: int = 0) -> Problem:
    """Translate one virtual address given a page table snapshot."""
    rng = random.Random(seed)
    mmu = _make_mmu(4)
    mmu.create_process(1, 4)
    # touch a few pages to build a mapping
    pages = rng.sample(range(4), k=3)
    for p in pages:
        mmu.access(p * PAGE)
    target_page = rng.choice(pages)
    offset = rng.randrange(0, PAGE)
    vaddr = target_page * PAGE + offset
    frame = mmu.page_tables[1].entry(target_page).frame
    return Problem(
        kind="vm-translate",
        prompt=(f"Given this page table, translate virtual address "
                f"{vaddr:#06x} (page size {PAGE}):\n"
                + mmu.page_tables[1].render()),
        answer=(frame << 8) | offset,
        context={"vaddr": vaddr, "frame": frame})
