"""Lab 8: the command parser library.

"The parser must tokenize a string and detect the presence of an
ampersand character (indicating that the command should be run in the
background)" (§III-B). This is that library: tokenization with quoting,
background detection, and the small validations a shell needs before
fork/exec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ShellError


@dataclass(frozen=True)
class ParsedCommand:
    """One parsed command line."""
    argv: tuple[str, ...]
    background: bool = False

    @property
    def program(self) -> str:
        return self.argv[0]

    @property
    def empty(self) -> bool:
        return not self.argv

    def __str__(self) -> str:
        tail = " &" if self.background else ""
        return " ".join(self.argv) + tail


def tokenize(line: str) -> list[str]:
    """Whitespace tokenization with single/double-quote support."""
    tokens: list[str] = []
    current: list[str] = []
    quote: str | None = None
    for ch in line:
        if quote:
            if ch == quote:
                quote = None
            else:
                current.append(ch)
        elif ch in "'\"":
            quote = ch
        elif ch.isspace():
            if current:
                tokens.append("".join(current))
                current = []
        else:
            current.append(ch)
    if quote:
        raise ShellError(f"unbalanced {quote} quote")
    if current:
        tokens.append("".join(current))
    return tokens


def parse_command(line: str) -> ParsedCommand:
    """Tokenize and strip a trailing '&' into the background flag."""
    tokens = tokenize(line)
    background = False
    if tokens and tokens[-1] == "&":
        background = True
        tokens = tokens[:-1]
    elif tokens and tokens[-1].endswith("&"):
        background = True
        tokens[-1] = tokens[-1][:-1]
        if not tokens[-1]:
            tokens = tokens[:-1]
    if "&" in tokens:
        raise ShellError("'&' is only valid at the end of a command")
    return ParsedCommand(tuple(tokens), background)


@dataclass
class History:
    """The simplified history mechanism Lab 9 requires.

    Stores the last ``capacity`` commands; ``!n`` retrieves entry n and
    ``!!`` the most recent.
    """
    capacity: int = 10
    entries: list[tuple[int, str]] = field(default_factory=list)
    _counter: int = 0

    def add(self, line: str) -> int:
        self._counter += 1
        self.entries.append((self._counter, line))
        if len(self.entries) > self.capacity:
            self.entries.pop(0)
        return self._counter

    def expand(self, line: str) -> str:
        """Resolve !n / !! references; other lines pass through."""
        stripped = line.strip()
        if stripped == "!!":
            if not self.entries:
                raise ShellError("history is empty")
            return self.entries[-1][1]
        if stripped.startswith("!") and stripped[1:].isdigit():
            wanted = int(stripped[1:])
            for number, text in self.entries:
                if number == wanted:
                    return text
            raise ShellError(f"!{wanted}: event not found")
        return line

    def render(self) -> str:
        return "\n".join(f"{n}  {text}" for n, text in self.entries)
