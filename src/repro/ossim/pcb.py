"""Process control blocks and process states.

"We then introduce the process abstraction ... multiprogramming,
timesharing, and process context switching" (§III-A, *Operating
Systems*). A :class:`PCB` holds what the course's diagrams show: pid,
parent, state, children, exit status, pending signals, and the process's
remaining program (its continuation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ProcessState(enum.Enum):
    """The five-state model the course draws."""
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    ZOMBIE = "zombie"        # exited, not yet reaped by parent
    TERMINATED = "terminated"  # reaped; slot reusable


class Signal(enum.IntEnum):
    """The signals CS 31 discusses (SIGCHLD most of all)."""
    SIGINT = 2
    SIGKILL = 9
    SIGUSR1 = 10
    SIGALRM = 14
    SIGCHLD = 17
    SIGCONT = 18
    SIGSTOP = 19


@dataclass
class PCB:
    """One process's kernel bookkeeping."""
    pid: int
    ppid: int
    name: str
    #: the continuation: ops still to execute, front first
    program: list = field(default_factory=list)
    state: ProcessState = ProcessState.READY
    exit_status: int | None = None
    children: list[int] = field(default_factory=list)
    #: pids of exited children not yet reaped
    zombie_children: list[int] = field(default_factory=list)
    #: signals delivered but not yet handled
    pending_signals: list[Signal] = field(default_factory=list)
    #: signal → handler ops (None = default action)
    handlers: dict[Signal, list] = field(default_factory=dict)
    #: True while blocked in wait()
    waiting: bool = False
    #: pid being waited for (None = any child)
    wait_target: int | None = None
    #: per-process output (what this process printf'd)
    output: list[str] = field(default_factory=list)
    #: CPU units consumed (for scheduler accounting)
    cpu_time: int = 0
    #: why the kernel killed this process (compiled programs only)
    fault: str | None = None

    @property
    def alive(self) -> bool:
        return self.state not in (ProcessState.ZOMBIE,
                                  ProcessState.TERMINATED)

    def __str__(self) -> str:
        return f"[{self.pid}] {self.name} ({self.state.value})"
