"""The program mini-language executed by the simulated kernel.

The processes homework asks students to "trace through C code examples
with fork, exit, wait, draw process hierarchy, identify possible outputs
from concurrent processes" (§III-B). Programs here are lists of
structured ops that mirror those C idioms directly::

    # printf("A"); if (fork() == 0) { printf("c"); exit(0); }
    # else { wait(NULL); } printf("B");
    prog = [Print("A"),
            Fork(child=[Print("c"), Exit(0)], parent=[Wait()]),
            Print("B")]

``Fork(child=…, parent=…)`` is the ``if (pid == 0) … else …`` pattern:
both branches fall through to the remaining ops unless they ``Exit``.
Ops are immutable, so continuations can be shared and the schedule
explorer can deep-copy kernels cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.ossim.pcb import Signal


class Op:
    """Base class for program operations (all are frozen dataclasses)."""


@dataclass(frozen=True)
class Print(Op):
    """printf — appends to the process's and the kernel's output."""
    text: str


@dataclass(frozen=True)
class Compute(Op):
    """CPU burn for ``units`` scheduler ticks (a loop doing work)."""
    units: int = 1


@dataclass(frozen=True)
class Fork(Op):
    """fork() with the C if/else idiom built in.

    The child runs ``child`` then falls through to the enclosing
    program's remaining ops; the parent runs ``parent`` then falls
    through likewise.
    """
    child: tuple[Op, ...] = ()
    parent: tuple[Op, ...] = ()

    def __init__(self, child: Sequence[Op] = (),
                 parent: Sequence[Op] = ()) -> None:
        object.__setattr__(self, "child", tuple(child))
        object.__setattr__(self, "parent", tuple(parent))


@dataclass(frozen=True)
class Exit(Op):
    """exit(status) — becomes a zombie until the parent reaps it."""
    status: int = 0


@dataclass(frozen=True)
class Wait(Op):
    """wait(NULL) — block until any child exits; reaps it."""


@dataclass(frozen=True)
class WaitPid(Op):
    """waitpid for the n-th forked child (0-based birth order)."""
    child_index: int = 0


@dataclass(frozen=True)
class Exec(Op):
    """execvp — replace the continuation with a registered program.

    ``argv`` is passed to argv-aware programs (factories); plain images
    ignore it, as a real program ignores arguments it never reads.
    """
    program_name: str
    argv: tuple[str, ...] = ()

    def __init__(self, program_name: str,
                 argv: Sequence[str] = ()) -> None:
        object.__setattr__(self, "program_name", program_name)
        object.__setattr__(self, "argv", tuple(argv))


@dataclass(frozen=True)
class KillChild(Op):
    """kill(child_pid, sig) addressed by birth order (no pid variables)."""
    child_index: int
    signal: Signal = Signal.SIGINT


@dataclass(frozen=True)
class InstallHandler(Op):
    """signal(sig, handler) — handler ops run on delivery."""
    signal: Signal
    handler: tuple[Op, ...] = ()

    def __init__(self, signal: Signal, handler: Sequence[Op] = ()) -> None:
        object.__setattr__(self, "signal", signal)
        object.__setattr__(self, "handler", tuple(handler))


@dataclass(frozen=True)
class Pause(Op):
    """pause() — block until any signal is delivered."""


@dataclass(frozen=True, eq=False)
class RunBinary(Op):
    """A compiled ISA program as this process's image (the full-system path).

    Each scheduler unit executes up to ``batch`` machine instructions;
    the kernel re-queues the op until the machine halts, at which point
    the process exits with ``%eax`` as its status (a crash exits
    128 + SIGSEGV-style). Built by :meth:`repro.ossim.kernel.Kernel.exec_binary`,
    which also binds the machine to its
    :class:`~repro.system.bus.VirtualBus` view.
    """
    machine: object       # repro.isa.Machine (kept untyped: no isa import)
    batch: int = 100
    jit: bool = False     # execute slices through the superblock JIT


@dataclass(frozen=True)
class Repeat(Op):
    """A counted loop: ``for (i = 0; i < n; i++) { body }``."""
    count: int
    body: tuple[Op, ...] = ()

    def __init__(self, count: int, body: Sequence[Op] = ()) -> None:
        object.__setattr__(self, "count", count)
        object.__setattr__(self, "body", tuple(body))


# ---------------------------------------------------------------------------
# A registry of "binaries" for Exec and the shell
# ---------------------------------------------------------------------------

@dataclass
class ProgramImage:
    """A named program: what exec loads and what the shell launches."""
    name: str
    ops: tuple[Op, ...]

    def __init__(self, name: str, ops: Sequence[Op]) -> None:
        self.name = name
        self.ops = tuple(ops)


class ProgramRegistry:
    """The simulated filesystem's /bin.

    Programs register either as fixed op lists or as *factories* taking
    ``argv`` (like a real main(argc, argv)).
    """

    def __init__(self) -> None:
        self._programs: dict[str, ProgramImage] = {}
        self._factories: dict[str, object] = {}

    def register(self, name: str, ops: Sequence[Op]) -> ProgramImage:
        image = ProgramImage(name, ops)
        self._programs[name] = image
        return image

    def register_factory(self, name: str, factory) -> None:
        """``factory(argv: tuple[str, ...]) -> Sequence[Op]``."""
        self._factories[name] = factory

    def lookup(self, name: str,
               argv: tuple[str, ...] = ()) -> ProgramImage | None:
        factory = self._factories.get(name)
        if factory is not None:
            return ProgramImage(name, factory(argv or (name,)))
        return self._programs.get(name)

    def names(self) -> list[str]:
        return sorted(set(self._programs) | set(self._factories))


def standard_binaries(registry: ProgramRegistry | None = None
                      ) -> ProgramRegistry:
    """A small /bin the shell lab can exercise."""
    reg = registry or ProgramRegistry()
    reg.register("true", [Exit(0)])
    reg.register("false", [Exit(1)])
    reg.register("hello", [Print("hello, world\n"), Exit(0)])
    reg.register("spin", [Compute(5), Exit(0)])
    reg.register("spin-long", [Compute(25), Exit(0)])
    reg.register("yes3", [Repeat(3, [Print("y\n")]), Exit(0)])
    reg.register_factory(
        "echo",
        lambda argv: (Print(" ".join(argv[1:]) + "\n"), Exit(0)))
    return reg
