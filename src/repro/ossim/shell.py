"""Lab 9: the Unix shell over the simulated kernel.

"Students build a shell that executes commands in the foreground and
background. They use fork and execvp to start child processes and
waitpid to reap terminated processes. We also require students to
implement a simplified history mechanism." (§III-B)

:class:`Shell` does exactly that against :class:`~repro.ossim.kernel.
Kernel`: each command forks a child that execs the named program,
foreground commands wait, background commands go into a job table that
is reaped as the kernel reports SIGCHLD-style completions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShellError
from repro.ossim.kernel import INIT_PID, Kernel
from repro.ossim.pcb import ProcessState
from repro.ossim.parser import History, ParsedCommand, parse_command
from repro.ossim.programs import Exec, ProgramRegistry, standard_binaries


@dataclass
class Job:
    """One background job."""
    job_id: int
    pid: int
    command: str
    done: bool = False
    exit_status: int | None = None


class Shell:
    """A scriptable shell: feed it lines, read back its transcript."""

    BUILTINS = ("exit", "history", "jobs", "help", "ps")

    def __init__(self, kernel: Kernel | None = None,
                 registry: ProgramRegistry | None = None) -> None:
        self.registry = registry or standard_binaries()
        self.kernel = kernel or Kernel(registry=self.registry)
        self.history = History()
        self.jobs: list[Job] = []
        self._next_job = 1
        self.transcript: list[str] = []
        self.exited = False
        self.last_status: int | None = None
        self._consumed = 0   # kernel output entries already in transcript

    # -- the REPL entry point -------------------------------------------------

    def run_line(self, line: str) -> str:
        """Process one input line; returns the output it produced."""
        if self.exited:
            raise ShellError("shell has exited")
        before = len(self.transcript)
        try:
            expanded = self.history.expand(line)
        except ShellError as exc:
            self._say(f"shell: {exc}")
            return self._since(before)
        if expanded.strip():
            self.history.add(expanded)
        try:
            cmd = parse_command(expanded)
        except ShellError as exc:
            self._say(f"shell: {exc}")
            return self._since(before)
        if cmd.empty:
            return self._since(before)
        if cmd.program in self.BUILTINS:
            self._builtin(cmd)
        else:
            self._launch(cmd)
        self._reap_finished()
        return self._since(before)

    def run_script(self, lines: list[str]) -> str:
        return "".join(self.run_line(l) for l in lines)

    # -- internals ----------------------------------------------------------------

    def _say(self, text: str) -> None:
        self.transcript.append(text + "\n")

    def _since(self, mark: int) -> str:
        return "".join(self.transcript[mark:])

    def _builtin(self, cmd: ParsedCommand) -> None:
        if cmd.program == "exit":
            self.exited = True
            self._say("exit")
        elif cmd.program == "history":
            rendered = self.history.render()
            if rendered:
                self._say(rendered)
        elif cmd.program == "jobs":
            for job in self.jobs:
                state = "Done" if job.done else "Running"
                self._say(f"[{job.job_id}] {state}\t{job.command}")
        elif cmd.program == "ps":
            for pcb in self.kernel.processes():
                self._say(f"{pcb.pid:>5}  {pcb.state.value:<8} "
                          f"{pcb.name}")
        elif cmd.program == "help":
            self._say("builtins: " + " ".join(self.BUILTINS))
            self._say("programs: " + " ".join(self.registry.names()))

    def _launch(self, cmd: ParsedCommand) -> None:
        if self.registry.lookup(cmd.program) is None:
            self._say(f"shell: {cmd.program}: command not found")
            self.last_status = 127
            return
        # fork + exec: the child's whole job is to exec the program image
        pid = self.kernel.spawn(cmd.program,
                                [Exec(cmd.program, cmd.argv)],
                                ppid=INIT_PID)
        if cmd.background:
            job = Job(self._next_job, pid, str(cmd))
            self._next_job += 1
            self.jobs.append(job)
            self._say(f"[{job.job_id}] {pid}")
            # background jobs make progress whenever the shell runs the
            # kernel; give the scheduler a chance without blocking
            self._pump(limit=1)
        else:
            self._wait_foreground(pid)

    def _wait_foreground(self, pid: int) -> None:
        """Run the kernel until the foreground child terminates."""
        while self.kernel.process(pid).alive:
            runnable = self.kernel.runnable_pids()
            if not runnable:
                raise ShellError("foreground job blocked forever")
            self.kernel.run_one(runnable[0])
        self.last_status = self.kernel.exit_status_of(pid)
        self._flush_program_output()

    def _pump(self, limit: int = 100) -> None:
        """Let background jobs run a bounded amount."""
        for _ in range(limit):
            runnable = self.kernel.runnable_pids()
            if not runnable:
                break
            self.kernel.run_one(runnable[0])
        self._flush_program_output()

    def drain_background(self) -> None:
        """Run the kernel until every background job finishes (tests)."""
        while self.kernel.runnable_pids():
            self.kernel.run_one(self.kernel.runnable_pids()[0])
        self._reap_finished()

    def _flush_program_output(self) -> None:
        """Copy newly produced program output into the transcript."""
        new = self.kernel.output[self._consumed:]
        self._consumed = len(self.kernel.output)
        for _, text in new:
            self.transcript.append(text)

    def _reap_finished(self) -> None:
        """waitpid(..., WNOHANG) loop driven by job completion."""
        self._flush_program_output()
        for job in self.jobs:
            if not job.done:
                pcb = self.kernel.process(job.pid)
                if pcb.state in (ProcessState.ZOMBIE,
                                 ProcessState.TERMINATED):
                    job.done = True
                    job.exit_status = pcb.exit_status
                    self._say(f"[{job.job_id}] Done\t{job.command}")
