"""The boot story: how an OS gets onto the hardware.

"As part of the demystification, we discuss a bit about how an OS boots
onto the hardware and initializes itself to be prepared to run programs
on the system." (§III-A, *Operating Systems*)

A deterministic model of that narrative: firmware POST, bootloader,
kernel initialization subsystem by subsystem, and finally the init
process — producing a dmesg-style transcript and ending with a live
:class:`~repro.ossim.kernel.Kernel` ready to run programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import OsError_
from repro.ossim.kernel import INIT_PID, Kernel


@dataclass(frozen=True)
class BootStage:
    """One step of the boot sequence."""
    name: str
    actor: str        # 'firmware' | 'bootloader' | 'kernel'
    message: str
    duration_ms: float


BOOT_SEQUENCE: tuple[BootStage, ...] = (
    BootStage("post", "firmware",
              "power-on self test: CPU, RAM, devices respond", 180.0),
    BootStage("find-boot-device", "firmware",
              "firmware locates the boot device and reads its first "
              "block", 40.0),
    BootStage("load-bootloader", "firmware",
              "bootloader loaded into RAM; firmware jumps to it", 10.0),
    BootStage("load-kernel", "bootloader",
              "bootloader reads the kernel image from disk into RAM and "
              "jumps to its entry point", 120.0),
    BootStage("init-memory", "kernel",
              "kernel sets up physical frame allocator and enables "
              "virtual memory (its own page table first)", 25.0),
    BootStage("init-interrupts", "kernel",
              "interrupt vector table installed; timer ticking", 5.0),
    BootStage("init-scheduler", "kernel",
              "run queue and timeslice accounting initialised", 2.0),
    BootStage("init-drivers", "kernel",
              "console and disk drivers probe their devices", 90.0),
    BootStage("mount-root", "kernel",
              "root filesystem mounted read-write", 35.0),
    BootStage("start-init", "kernel",
              "process 1 (init) created; the kernel now waits for "
              "work", 3.0),
)


@dataclass
class BootResult:
    """The transcript plus the live kernel the boot produced."""
    kernel: Kernel
    log: list[str] = field(default_factory=list)
    total_ms: float = 0.0

    def dmesg(self) -> str:
        return "\n".join(self.log)


def boot(*, timeslice: int = 2) -> BootResult:
    """Run the boot sequence; returns a ready kernel and its dmesg."""
    log: list[str] = []
    elapsed = 0.0
    for stage in BOOT_SEQUENCE:
        elapsed += stage.duration_ms
        log.append(f"[{elapsed / 1000:8.3f}] {stage.actor:>10}: "
                   f"{stage.message}")
    kernel = Kernel(timeslice=timeslice)
    init = kernel.process(INIT_PID)
    log.append(f"[{elapsed / 1000:8.3f}]     kernel: init is pid "
               f"{init.pid}; boot complete")
    return BootResult(kernel=kernel, log=log, total_ms=elapsed)


def stage_named(name: str) -> BootStage:
    for stage in BOOT_SEQUENCE:
        if stage.name == name:
            return stage
    raise OsError_(f"no boot stage {name!r}")


def actors_in_order() -> list[str]:
    """The handoff chain (firmware → bootloader → kernel), deduplicated."""
    out: list[str] = []
    for stage in BOOT_SEQUENCE:
        if not out or out[-1] != stage.actor:
            out.append(stage.actor)
    return out
