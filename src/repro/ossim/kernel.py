"""The simulated kernel: scheduling, fork/exec/wait/exit, signals.

A deterministic, inspectable model of the mechanisms CS 31 teaches:
round-robin timesharing with context switches, the fork/exec/wait/exit
lifecycle with zombies and orphan reparenting, and asynchronous signal
delivery with user handlers (SIGCHLD above all). Determinism is the
point — homework answers about "possible outputs" are checked by
exhaustively exploring schedules (see :mod:`repro.ossim.analysis`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import (
    CMemoryError,
    InvalidSyscall,
    IsaError,
    NoSuchProcess,
    OsError_,
)
from repro.ossim.pcb import PCB, ProcessState, Signal
from repro.ossim.programs import (
    Compute,
    Exec,
    Exit,
    Fork,
    InstallHandler,
    KillChild,
    Op,
    Pause,
    Print,
    ProgramRegistry,
    Repeat,
    RunBinary,
    Wait,
    WaitPid,
    standard_binaries,
)

INIT_PID = 1

#: picks which ready pid runs next; default takes the queue head
Picker = Callable[["Kernel", list[int]], int]


@dataclass
class KernelStats:
    context_switches: int = 0
    total_units: int = 0
    forks: int = 0
    signals_delivered: int = 0


class Kernel:
    """One machine's worth of processes."""

    def __init__(self, *, timeslice: int = 2,
                 registry: ProgramRegistry | None = None,
                 recorder=None) -> None:
        from repro.obs.recorder import coalesce
        if timeslice < 1:
            raise OsError_("timeslice must be >= 1")
        self.timeslice = timeslice
        self.registry = registry or standard_binaries()
        #: shared trace recorder (see repro.obs); NULL_RECORDER when off
        self.recorder = coalesce(recorder)
        self.table: dict[int, PCB] = {}
        self.ready: deque[int] = deque()
        self.output: list[tuple[int, str]] = []
        #: compiled-program processes: pid → the ISA machine running it
        #: (kept after exit so reports can read final registers/steps)
        self.machines: dict[int, object] = {}
        #: pid → the VirtualBus owing that pid an address space; popped
        #: (and the bus told to destroy_process) when the process exits
        self._binary_buses: dict[int, object] = {}
        self.stats = KernelStats()
        self._next_pid = INIT_PID
        self._last_ran: int | None = None
        # hot-path trace handles, resolved once per identity so the
        # per-unit cost is one dict hit + one handle call (and nothing
        # at all when the recorder is disabled): pid → {op class →
        # span emitter} with the running pid's map pre-selected at
        # dispatch, (event name, pid) → instant series, plus the
        # kernel's context-switch instant series
        self._traced = self.recorder.enabled
        self._op_emit: dict = {}
        self._cur_emit: dict = {}
        self._inst_series: dict = {}
        self._cs_series = None
        # init: adopts orphans, auto-reaps, never scheduled
        init = self._new_pcb("init", ppid=0, ops=[])
        init.state = ProcessState.BLOCKED

    # -- process table ---------------------------------------------------------

    def _new_pcb(self, name: str, ppid: int, ops: Sequence[Op]) -> PCB:
        pid = self._next_pid
        self._next_pid += 1
        pcb = PCB(pid=pid, ppid=ppid, name=name, program=list(ops))
        self.table[pid] = pcb
        return pcb

    def process(self, pid: int) -> PCB:
        """Look up a PCB by pid; NoSuchProcess if absent."""
        pcb = self.table.get(pid)
        if pcb is None:
            raise NoSuchProcess(f"no process {pid}")
        return pcb

    def spawn(self, name: str, ops: Sequence[Op], *,
              ppid: int = INIT_PID) -> int:
        """Create a process running ``ops`` (the kernel's 'load program')."""
        parent = self.process(ppid)
        pcb = self._new_pcb(name, ppid=ppid, ops=ops)
        parent.children.append(pcb.pid)
        self.ready.append(pcb.pid)
        return pcb.pid

    def exec_binary(self, name: str, program, *, bus,
                    ppid: int = INIT_PID, batch: int = 100,
                    recorder=None, jit: bool = False) -> int:
        """Load a compiled ISA :class:`~repro.isa.instructions.Program`
        as a process running over a :class:`~repro.system.bus.VirtualBus`.

        The bus gives the pid its own page table and backing address
        space; the machine binds that per-pid view, so every fetch,
        load, and store the program performs is translated by the MMU
        as this process (the first access after a context switch goes
        through ``MMU.context_switch`` — an untagged TLB flushes).
        Each scheduler unit executes ``batch`` instructions. On halt
        the process exits with ``%eax``; the bus then releases its
        frames via ``destroy_process``.
        """
        from repro.isa.machine import Machine
        pid = self.spawn(name, [], ppid=ppid)
        bus.create_process(pid)
        machine = Machine(program, bus=bus, pid=pid,
                          record_fetches=True, recorder=recorder, jit=jit)
        self.process(pid).program = [RunBinary(machine, batch, jit)]
        self.machines[pid] = machine
        self._binary_buses[pid] = bus
        return pid

    def processes(self) -> list[PCB]:
        """All PCBs still occupying a process-table slot."""
        return [p for p in self.table.values()
                if p.state is not ProcessState.TERMINATED]

    def process_tree(self, root: int = INIT_PID, _depth: int = 0) -> str:
        """The 'draw the process hierarchy' homework output."""
        pcb = self.process(root)
        lines = ["  " * _depth + str(pcb)]
        for child in pcb.children:
            if child in self.table:
                lines.append(self.process_tree(child, _depth + 1))
        return "\n".join(lines)

    # -- scheduling --------------------------------------------------------------

    def runnable_pids(self) -> list[int]:
        """Pids in the ready queue that are actually READY."""
        return [pid for pid in self.ready
                if self.table[pid].state is ProcessState.READY]

    def run(self, *, max_units: int = 100_000,
            picker: Picker | None = None) -> None:
        """Round-robin until every user process has terminated."""
        while True:
            runnable = self.runnable_pids()
            if not runnable:
                if any(p.state is ProcessState.BLOCKED
                       for p in self.table.values() if p.pid != INIT_PID):
                    raise OsError_(
                        "all processes blocked (waiting forever?)")
                return
            pid = picker(self, runnable) if picker else runnable[0]
            self._dispatch(pid)
            for _ in range(self.timeslice):
                if self.stats.total_units >= max_units:
                    raise OsError_("unit limit exceeded")
                if not self._step_one(pid):
                    break

    def _instant(self, name: str, pid: int, args: "dict | None") -> None:
        """Emit a lifecycle instant on a process's track via a cached
        handle (fork, exit, signal… — call only when recorder.enabled)."""
        key = (name, pid)
        series = self._inst_series.get(key)
        if series is None:
            series = self.recorder.instant_series(
                name, pid="ossim", tid=f"pid {pid}", cat="ossim")
            self._inst_series[key] = series
        series.hit(self.stats.total_units, args)

    def _dispatch(self, pid: int) -> None:
        if pid != self._last_ran:
            self.stats.context_switches += 1
            if self._traced:
                series = self._cs_series
                if series is None:
                    series = self._cs_series = self.recorder.instant_series(
                        "context-switch", pid="ossim", tid="kernel",
                        cat="ossim")
                series.hit(
                    self.stats.total_units,
                    {"from": self._last_ran, "to": pid}
                    if series.wants_args else None)
                # point the per-unit fast path at this pid's emitter
                # map so _step_one never allocates a lookup key
                cur = self._op_emit.get(pid)
                if cur is None:
                    cur = self._op_emit[pid] = {}
                self._cur_emit = cur
            self._last_ran = pid
        try:
            self.ready.remove(pid)
        except ValueError:
            pass
        self.ready.append(pid)   # back of the queue for next round

    def run_one(self, pid: int) -> bool:
        """Execute exactly one unit of ``pid`` (the explorer's step).

        Returns True if the process can still run afterwards.
        """
        self._dispatch(pid)
        return self._step_one(pid)

    # -- execution of one unit --------------------------------------------------------

    def _step_one(self, pid: int) -> bool:
        pcb = self.process(pid)
        if pcb.state is not ProcessState.READY:
            return False
        self._deliver_pending_signals(pcb)
        if pcb.state is not ProcessState.READY:
            return False
        if not pcb.program:
            # falling off main == exit(0)
            self._do_exit(pcb, 0)
            return False
        op = pcb.program.pop(0)
        pcb.cpu_time += 1
        units = self.stats.total_units + 1
        self.stats.total_units = units
        if self._traced:
            # each unit is a 1-wide span on the process's own track;
            # the emitter is resolved once per (op class, pid) and the
            # running pid's map is pre-selected at dispatch, so the
            # per-unit cost is one allocation-free dict get plus the
            # handle call (for folded series, its bound add())
            emit = self._cur_emit.get(op.__class__)
            if emit is None:
                emit = self._make_op_emit(op, pcb)
            emit(units - 1)
        return self._execute(pcb, op)

    def _make_op_emit(self, op: Op, pcb: PCB):
        """Resolve (and cache) the span emitter for one (op class, pid)."""
        series = self.recorder.span_series(
            op.__class__.__name__, pid="ossim",
            tid=f"pid {pcb.pid}", cat="ossim")
        if series.wants_args:
            def emit(ts, _add=series.add, _pcb=pcb):
                _add(ts, 1.0, {"name": _pcb.name})
        else:
            emit = series.add
        self._cur_emit[op.__class__] = emit
        return emit

    def _execute(self, pcb: PCB, op: Op) -> bool:
        if isinstance(op, Print):
            pcb.output.append(op.text)
            self.output.append((pcb.pid, op.text))
            return True
        if isinstance(op, Compute):
            if op.units > 1:
                pcb.program.insert(0, Compute(op.units - 1))
            return True
        if isinstance(op, Repeat):
            expansion: list[Op] = []
            for _ in range(op.count):
                expansion.extend(op.body)
            pcb.program[:0] = expansion
            return True
        if isinstance(op, Fork):
            self._do_fork(pcb, op)
            return True
        if isinstance(op, Exit):
            self._do_exit(pcb, op.status)
            return False
        if isinstance(op, Wait):
            return self._do_wait(pcb, target=None)
        if isinstance(op, WaitPid):
            if not 0 <= op.child_index < len(pcb.children):
                raise InvalidSyscall(
                    f"waitpid: process {pcb.pid} has no child "
                    f"#{op.child_index}")
            return self._do_wait(pcb,
                                 target=pcb.children[op.child_index])
        if isinstance(op, Exec):
            image = self.registry.lookup(op.program_name, op.argv)
            if image is None:
                raise InvalidSyscall(f"exec: no program "
                                     f"{op.program_name!r}")
            pcb.program = list(image.ops)   # replace the whole image
            pcb.name = op.program_name
            if self._traced:
                self._instant("exec", pcb.pid,
                              {"program": op.program_name})
            return True
        if isinstance(op, InstallHandler):
            pcb.handlers[op.signal] = list(op.handler)
            return True
        if isinstance(op, KillChild):
            if not 0 <= op.child_index < len(pcb.children):
                raise InvalidSyscall(
                    f"kill: process {pcb.pid} has no child "
                    f"#{op.child_index}")
            self.send_signal(pcb.children[op.child_index], op.signal)
            return True
        if isinstance(op, Pause):
            pcb.state = ProcessState.BLOCKED
            return False
        if isinstance(op, RunBinary):
            return self._run_binary(pcb, op)
        raise InvalidSyscall(f"unknown op {op!r}")

    # -- compiled programs (the full-system path) ----------------------------

    def _run_binary(self, pcb: PCB, op: RunBinary) -> bool:
        machine = op.machine
        try:
            if op.jit:
                machine.run_slice(op.batch)
            else:
                for _ in range(op.batch):
                    if machine.halted:
                        break
                    machine.step()
        except (IsaError, CMemoryError) as exc:
            # the program crashed (segfault, divide error, bad fetch):
            # the kernel kills it, SIGSEGV-style
            pcb.fault = str(exc)
            if self._traced:
                self._instant("crash", pcb.pid, {"what": str(exc)})
            self._binary_teardown(pcb.pid)
            self._do_exit(pcb, 128 + int(Signal.SIGKILL))
            return False
        if machine.halted:
            self._binary_teardown(pcb.pid)
            self._do_exit(pcb, machine.regs.get_signed("eax"))
            return False
        pcb.program.insert(0, op)      # still running: stay loaded
        return True

    def _binary_teardown(self, pid: int) -> None:
        """Release the pid's bus-side state (frames, page table, bytes)."""
        bus = self._binary_buses.pop(pid, None)
        if bus is not None:
            bus.destroy_process(pid)

    # -- fork / exit / wait ------------------------------------------------------------

    def _do_fork(self, parent: PCB, op: Fork) -> None:
        child = self._new_pcb(parent.name, ppid=parent.pid,
                              ops=list(op.child) + list(parent.program))
        child.handlers = dict(parent.handlers)   # inherited dispositions
        parent.children.append(child.pid)
        parent.program[:0] = list(op.parent)
        self.ready.append(child.pid)
        self.stats.forks += 1
        if self._traced:
            self._instant("fork", parent.pid, {"child": child.pid})

    def _do_exit(self, pcb: PCB, status: int) -> None:
        if self._traced:
            self._instant("exit", pcb.pid, {"status": status})
        pcb.exit_status = status
        pcb.state = ProcessState.ZOMBIE
        if pcb.pid in self.ready:
            self.ready.remove(pcb.pid)
        # orphans are adopted by init; zombie orphans are reaped right away
        for child_pid in pcb.children:
            child = self.table.get(child_pid)
            if child is None or child.state is ProcessState.TERMINATED:
                continue   # already reaped: PCB is gone on a real system
            child.ppid = INIT_PID
            self.process(INIT_PID).children.append(child_pid)
            if child.state is ProcessState.ZOMBIE:
                child.state = ProcessState.TERMINATED
        parent = self.table.get(pcb.ppid)
        if parent is None or parent.state in (ProcessState.ZOMBIE,
                                              ProcessState.TERMINATED):
            pcb.state = ProcessState.TERMINATED
            return
        if parent.pid == INIT_PID:
            pcb.state = ProcessState.TERMINATED   # init auto-reaps
            return
        parent.zombie_children.append(pcb.pid)
        self.send_signal(parent.pid, Signal.SIGCHLD)
        if parent.waiting and (parent.wait_target is None
                               or parent.wait_target == pcb.pid):
            self._complete_wait(parent)

    def _do_wait(self, pcb: PCB, target: int | None) -> bool:
        def reapable() -> int | None:
            if target is None:
                return pcb.zombie_children[0] if pcb.zombie_children else None
            if target in pcb.zombie_children:
                return target
            # already reaped or never existed as zombie
            t = self.table.get(target)
            if t is None or t.state is ProcessState.TERMINATED:
                return -1   # nothing left to wait for
            return None

        got = reapable()
        if got == -1:
            return True
        if got is not None:
            self._reap(pcb, got)
            return True
        if not any(self.table[c].alive or c in pcb.zombie_children
                   for c in pcb.children if c in self.table):
            return True   # wait() with no children returns immediately
        pcb.state = ProcessState.BLOCKED
        pcb.waiting = True
        pcb.wait_target = target
        if self._traced:
            self._instant("wait-blocked", pcb.pid, {"target": target})
        return False

    def _complete_wait(self, parent: PCB) -> None:
        target = parent.wait_target
        got = (target if target in parent.zombie_children
               else parent.zombie_children[0])
        self._reap(parent, got)
        parent.waiting = False
        parent.wait_target = None
        parent.state = ProcessState.READY
        if parent.pid not in self.ready:
            self.ready.append(parent.pid)

    def _reap(self, parent: PCB, child_pid: int) -> None:
        parent.zombie_children.remove(child_pid)
        self.process(child_pid).state = ProcessState.TERMINATED

    # -- signals --------------------------------------------------------------------------

    def send_signal(self, pid: int, sig: Signal) -> None:
        """Deliver a signal (kill); wakes paused targets."""
        pcb = self.table.get(pid)
        if pcb is None or not pcb.alive:
            return
        pcb.pending_signals.append(sig)
        self.stats.signals_delivered += 1
        if self._traced:
            self._instant("signal", pid, {"sig": sig.name})
        # signals interrupt Pause (and wake BLOCKED processes that have a
        # handler or a terminating default)
        if pcb.state is ProcessState.BLOCKED and not pcb.waiting:
            pcb.state = ProcessState.READY
            if pcb.pid not in self.ready:
                self.ready.append(pcb.pid)

    def _deliver_pending_signals(self, pcb: PCB) -> None:
        while pcb.pending_signals and pcb.alive:
            sig = pcb.pending_signals.pop(0)
            handler = pcb.handlers.get(sig)
            if self._traced:
                self._instant(
                    "signal-delivered", pcb.pid,
                    {"sig": sig.name,
                     "disposition": ("handler" if handler is not None
                                     else "default")})
            if sig == Signal.SIGKILL:         # cannot be caught
                self._do_exit(pcb, 128 + int(sig))
                return
            if handler is not None:
                pcb.program[:0] = list(handler)
                continue
            if sig in (Signal.SIGCHLD, Signal.SIGCONT):
                continue                      # default: ignore
            if sig == Signal.SIGSTOP:
                continue                      # stop/cont not modelled
            # default action for the rest: terminate
            self._do_exit(pcb, 128 + int(sig))
            return

    # -- inspection ------------------------------------------------------------------------

    def output_string(self) -> str:
        """Everything every process printed, in the order it happened."""
        return "".join(text for _, text in self.output)

    def exit_status_of(self, pid: int) -> int | None:
        """A process's exit status (None while it is still alive)."""
        return self.process(pid).exit_status

    def all_done(self) -> bool:
        """True when every user process has exited."""
        return not any(p.alive for p in self.table.values()
                       if p.pid != INIT_PID)
