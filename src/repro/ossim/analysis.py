"""Exhaustive schedule exploration: "identify possible outputs".

The processes homework asks students to enumerate the outputs a program
with fork/wait can produce under *any* scheduling. This module answers
that mechanically: depth-first search over every choice of which
runnable process executes the next unit, collecting the set of complete
output strings. Used both to grade answers and to demonstrate why, e.g.,
a ``wait()`` collapses the output set.
"""

from __future__ import annotations

import copy
from typing import Sequence

from repro.errors import OsError_
from repro.ossim.kernel import Kernel
from repro.ossim.programs import Op, ProgramRegistry


def enumerate_outputs(ops: Sequence[Op], *,
                      registry: ProgramRegistry | None = None,
                      max_states: int = 200_000) -> set[str]:
    """All output strings reachable under some schedule.

    DFS over scheduler choices with one-unit granularity (the finest
    preemption). ``max_states`` bounds the exploration; exceeding it
    raises OsError_ so tests never silently under-approximate.
    """
    kernel = Kernel(timeslice=1, registry=registry)
    kernel.spawn("main", ops)
    outputs: set[str] = set()
    budget = [max_states]

    def explore(k: Kernel) -> None:
        if budget[0] <= 0:
            raise OsError_("schedule exploration exceeded max_states")
        budget[0] -= 1
        runnable = k.runnable_pids()
        if not runnable:
            if any(p.state.value == "blocked" for p in k.table.values()
                   if p.pid != 1):
                return   # deadlocked schedule produces no complete output
            outputs.add(k.output_string())
            return
        for pid in runnable:
            branch = copy.deepcopy(k)
            branch.run_one(pid)
            explore(branch)

    explore(kernel)
    return outputs


def output_always(ops: Sequence[Op], text: str, **kwargs) -> bool:
    """True if every schedule produces exactly ``text``."""
    return enumerate_outputs(ops, **kwargs) == {text}


def output_possible(ops: Sequence[Op], text: str, **kwargs) -> bool:
    """True if some schedule produces ``text``."""
    return text in enumerate_outputs(ops, **kwargs)


def count_schedulable_outputs(ops: Sequence[Op], **kwargs) -> int:
    """How many distinct outputs some schedule can produce."""
    return len(enumerate_outputs(ops, **kwargs))
