"""CPU scheduling policies: the "scheduling for efficiency" discussion.

CS 31 "discuss[es] other system costs including the OS's role in
scheduling for efficiency" (§II, theme 2), leaving policy depth to the
upper-level OS course. This module is the bridge: a lecture-style job
scheduler that runs the same workload under FCFS, SJF, and round-robin
(with a context-switch cost), reporting the turnaround/waiting/response
metrics those discussions compare. Bench E11 regenerates the comparison.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

from repro._util import format_table
from repro.errors import OsError_


@dataclass(frozen=True)
class Job:
    """One CPU-bound job."""
    name: str
    arrival: float
    burst: float

    def __post_init__(self) -> None:
        if self.burst <= 0:
            raise OsError_(f"job {self.name!r} needs positive burst")
        if self.arrival < 0:
            raise OsError_(f"job {self.name!r} has negative arrival")


@dataclass
class JobOutcome:
    """Per-job results."""
    job: Job
    start: float = 0.0        # first time on the CPU
    finish: float = 0.0

    @property
    def turnaround(self) -> float:
        return self.finish - self.job.arrival

    @property
    def waiting(self) -> float:
        return self.turnaround - self.job.burst

    @property
    def response(self) -> float:
        return self.start - self.job.arrival


@dataclass
class ScheduleResult:
    """A full run: outcomes plus aggregate metrics."""
    policy: str
    outcomes: list[JobOutcome]
    context_switches: int
    total_time: float

    def _mean(self, attr: str) -> float:
        if not self.outcomes:
            return 0.0
        return (sum(getattr(o, attr) for o in self.outcomes)
                / len(self.outcomes))

    @property
    def mean_turnaround(self) -> float:
        return self._mean("turnaround")

    @property
    def mean_waiting(self) -> float:
        return self._mean("waiting")

    @property
    def mean_response(self) -> float:
        return self._mean("response")


def _validate(jobs: list[Job]) -> None:
    if not jobs:
        raise OsError_("no jobs to schedule")
    names = [j.name for j in jobs]
    if len(set(names)) != len(names):
        raise OsError_("job names must be unique")


def _transitions(outcomes: list[JobOutcome]) -> int:
    """Job-to-job transitions in execution order.

    A non-preemptive schedule switches exactly when the CPU moves from
    one job to a *different* one; an idle gap between two jobs still
    separates them, but a single-job workload reports 0 — the same
    semantics as the round-robin switch counter.
    """
    return sum(1 for prev, nxt in zip(outcomes, outcomes[1:])
               if prev.job.name != nxt.job.name)


def fcfs(jobs: list[Job]) -> ScheduleResult:
    """First-come first-served, non-preemptive."""
    _validate(jobs)
    outcomes = []
    time = 0.0
    for job in sorted(jobs, key=lambda j: (j.arrival, j.name)):
        start = max(time, job.arrival)
        finish = start + job.burst
        outcomes.append(JobOutcome(job, start, finish))
        time = finish
    return ScheduleResult("FCFS", outcomes,
                          context_switches=_transitions(outcomes),
                          total_time=time)


def sjf(jobs: list[Job]) -> ScheduleResult:
    """Shortest job first, non-preemptive, among arrived jobs."""
    _validate(jobs)
    pending = sorted(jobs, key=lambda j: (j.arrival, j.name))
    ready: list[tuple[float, str, Job]] = []
    outcomes = []
    time = 0.0
    i = 0
    while i < len(pending) or ready:
        while i < len(pending) and pending[i].arrival <= time:
            heapq.heappush(ready, (pending[i].burst, pending[i].name,
                                   pending[i]))
            i += 1
        if not ready:
            time = pending[i].arrival
            continue
        _, _, job = heapq.heappop(ready)
        start = max(time, job.arrival)
        finish = start + job.burst
        outcomes.append(JobOutcome(job, start, finish))
        time = finish
    return ScheduleResult("SJF", outcomes,
                          context_switches=_transitions(outcomes),
                          total_time=time)


def round_robin(jobs: list[Job], *, quantum: float,
                switch_cost: float = 0.0) -> ScheduleResult:
    """Preemptive round-robin with a fixed timeslice.

    ``switch_cost`` is charged whenever the CPU moves *directly* from
    one job to a different one — the overhead knob behind "smaller
    quantum = more responsive but more overhead". An idle CPU has
    nothing to switch from: when the ready queue drains and the clock
    jumps to the next arrival, that job starts at its arrival time with
    no switch charged. Jobs arriving while a switch is in progress are
    admitted at the post-switch timestamp, before the slice runs.
    """
    _validate(jobs)
    if quantum <= 0:
        raise OsError_("quantum must be positive")
    if switch_cost < 0:
        raise OsError_("switch cost cannot be negative")
    pending = sorted(jobs, key=lambda j: (j.arrival, j.name))
    queue: deque[Job] = deque()
    remaining = {j.name: j.burst for j in jobs}
    started: dict[str, float] = {}
    outcomes: dict[str, JobOutcome] = {}
    time = 0.0
    i = 0
    last_job: str | None = None
    switches = 0

    def admit(until: float) -> None:
        nonlocal i
        while i < len(pending) and pending[i].arrival <= until:
            queue.append(pending[i])
            i += 1

    admit(0.0)
    while queue or i < len(pending):
        if not queue:
            # the CPU idles until the next arrival; the idle gap is not
            # a context switch, so the next dispatch is charge-free
            time = pending[i].arrival
            last_job = None
            admit(time)
            continue
        job = queue.popleft()
        if last_job is not None and last_job != job.name:
            switches += 1
            time += switch_cost
            admit(time)   # arrivals during the switch window enqueue now
        last_job = job.name
        if job.name not in started:
            started[job.name] = time
        slice_len = min(quantum, remaining[job.name])
        time += slice_len
        remaining[job.name] -= slice_len
        admit(time)
        if remaining[job.name] <= 1e-12:
            outcomes[job.name] = JobOutcome(job, started[job.name], time)
        else:
            queue.append(job)
    ordered = [outcomes[j.name] for j in jobs]
    return ScheduleResult(f"RR(q={quantum:g})", ordered,
                          context_switches=switches, total_time=time)


def compare_policies(jobs: list[Job], *, quantum: float = 2.0,
                     switch_cost: float = 0.0) -> list[ScheduleResult]:
    """The lecture's side-by-side: FCFS vs SJF vs RR on one workload."""
    return [fcfs(jobs), sjf(jobs),
            round_robin(jobs, quantum=quantum, switch_cost=switch_cost)]


def comparison_table(results: list[ScheduleResult]) -> str:
    rows = [(r.policy, f"{r.mean_turnaround:.2f}",
             f"{r.mean_waiting:.2f}", f"{r.mean_response:.2f}",
             r.context_switches, f"{r.total_time:.2f}")
            for r in results]
    return format_table(
        ["policy", "turnaround", "waiting", "response", "switches",
         "makespan"],
        rows, align_right=[False, True, True, True, True, True])
