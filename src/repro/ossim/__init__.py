"""The OS simulation (CS 31 §III-A, *Operating Systems*).

A deterministic kernel with the process abstraction (fork/exec/wait/exit,
zombies, orphan reparenting), round-robin timesharing with context
switches, asynchronous signals with handlers (SIGCHLD), exhaustive
"possible outputs" schedule exploration, the Lab 8 command parser, and
the Lab 9 shell with foreground/background jobs and history.
"""

from repro.ossim.pcb import PCB, ProcessState, Signal
from repro.ossim.programs import (
    Compute,
    Exec,
    Exit,
    Fork,
    InstallHandler,
    KillChild,
    Op,
    Pause,
    Print,
    ProgramImage,
    ProgramRegistry,
    Repeat,
    RunBinary,
    Wait,
    WaitPid,
    standard_binaries,
)
from repro.ossim.kernel import INIT_PID, Kernel, KernelStats
from repro.ossim.analysis import (
    count_schedulable_outputs,
    enumerate_outputs,
    output_always,
    output_possible,
)
from repro.ossim.parser import History, ParsedCommand, parse_command, tokenize
from repro.ossim.shell import Job, Shell
from repro.ossim import scheduling
from repro.ossim.boot import BOOT_SEQUENCE, BootResult, BootStage, boot

__all__ = [
    "PCB", "ProcessState", "Signal",
    "Op", "Print", "Compute", "Fork", "Exit", "Wait", "WaitPid", "Exec",
    "KillChild", "InstallHandler", "Pause", "Repeat", "RunBinary",
    "ProgramImage", "ProgramRegistry", "standard_binaries",
    "Kernel", "KernelStats", "INIT_PID",
    "enumerate_outputs", "output_always", "output_possible",
    "count_schedulable_outputs",
    "parse_command", "tokenize", "ParsedCommand", "History",
    "Shell", "Job",
    "scheduling",
    "boot", "BOOT_SEQUENCE", "BootStage", "BootResult",
]
