"""``python -m repro`` — a one-screen tour of the library.

Prints the course's shape (themes, schedule, Table I category counts),
runs each lab's miniature demo, and finishes with the headline speedup
measurement, so a fresh checkout can prove itself in seconds.

Subcommands::

    python -m repro analyze FILE.c|FILE.s|FILE.py|DIR ...
    python -m repro trace DEMO [--chrome OUT.json] [--top N]
    python -m repro run PROG.c [--bus flat|cached|virtual] [--procs N]
    python -m repro gil [--threads N] [--probe] [--chrome OUT.json]
    python -m repro cluster [life|mapreduce|pipeline] [--nodes N] ...

``analyze`` runs the static-analysis subsystem (see
:mod:`repro.analysis`); ``trace`` runs a demo workload under the
observability layer (see :mod:`repro.obs`) and prints a profile,
optionally exporting a Chrome trace; ``run`` compiles a program and
executes it over a pluggable memory bus (see :mod:`repro.system`);
``gil`` demos the simulated interpreter lock ablation and probes the
host's real executor backends (see :mod:`repro.core.backends`);
``cluster`` runs the sharded distributed workloads over the simulated
network and reports speedup with a comm/compute breakdown (see
:mod:`repro.cluster`). Any subcommand replaces the tour.
"""

from __future__ import annotations

import sys

from repro.core import is_near_linear, scaling_table
from repro.curriculum import (
    THEMES,
    category_counts,
    run_all_demos,
    schedule_table,
)
from repro.life import random_grid, run_serial_cycles, simulated_scaling


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "analyze":
        from repro.analysis.cli import run
        return run(argv[1:])
    if argv and argv[0] == "trace":
        from repro.obs.cli import run
        return run(argv[1:])
    if argv and argv[0] == "run":
        from repro.system.cli import run
        return run(argv[1:])
    if argv and argv[0] == "gil":
        from repro.core.cli import run
        return run(argv[1:])
    if argv and argv[0] == "cluster":
        from repro.cluster.cli import run
        return run(argv[1:])
    print("repro: CS 31 as an executable systems library")
    print("=" * 52)
    print("\nthemes:")
    for t in THEMES:
        print(f"  {t.number}. {t.title}")
    print("\nschedule:")
    print(schedule_table())
    counts = category_counts()
    print(f"\nTable I coverage: "
          + ", ".join(f"{k} {v}" for k, v in counts.items()))

    print("\nlab miniatures (Lab 0-10):")
    for number, output in run_all_demos().items():
        first_line = output.strip().splitlines()[0][:60]
        print(f"  Lab {number:>2}: {first_line}")

    print("\nheadline experiment — parallel Game of Life speedup:")
    grid = random_grid(128, 128, seed=31)
    times = simulated_scaling(grid, 4, [1, 2, 4, 8, 16])
    rows = scaling_table(run_serial_cycles(grid, 4), times)
    for p in rows:
        print(f"  {p.workers:>2} threads: {p.speedup:5.2f}x "
              f"(efficiency {p.efficiency:.2f})")
    ok = is_near_linear(rows, efficiency_floor=0.8)
    print(f"\nnear-linear up to 16 threads: {ok}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
