"""Memory hierarchy and caching (CS 31 §III-A, *Memory Hierarchy*, *Caching*).

Storage-device models, analytical hierarchy/EAT computations, address
division, the direct-mapped/set-associative cache simulator with
replacement and write policies, access-trace generators for the course's
loop-nest exercises, and temporal/spatial locality metrics.
"""

from repro.memory.address import AddressLayout, AddressParts
from repro.memory.cache import (
    AccessResult,
    Cache,
    CacheConfig,
    CacheStats,
    Line,
    amat,
)
from repro.memory.devices import (
    DRAM,
    HDD,
    HIERARCHY_ORDER,
    L1_CACHE,
    L2_CACHE,
    L3_CACHE,
    REGISTERS,
    SSD,
    TAPE,
    StorageDevice,
    classify,
    comparison_table,
    hierarchy_is_well_formed,
    latency_ratio,
)
from repro.memory.hierarchy import (
    Level,
    MemoryHierarchy,
    library_book_exercise,
    speedup_from_hit_rate,
)
from repro.memory.locality import (
    LocalityReport,
    analyze,
    dominant_stride,
    entropy_of_blocks,
    reuse_distances,
    spatial_locality_score,
    stride_histogram,
    temporal_locality_score,
)
from repro.memory.multilevel import CacheHierarchy, HierarchyAccess
from repro.memory import trace
from repro.memory import vectorcache
from repro.memory.vectorcache import as_trace_arrays

__all__ = [
    "CacheHierarchy", "HierarchyAccess",
    "AddressLayout", "AddressParts",
    "Cache", "CacheConfig", "CacheStats", "AccessResult", "Line", "amat",
    "StorageDevice", "HIERARCHY_ORDER", "REGISTERS", "L1_CACHE", "L2_CACHE",
    "L3_CACHE", "DRAM", "SSD", "HDD", "TAPE", "classify", "latency_ratio",
    "hierarchy_is_well_formed", "comparison_table",
    "Level", "MemoryHierarchy", "speedup_from_hit_rate",
    "library_book_exercise",
    "reuse_distances", "temporal_locality_score", "spatial_locality_score",
    "stride_histogram", "dominant_stride", "analyze", "LocalityReport",
    "entropy_of_blocks",
    "trace",
    "vectorcache", "as_trace_arrays",
]
