"""The memory hierarchy as a quantitative model.

Ties the device catalog and the cache simulator together: a stack of
levels with hit latencies, effective-access-time computation (the formula
taught with both caches and the TLB), and a "where should this data
live?" cost explorer used in the in-class exercise about placing
real-world objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import format_table
from repro.errors import ReproError


@dataclass(frozen=True)
class Level:
    """One hierarchy level for analytical modelling."""
    name: str
    hit_time: float            # cycles (or ns — any consistent unit)
    hit_rate: float | None     # None for the terminal level (always hits)

    def __post_init__(self) -> None:
        if self.hit_rate is not None and not 0.0 <= self.hit_rate <= 1.0:
            raise ReproError(f"hit rate {self.hit_rate} out of [0,1]")
        if self.hit_time < 0:
            raise ReproError("hit time cannot be negative")


class MemoryHierarchy:
    """An ordered stack of levels, fastest first, ending in a terminal
    level (main memory or disk) that always hits."""

    def __init__(self, levels: list[Level]) -> None:
        if not levels:
            raise ReproError("hierarchy needs at least one level")
        if levels[-1].hit_rate is not None:
            raise ReproError("terminal level must have hit_rate=None")
        for lvl in levels[:-1]:
            if lvl.hit_rate is None:
                raise ReproError(
                    f"non-terminal level {lvl.name!r} needs a hit rate")
        self.levels = levels

    def effective_access_time(self) -> float:
        """EAT = hit_time + miss_rate × EAT(next), composed from the bottom.

        With the course's convention that each level's hit time is paid on
        every access that reaches it.
        """
        eat = self.levels[-1].hit_time
        for lvl in reversed(self.levels[:-1]):
            assert lvl.hit_rate is not None
            eat = lvl.hit_time + (1.0 - lvl.hit_rate) * eat
        return eat

    def access_cost_if_found_at(self, level_index: int) -> float:
        """Total latency when the data is resident at ``level_index``
        (sum of hit times down to and including that level)."""
        if not 0 <= level_index < len(self.levels):
            raise ReproError(f"no level {level_index}")
        return sum(l.hit_time for l in self.levels[:level_index + 1])

    def table(self) -> str:
        rows = []
        for i, lvl in enumerate(self.levels):
            rows.append((lvl.name, f"{lvl.hit_time:g}",
                         "—" if lvl.hit_rate is None else f"{lvl.hit_rate:.2%}",
                         f"{self.access_cost_if_found_at(i):g}"))
        return format_table(
            ["level", "hit time", "hit rate", "cost if found here"],
            rows, align_right=[False, True, True, True])


def speedup_from_hit_rate(hit_time: float, miss_penalty: float,
                          hit_rate_a: float, hit_rate_b: float) -> float:
    """How much faster hit rate B is than A for one cache level.

    The lecture's punchline: small hit-rate changes swing performance
    because the miss penalty is huge.
    """
    eat_a = hit_time + (1 - hit_rate_a) * miss_penalty
    eat_b = hit_time + (1 - hit_rate_b) * miss_penalty
    return eat_a / eat_b


def library_book_exercise(shelf_time: float = 1.0, desk_time: float = 0.05,
                          desk_hit_rate: float = 0.9) -> dict[str, float]:
    """The course's motivating analogy as numbers: keeping hot library
    books on your desk (cache) vs walking to the shelf (memory)."""
    always_shelf = shelf_time
    with_desk = desk_time + (1 - desk_hit_rate) * shelf_time
    return {
        "always_shelf": always_shelf,
        "with_desk": with_desk,
        "speedup": always_shelf / with_desk,
    }
