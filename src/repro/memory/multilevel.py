"""A multi-level cache hierarchy: L1 backed by L2 backed by memory.

The course previews multi-level caches when introducing the hierarchy;
this simulator composes :class:`~repro.memory.cache.Cache` levels the
way hardware does: an access that misses L1 proceeds to L2 (and so on),
and only a miss at the last level reaches memory. AMAT then follows
from each level's *local* hit rate — the subtlety (global vs local miss
rate) that upper-level courses pick up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import CacheConfigError
from repro.memory.cache import AccessKind, Cache, CacheConfig


@dataclass(frozen=True)
class HierarchyAccess:
    """Where an access was satisfied."""
    address: int
    kind: AccessKind
    hit_level: int        # 0-based cache level, or -1 for memory


class CacheHierarchy:
    """An ordered stack of cache levels, L1 first."""

    def __init__(self, configs: list[CacheConfig], *,
                 memory_latency: int = 100, recorder=None) -> None:
        if not configs:
            raise CacheConfigError("hierarchy needs at least one level")
        for upper, lower in zip(configs, configs[1:]):
            if upper.capacity_bytes > lower.capacity_bytes:
                raise CacheConfigError(
                    "levels must grow (or stay equal) going down")
        # one trace track per cache level (L1, L2, ...)
        self.levels = [Cache(c, recorder=recorder,
                             trace_name=f"L{i + 1}")
                       for i, c in enumerate(configs)]
        self.memory_latency = memory_latency
        self.memory_accesses = 0

    def access(self, address: int, kind: AccessKind = "load"
               ) -> HierarchyAccess:
        """Probe levels in order; fill every missed level on the way."""
        for i, cache in enumerate(self.levels):
            result = cache.access(address, kind)
            if result.hit:
                return HierarchyAccess(address, kind, hit_level=i)
        self.memory_accesses += 1
        return HierarchyAccess(address, kind, hit_level=-1)

    def run_trace(self, accesses: Iterable[int | tuple[int, AccessKind]]
                  ) -> list[HierarchyAccess]:
        out = []
        for item in accesses:
            if isinstance(item, tuple):
                out.append(self.access(*item))
            else:
                out.append(self.access(item))
        return out

    def simulate_trace(self, accesses):
        """Vectorized :meth:`run_trace`: whole-trace hierarchy simulation.

        Every level runs the batch engine over the miss stream of the
        level above — the same access sequence each level sees in the
        scalar model — so all per-level stats (and therefore
        :meth:`amat`, :meth:`local_hit_rates`, :meth:`global_miss_rate`)
        come out identical. Returns a per-access int8 array of hit
        levels (0-based; ``-1`` = main memory), the vector analogue of
        the ``hit_level`` field. Levels configured with
        ``prefetch_next_line`` fall back to the scalar engine for that
        level only.
        """
        import numpy as np

        from repro.memory import vectorcache
        addrs, stores = vectorcache.as_trace_arrays(accesses)
        hit_level = np.full(len(addrs), -1, dtype=np.int8)
        remaining = np.arange(len(addrs))
        for i, cache in enumerate(self.levels):
            if not addrs.size:
                break
            if cache.config.prefetch_next_line:
                hits = np.fromiter(
                    (cache.access(int(a), "store" if s else "load").hit
                     for a, s in zip(addrs, stores)),
                    dtype=bool, count=len(addrs))
            else:
                hits = vectorcache.simulate_arrays(cache, addrs, stores)
            if cache.recorder.enabled:
                cache._record_counters()     # one sample per level batch
            hit_level[remaining[hits]] = i
            misses = ~hits
            addrs, stores = addrs[misses], stores[misses]
            remaining = remaining[misses]
        self.memory_accesses += int(addrs.size)
        return hit_level

    # -- analysis --------------------------------------------------------------

    def local_hit_rates(self) -> list[float]:
        """Hit rate of each level among the accesses that reached it."""
        return [c.stats.hit_rate for c in self.levels]

    def global_miss_rate(self) -> float:
        """Fraction of all accesses that reached main memory."""
        total = self.levels[0].stats.accesses
        return self.memory_accesses / total if total else 0.0

    def amat(self) -> float:
        """Average memory access time from observed local hit rates."""
        time = float(self.memory_latency)
        for cache in reversed(self.levels):
            time = cache.config.hit_time + cache.stats.miss_rate * time
        return time

    def report(self) -> str:
        lines = []
        for i, cache in enumerate(self.levels):
            s = cache.stats
            lines.append(
                f"L{i + 1}: {s.accesses} accesses, "
                f"{s.hit_rate:.1%} local hit rate "
                f"({cache.config.capacity_bytes} B, "
                f"{cache.config.associativity}-way)")
        lines.append(f"memory: {self.memory_accesses} accesses "
                     f"(global miss rate {self.global_miss_rate():.1%})")
        lines.append(f"AMAT: {self.amat():.2f} cycles")
        return "\n".join(lines)
