"""Storage device models: the motivation for the memory hierarchy.

"We motivate our analysis of the memory hierarchy by describing the wide
variety in performance characteristics (e.g., access latency, storage
density, and cost) across storage devices" (§III-A, *Memory Hierarchy*).
The catalog below carries representative figures of the kind the course
quotes (orders of magnitude matter; exact vendor numbers don't).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro._util import format_table

Category = Literal["primary", "secondary"]


@dataclass(frozen=True)
class StorageDevice:
    """One technology level, with the trade-off numbers the course compares."""
    name: str
    latency_ns: float          # typical access latency
    capacity_bytes: int        # typical capacity in a desktop/laptop
    dollars_per_gb: float      # cost density
    category: Category
    interface: str             # how a program reaches it
    volatile: bool

    @property
    def capacity_gb(self) -> float:
        return self.capacity_bytes / 2**30

    def __str__(self) -> str:
        return self.name


# A representative desktop, top (fast/small/expensive) to bottom.
REGISTERS = StorageDevice("CPU registers", 0.3, 256, 0.0,
                          "primary", "instruction operands", True)
L1_CACHE = StorageDevice("L1 cache (SRAM)", 1.0, 64 * 2**10, 100.0,
                         "primary", "memory bus (transparent)", True)
L2_CACHE = StorageDevice("L2 cache (SRAM)", 4.0, 1 * 2**20, 50.0,
                         "primary", "memory bus (transparent)", True)
L3_CACHE = StorageDevice("L3 cache (SRAM)", 12.0, 16 * 2**20, 25.0,
                         "primary", "memory bus (transparent)", True)
DRAM = StorageDevice("main memory (DRAM)", 100.0, 16 * 2**30, 3.0,
                     "primary", "memory bus (load/store)", True)
SSD = StorageDevice("flash SSD", 100_000.0, 512 * 2**30, 0.10,
                    "secondary", "OS system call", False)
HDD = StorageDevice("hard disk (HDD)", 10_000_000.0, 4 * 2**40, 0.02,
                    "secondary", "OS system call", False)
TAPE = StorageDevice("tape archive", 60_000_000_000.0, 12 * 2**40, 0.004,
                     "secondary", "OS system call (eventually)", False)

HIERARCHY_ORDER: tuple[StorageDevice, ...] = (
    REGISTERS, L1_CACHE, L2_CACHE, L3_CACHE, DRAM, SSD, HDD, TAPE,
)


def classify(device: StorageDevice) -> Category:
    """Primary storage is CPU-addressable; secondary needs the OS."""
    return device.category


def latency_ratio(slower: StorageDevice, faster: StorageDevice) -> float:
    """How many times slower — the numbers that shock students."""
    return slower.latency_ns / faster.latency_ns


def hierarchy_is_well_formed(devices: tuple[StorageDevice, ...] =
                             HIERARCHY_ORDER) -> bool:
    """Invariant: going down, latency and capacity rise, cost/GB falls."""
    for above, below in zip(devices, devices[1:]):
        if below.latency_ns < above.latency_ns:
            return False
        if below.capacity_bytes < above.capacity_bytes:
            return False
        if above.dollars_per_gb and below.dollars_per_gb > above.dollars_per_gb:
            return False
    return True


def comparison_table(devices: tuple[StorageDevice, ...] =
                     HIERARCHY_ORDER) -> str:
    """The lecture's device-comparison slide as text."""
    rows = []
    for d in devices:
        rows.append((d.name, f"{d.latency_ns:,.1f}",
                     f"{d.capacity_gb:,.3f}", f"{d.dollars_per_gb:,.3f}",
                     d.category, d.interface))
    return format_table(
        ["device", "latency (ns)", "capacity (GB)", "$/GB",
         "category", "interface"],
        rows, align_right=[False, True, True, True, False, False])
