"""The cache simulator: direct-mapped and set-associative, as taught.

Models exactly the machinery the caching homeworks trace by hand:
valid/dirty bits per line, tag comparison after address division,
LRU (and FIFO/random) replacement within a set, and the write policies
(write-back vs write-through, with or without write-allocate). Every
access returns a :class:`AccessResult` describing what happened, so a
homework checker can compare a student's hand trace step by step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Literal

from repro._util import is_power_of_two
from repro.errors import CacheConfigError
from repro.memory.address import AddressLayout, AddressParts

ReplacementPolicy = Literal["lru", "fifo", "random"]
WritePolicy = Literal["write-back", "write-through"]
AccessKind = Literal["load", "store"]


@dataclass(frozen=True)
class CacheConfig:
    """Cache geometry and policies.

    ``num_lines`` is the total line count; associativity 1 is direct
    mapped, ``num_lines`` fully associative.
    """
    num_lines: int = 64
    block_size: int = 32
    associativity: int = 1
    replacement: ReplacementPolicy = "lru"
    write_policy: WritePolicy = "write-back"
    write_allocate: bool = True
    address_bits: int = 32
    hit_time: int = 1           # cycles, for AMAT computations
    #: base seed for the random policy; each set derives its own stream
    #: from it, so victim choices depend only on that set's history
    seed: int = 0
    #: on a load miss, also fill the next sequential block ("past
    #: accesses as a predictor for future behavior", §III-A)
    prefetch_next_line: bool = False

    def __post_init__(self) -> None:
        if not is_power_of_two(self.num_lines):
            raise CacheConfigError("num_lines must be a power of two")
        if not is_power_of_two(self.associativity):
            raise CacheConfigError("associativity must be a power of two")
        if self.associativity > self.num_lines:
            raise CacheConfigError("associativity exceeds line count")

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    @property
    def capacity_bytes(self) -> int:
        return self.num_lines * self.block_size

    @property
    def layout(self) -> AddressLayout:
        return AddressLayout(self.address_bits, self.block_size,
                             self.num_sets)


@dataclass(slots=True)
class Line:
    """One cache line's metadata (the data bytes don't matter here)."""
    valid: bool = False
    tag: int = 0
    dirty: bool = False
    last_used: int = 0     # LRU timestamp
    loaded_at: int = 0     # FIFO timestamp


@dataclass(frozen=True, slots=True)
class AccessResult:
    """What one access did — the row of a homework trace table."""
    address: int
    kind: AccessKind
    parts: AddressParts
    hit: bool
    evicted_tag: int | None = None   # tag replaced, if any
    wrote_back: bool = False         # eviction flushed a dirty line
    bypassed: bool = False           # store miss without write-allocate

    @property
    def miss(self) -> bool:
        return not self.hit


@dataclass
class CacheStats:
    """Aggregated counters."""
    load_hits: int = 0
    load_misses: int = 0
    store_hits: int = 0
    store_misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    memory_writes: int = 0   # write-through traffic + writebacks
    prefetches: int = 0      # blocks filled speculatively

    @property
    def accesses(self) -> int:
        return (self.load_hits + self.load_misses
                + self.store_hits + self.store_misses)

    @property
    def hits(self) -> int:
        return self.load_hits + self.store_hits

    @property
    def misses(self) -> int:
        return self.load_misses + self.store_misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0


class Cache:
    """A single cache level."""

    def __init__(self, config: CacheConfig | None = None, *,
                 recorder=None, trace_name: str = "cache",
                 **kwargs) -> None:
        from repro.obs.recorder import coalesce
        self.config = config or CacheConfig(**kwargs)
        self.layout = self.config.layout
        self.sets: list[list[Line]] = [
            [Line() for _ in range(self.config.associativity)]
            for _ in range(self.config.num_sets)]
        self.stats = CacheStats()
        self._clock = 0
        self._set_rngs: dict[int, random.Random] = {}
        #: shared trace recorder (see repro.obs); NULL_RECORDER when off
        self.recorder = coalesce(recorder)
        self.trace_name = trace_name
        # trace handles, resolved on first traced access (the recorder
        # may be attached after construction by the bus wiring)
        self._ctr_series = None
        self._ev_series = None

    def _record_counters(self, *, evicted: bool = False) -> None:
        """Counter sample (+ eviction instant) after a traced access."""
        stats = self.stats
        if self._ctr_series is None:
            rec = self.recorder
            self._ctr_series = rec.counter_series(
                self.trace_name, ("hits", "misses", "evictions"),
                pid="memory", tid=self.trace_name, cat="cache")
            self._ev_series = rec.instant_series(
                "eviction", pid="memory", tid=self.trace_name,
                cat="cache")
        if evicted:
            self._ev_series.hit(self._clock)
        self._ctr_series.sample(
            self._clock, (stats.hits, stats.misses, stats.evictions))

    # -- core access ---------------------------------------------------------

    def access(self, address: int, kind: AccessKind = "load") -> AccessResult:
        """Perform one load/store; returns what happened (hit, eviction...)."""
        self._clock += 1
        parts = self.layout.divide(address)
        ways = self.sets[parts.index]

        # hit?
        for line in ways:
            if line.valid and line.tag == parts.tag:
                line.last_used = self._clock
                if kind == "store":
                    self.stats.store_hits += 1
                    if self.config.write_policy == "write-back":
                        line.dirty = True
                    else:
                        self.stats.memory_writes += 1
                else:
                    self.stats.load_hits += 1
                if self.recorder.enabled:
                    self._record_counters()
                return AccessResult(address, kind, parts, hit=True)

        # miss
        if kind == "store":
            self.stats.store_misses += 1
            if not self.config.write_allocate:
                self.stats.memory_writes += 1
                if self.recorder.enabled:
                    self._record_counters()
                return AccessResult(address, kind, parts, hit=False,
                                    bypassed=True)
        else:
            self.stats.load_misses += 1

        victim = self._choose_victim(ways, parts.index)
        evicted_tag = victim.tag if victim.valid else None
        wrote_back = False
        if victim.valid:
            self.stats.evictions += 1
            if victim.dirty:
                wrote_back = True
                self.stats.writebacks += 1
                self.stats.memory_writes += 1
        victim.valid = True
        victim.tag = parts.tag
        victim.last_used = self._clock
        victim.loaded_at = self._clock
        victim.dirty = False
        if kind == "store":
            if self.config.write_policy == "write-back":
                victim.dirty = True
            else:
                self.stats.memory_writes += 1
        if self.config.prefetch_next_line and kind == "load":
            self._prefetch(address + self.config.block_size)
        if self.recorder.enabled:
            self._record_counters(evicted=evicted_tag is not None)
        return AccessResult(address, kind, parts, hit=False,
                            evicted_tag=evicted_tag, wrote_back=wrote_back)

    def _prefetch(self, address: int) -> None:
        """Fill a block without counting it as a demand access."""
        if address >= (1 << self.config.address_bits):
            return
        parts = self.layout.divide(address)
        ways = self.sets[parts.index]
        for line in ways:
            if line.valid and line.tag == parts.tag:
                return   # already resident
        victim = self._choose_victim(ways, parts.index)
        if victim.valid:
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
                self.stats.memory_writes += 1
        victim.valid = True
        victim.tag = parts.tag
        victim.dirty = False
        # prefetched lines enter cold (LRU within the set), so a useless
        # prefetch is the first thing evicted
        victim.loaded_at = self._clock
        victim.last_used = 0
        self.stats.prefetches += 1

    def _set_rng(self, index: int) -> random.Random:
        """The ``random`` policy's per-set RNG stream.

        Each set draws victims from its own stream seeded by
        ``(config.seed, set index)``, so the k-th replacement in a set
        picks the same way no matter how accesses to *other* sets are
        interleaved — scalar, :meth:`access_many`, and the vectorized
        per-set engine all reproduce identical victim choices.
        """
        index = int(index)     # numpy ints can't seed random.Random
        rng = self._set_rngs.get(index)
        if rng is None:
            rng = self._set_rngs[index] = random.Random(
                self.config.seed * 1_000_003 + index)
        return rng

    def _choose_victim(self, ways: list[Line], index: int) -> Line:
        for line in ways:
            if not line.valid:
                return line
        policy = self.config.replacement
        if policy == "lru":
            return min(ways, key=lambda l: l.last_used)
        if policy == "fifo":
            return min(ways, key=lambda l: l.loaded_at)
        return ways[self._set_rng(index).randrange(len(ways))]

    # -- drivers -----------------------------------------------------------------

    def run_trace(self, accesses: Iterable[int | tuple[int, AccessKind]]
                  ) -> list[AccessResult]:
        """Run a whole trace; items are addresses or (address, kind)."""
        results = []
        for item in accesses:
            if isinstance(item, tuple):
                addr, kind = item
            else:
                addr, kind = item, "load"
            results.append(self.access(addr, kind))
        return results

    def access_many(self, accesses: Iterable[int | tuple[int, AccessKind]]
                    ) -> CacheStats:
        """Run a whole trace aggregating stats only — the fast path.

        Exactly the state transitions :meth:`access` makes (same hits,
        evictions, clock, RNG draws — tests assert bit-equality with the
        step-by-step API), but without building an :class:`AccessResult`
        or :class:`~repro.memory.address.AddressParts` per access, so
        long benchmark traces don't churn a dataclass per address.
        Returns the cache's cumulative :class:`CacheStats`. Keep using
        :meth:`access`/:meth:`run_trace` when the per-access rows matter
        (homework checkers).
        """
        config = self.config
        stats = self.stats
        sets = self.sets
        offset_bits = self.layout.offset_bits
        tag_shift = offset_bits + self.layout.index_bits
        index_mask = config.num_sets - 1
        address_limit = 1 << config.address_bits
        write_back = config.write_policy == "write-back"
        write_allocate = config.write_allocate
        prefetch = config.prefetch_next_line
        block_size = config.block_size
        choose_victim = self._choose_victim
        clock = self._clock
        for item in accesses:
            if isinstance(item, tuple):
                address, kind = item
            else:
                address, kind = item, "load"
            clock += 1     # ticks before validation, matching access()
            if not 0 <= address < address_limit:
                self._clock = clock
                raise CacheConfigError(
                    f"address {address:#x} exceeds "
                    f"{config.address_bits} bits")
            tag = address >> tag_shift
            set_index = (address >> offset_bits) & index_mask
            ways = sets[set_index]

            for line in ways:
                if line.valid and line.tag == tag:
                    line.last_used = clock
                    if kind == "store":
                        stats.store_hits += 1
                        if write_back:
                            line.dirty = True
                        else:
                            stats.memory_writes += 1
                    else:
                        stats.load_hits += 1
                    break
            else:
                if kind == "store":
                    stats.store_misses += 1
                    if not write_allocate:
                        stats.memory_writes += 1
                        continue
                else:
                    stats.load_misses += 1
                victim = choose_victim(ways, set_index)
                if victim.valid:
                    stats.evictions += 1
                    if victim.dirty:
                        stats.writebacks += 1
                        stats.memory_writes += 1
                victim.valid = True
                victim.tag = tag
                victim.last_used = clock
                victim.loaded_at = clock
                victim.dirty = False
                if kind == "store":
                    if write_back:
                        victim.dirty = True
                    else:
                        stats.memory_writes += 1
                if prefetch and kind == "load":
                    self._clock = clock
                    self._prefetch(address + block_size)
        self._clock = clock
        if self.recorder.enabled:
            self._record_counters()     # one sample per batch
        return stats

    def simulate_trace(self, accesses) -> CacheStats:
        """Run a whole trace through the vectorized engine.

        Same cumulative :class:`CacheStats` — and the same final set
        state, clock, and (for the ``random`` policy) victim choices —
        as :meth:`access`/:meth:`access_many`, but computed in numpy
        batch per set instead of per access, so 100k-address traces run
        at array speed (see :mod:`repro.memory.vectorcache` and bench
        E14). Accepts the same trace shapes as :meth:`run_trace` plus
        plain numpy address arrays.

        Prefetching caches fall back to :meth:`access_many` (a prefetch
        reaches into a *different* set, which breaks the engine's
        per-set independence). Unlike the scalar paths, the whole trace
        is validated against ``address_bits`` before any state changes.
        """
        from repro.memory import vectorcache
        if self.config.prefetch_next_line:
            return self.access_many(accesses)
        addrs, stores = vectorcache.as_trace_arrays(accesses)
        vectorcache.simulate_arrays(self, addrs, stores)
        if self.recorder.enabled:
            self._record_counters()     # one sample per batch
        return self.stats

    def flush(self) -> int:
        """Write back all dirty lines; returns how many were flushed."""
        count = 0
        for ways in self.sets:
            for line in ways:
                if line.valid and line.dirty:
                    line.dirty = False
                    count += 1
                    self.stats.writebacks += 1
                    self.stats.memory_writes += 1
        return count

    def reset_stats(self) -> None:
        """Zero the counters without touching cache contents."""
        self.stats = CacheStats()

    # -- inspection ---------------------------------------------------------------

    def contains(self, address: int) -> bool:
        """True if the block holding ``address`` is resident."""
        parts = self.layout.divide(address)
        return any(l.valid and l.tag == parts.tag
                   for l in self.sets[parts.index])

    def set_state(self, index: int) -> list[tuple[bool, int, bool]]:
        """(valid, tag, dirty) per way — what students draw per step."""
        return [(l.valid, l.tag, l.dirty) for l in self.sets[index]]

    def render_set(self, index: int) -> str:
        """One set's per-way V/D/tag state as text (the homework drawing)."""
        rows = []
        for way, line in enumerate(self.sets[index]):
            rows.append(f"set {index} way {way}: "
                        f"V={int(line.valid)} D={int(line.dirty)} "
                        f"tag={line.tag:#x}" if line.valid else
                        f"set {index} way {way}: V=0")
        return "\n".join(rows)


def amat(levels: list[Cache], memory_latency: int) -> float:
    """Average memory access time through a cache hierarchy.

    AMAT = hit_time + miss_rate × (next level's AMAT), using each
    level's observed stats. Levels are ordered L1 first.
    """
    time = float(memory_latency)
    for cache in reversed(levels):
        time = cache.config.hit_time + cache.stats.miss_rate * time
    return time
