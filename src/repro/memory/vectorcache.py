"""Vectorized trace-driven cache simulation — the batch fast path.

The scalar :class:`~repro.memory.cache.Cache` advances one access per
Python iteration, which dominates every whole-trace cache benchmark.
This engine runs the same simulation at numpy speed: addresses are
decomposed tag/index/offset in one pass
(:meth:`~repro.memory.address.AddressLayout.divide_many`), accesses are
grouped by set, and the per-set sequences advance in lockstep *rounds*
— round ``k`` applies every set's ``k``-th access simultaneously — so
the Python-level loop runs ``max accesses per set`` times instead of
``len(trace)`` times. Sets are mutually independent in the scalar
model, so within-set order (the only order that matters) is preserved
exactly.

Exactness is the design constraint, not an aspiration: LRU and FIFO
victims fall out of the same timestamp comparisons the scalar engine
makes (stamps *are* the scalar clock values), and the ``random`` policy
draws from the same per-set seeded streams (``Cache._set_rng``), so
hits, misses, evictions, writebacks, memory writes, final set state,
and the clock are all bit-identical to folding :meth:`Cache.access`
over the trace. The scalar engine stays the behavioral oracle; the
randomized tests in ``tests/memory/test_vectorcache.py`` pin every
replacement/write-policy combination to it.

The one unsupported configuration is ``prefetch_next_line`` — a
prefetch fills a *different* set, breaking per-set independence —
callers (``Cache.simulate_trace``, ``CacheHierarchy.simulate_trace``)
fall back to the scalar paths for it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import CacheConfigError

if TYPE_CHECKING:   # pragma: no cover - import cycle guard
    from repro.memory.cache import Cache


def as_trace_arrays(trace) -> tuple[np.ndarray, np.ndarray]:
    """Normalize any trace shape to ``(addresses, is_store)`` arrays.

    Accepts what :meth:`Cache.run_trace` accepts — an iterable of
    addresses or ``(address, kind)`` pairs — plus plain numpy address
    arrays (all loads). Returns int64 addresses and a bool store mask.
    """
    if isinstance(trace, np.ndarray):
        return trace.astype(np.int64, copy=False), \
            np.zeros(len(trace), dtype=bool)
    if not isinstance(trace, (list, tuple)):
        trace = list(trace)
    n = len(trace)
    addrs = np.empty(n, dtype=np.int64)
    stores = np.zeros(n, dtype=bool)
    try:
        # homogeneous address lists convert in one shot
        addrs[:] = trace
        return addrs, stores
    except (TypeError, ValueError):
        pass
    try:
        # homogeneous (address, kind) lists: the kind strings are
        # interned, so the comparisons are pointer checks and the two
        # comprehensions convert in one numpy call each
        addrs[:] = [item[0] for item in trace]
        stores[:] = [item[1] == "store" for item in trace]
        return addrs, stores
    except (TypeError, ValueError, IndexError):
        pass
    for i, item in enumerate(trace):   # mixed addresses and pairs
        if isinstance(item, tuple):
            addrs[i] = item[0]
            stores[i] = item[1] == "store"
        else:
            addrs[i] = item
    return addrs, stores


def simulate_trace(cache: Cache, trace) -> "np.ndarray":
    """Vectorized whole-trace simulation; returns the per-access hit mask.

    Mutates ``cache`` (stats, line state, clock) exactly as the scalar
    engine would. Most callers want :meth:`Cache.simulate_trace`, which
    returns the cumulative stats; this function additionally exposes
    which accesses hit — what a hierarchy needs to forward misses.
    """
    addrs, stores = as_trace_arrays(trace)
    return simulate_arrays(cache, addrs, stores)


def simulate_arrays(cache: Cache, addrs: np.ndarray,
                    stores: np.ndarray) -> np.ndarray:
    """Core engine over pre-normalized arrays; returns the hit mask."""
    config = cache.config
    if config.prefetch_next_line:
        raise CacheConfigError(
            "the vectorized engine cannot simulate prefetch_next_line "
            "(prefetches cross set boundaries); use Cache.access_many")
    n = len(addrs)
    hitmask = np.zeros(n, dtype=bool)
    if n == 0:
        return hitmask

    layout = cache.layout
    tags, set_ids, _ = layout.divide_many(addrs)    # validates the trace
    assoc = config.associativity
    write_back = config.write_policy == "write-back"
    write_allocate = config.write_allocate
    replacement = config.replacement

    # -- ingest the scalar per-line state into [num_sets, assoc] arrays
    tag_a = np.array([[l.tag for l in ways] for ways in cache.sets],
                     dtype=np.int64)
    valid_a = np.array([[l.valid for l in ways] for ways in cache.sets],
                       dtype=bool)
    dirty_a = np.array([[l.dirty for l in ways] for ways in cache.sets],
                       dtype=bool)
    used_a = np.array([[l.last_used for l in ways] for ways in cache.sets],
                      dtype=np.int64)
    loaded_a = np.array([[l.loaded_at for l in ways] for ways in cache.sets],
                        dtype=np.int64)

    # -- group accesses by set, then slice into lockstep rounds: the k-th
    # access of every set executes together, preserving within-set order
    order = np.argsort(set_ids, kind="stable")
    sorted_sets = set_ids[order]
    starts = np.flatnonzero(
        np.r_[True, sorted_sets[1:] != sorted_sets[:-1]])
    counts = np.diff(np.r_[starts, n])

    # stamps are the scalar clock values: clock0 + 1-based trace position
    base_clock = cache._clock
    stamps = base_clock + 1 + np.arange(n, dtype=np.int64)
    evict_m = np.zeros(n, dtype=bool)
    wb_m = np.zeros(n, dtype=bool)
    any_stores = bool(stores.any())

    if assoc == 1:
        # direct-mapped closed form: the resident tag after any access is
        # simply the tag of the most recent *allocating* access (any
        # access under write-allocate, loads otherwise), so residency,
        # hits, evictions, and dirty intervals all fall out of segmented
        # forward-fills and prefix sums — no per-round loop at all
        tag1, valid1 = tag_a[:, 0], valid_a[:, 0]
        dirty1, used1, loaded1 = dirty_a[:, 0], used_a[:, 0], loaded_a[:, 0]
        t_s = tags[order]
        st_s = stores[order]
        stamp_s = stamps[order]
        sid_s = sorted_sets
        gstart = np.repeat(starts, counts)      # group start of each pos
        pos = np.arange(n, dtype=np.int64)

        def last_before(mask):
            """Exclusive segmented forward-fill: for each sorted position,
            the latest earlier position (same group) where mask holds,
            or -1."""
            ff = np.maximum.accumulate(np.where(mask, pos, -1))
            excl = np.r_[np.int64(-1), ff[:-1]]
            return np.where(excl >= gstart, excl, -1)

        alloc = (np.ones(n, dtype=bool) if write_allocate or not any_stores
                 else ~st_s)
        ra = last_before(alloc)
        resident = np.where(ra >= 0, t_s[np.maximum(ra, 0)], tag1[sid_s])
        valid_before = (ra >= 0) | valid1[sid_s]
        hit_s = valid_before & (resident == t_s)
        fill_s = ~hit_s & alloc
        evict_s = fill_s & valid_before

        # dirty contributions: store hits, plus the fill's own store
        # under write-allocate (the scalar fill seeds dirty = store)
        dirty_src = st_s & (hit_s | fill_s) if write_back and any_stores \
            else np.zeros(n, dtype=bool)
        ds = np.r_[np.int64(0), np.cumsum(dirty_src)]
        pf = last_before(fill_s)
        lower = np.where(pf >= 0, pf, gstart)
        dirty_before = ((ds[pos] - ds[lower] > 0)
                        | ((pf < 0) & dirty1[sid_s]))
        wb_s = evict_s & dirty_before if write_back \
            else np.zeros(n, dtype=bool)

        hitmask[order] = hit_s
        evict_m[order] = evict_s
        wb_m[order] = wb_s

        # -- final per-set state from the last positions of each group
        def last_in_group(mask, ends):
            ff = np.maximum.accumulate(np.where(mask, pos, -1))
            last = ff[ends]
            return np.where(last >= starts, last, -1)

        ends = starts + counts - 1
        sids = sid_s[starts]
        la = last_in_group(alloc, ends)
        tag1[sids] = np.where(la >= 0, t_s[np.maximum(la, 0)], tag1[sids])
        valid1[sids] |= la >= 0
        lf = last_in_group(fill_s, ends)
        loaded1[sids] = np.where(lf >= 0, stamp_s[np.maximum(lf, 0)],
                                 loaded1[sids])
        touched = hit_s | fill_s        # bypassed store misses touch nothing
        lt = last_in_group(touched, ends)
        used1[sids] = np.where(lt >= 0, stamp_s[np.maximum(lt, 0)],
                               used1[sids])
        lower_end = np.where(lf >= 0, lf, starts)
        dirty1[sids] = ((ds[ends + 1] - ds[lower_end] > 0)
                        | ((lf < 0) & dirty1[sids]))
    elif int(counts.max()) * 8 > n:
        # skewed trace: a few hot sets absorb most accesses (a compiled
        # inner loop is the extreme case — num_rounds ≈ n), so lockstep
        # rounds degenerate into per-access numpy calls. Replay
        # sequentially over plain ints instead; same simulation, no
        # per-round overhead, throughput independent of skew.
        _simulate_seq(cache, config, tags, set_ids, stores, base_clock,
                      hitmask, evict_m, wb_m,
                      tag_a, valid_a, dirty_a, used_a, loaded_a)
    else:
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(n) - np.repeat(starts, counts)
        round_order = np.argsort(rank, kind="stable")
        num_rounds = int(counts.max())
        bounds = np.searchsorted(rank[round_order],
                                 np.arange(num_rounds + 1))
        for k in range(num_rounds):
            p = round_order[bounds[k]:bounds[k + 1]]    # original positions
            s = set_ids[p]                              # unique in a round
            t = tags[p]
            st = stores[p] if any_stores else None
            stamp = stamps[p]

            hit_ways = valid_a[s] & (tag_a[s] == t[:, None])
            hit = hit_ways.any(axis=1)
            way = hit_ways.argmax(axis=1)
            hitmask[p] = hit

            hp = np.flatnonzero(hit)
            if hp.size:
                used_a[s[hp], way[hp]] = stamp[hp]
                if write_back and any_stores:
                    sh = np.flatnonzero(hit & st)
                    if sh.size:
                        dirty_a[s[sh], way[sh]] = True

            if any_stores and not write_allocate:
                fill = np.flatnonzero(~hit & ~st)
            else:
                fill = np.flatnonzero(~hit)
            if fill.size:
                fs = s[fill]
                invalid = ~valid_a[fs]
                has_invalid = invalid.any(axis=1)
                victim = invalid.argmax(axis=1)         # first invalid way
                full = np.flatnonzero(~has_invalid)
                if full.size:
                    if replacement == "lru":
                        victim[full] = used_a[fs[full]].argmin(axis=1)
                    elif replacement == "fifo":
                        victim[full] = loaded_a[fs[full]].argmin(axis=1)
                    else:   # per-set streams: order across sets irrelevant
                        victim[full] = [
                            cache._set_rng(int(si)).randrange(assoc)
                            for si in fs[full]]
                victim_valid = valid_a[fs, victim]
                evict_m[p[fill]] = victim_valid
                if write_back:
                    wb_m[p[fill]] = victim_valid & dirty_a[fs, victim]
                tag_a[fs, victim] = t[fill]
                valid_a[fs, victim] = True
                used_a[fs, victim] = stamp[fill]
                loaded_a[fs, victim] = stamp[fill]
                dirty_a[fs, victim] = (st[fill] & write_back if any_stores
                                       else False)

    # -- fold counters (identical to the scalar accounting; memory_writes
    # reduces to: writebacks, + every store under write-through, + every
    # bypassed store miss under no-write-allocate)
    stats = cache.stats
    stats.load_hits += int((hitmask & ~stores).sum())
    stats.store_hits += int((hitmask & stores).sum())
    stats.load_misses += int((~hitmask & ~stores).sum())
    store_misses = int((~hitmask & stores).sum())
    stats.store_misses += store_misses
    stats.evictions += int(evict_m.sum())
    writebacks = int(wb_m.sum())
    stats.writebacks += writebacks
    if write_back:
        stats.memory_writes += writebacks
        if not write_allocate:
            stats.memory_writes += store_misses
    else:
        stats.memory_writes += int(stores.sum())

    # -- write the final state back so the step-by-step APIs can continue
    # from exactly where a batch left off
    for si, ways in enumerate(cache.sets):
        for wi, line in enumerate(ways):
            line.tag = int(tag_a[si, wi])
            line.valid = bool(valid_a[si, wi])
            line.dirty = bool(dirty_a[si, wi])
            line.last_used = int(used_a[si, wi])
            line.loaded_at = int(loaded_a[si, wi])
    cache._clock = base_clock + n
    return hitmask


def _simulate_seq(cache, config, tags, set_ids, stores, base_clock,
                  hitmask, evict_m, wb_m,
                  tag_a, valid_a, dirty_a, used_a, loaded_a) -> None:
    """Exact sequential replay over plain ints — the skewed-trace path.

    The same per-access simulation as :meth:`Cache.access`, restated
    over Python lists (no line objects, no per-access stats or result
    objects), mutating the ingested state arrays in place. Victim
    selection ties break identically (first minimum / first invalid
    way), and the ``random`` policy draws from the same per-set streams
    in trace order, so the outcome is bit-identical to both the scalar
    engine and the lockstep rounds.
    """
    assoc = config.associativity
    write_back = config.write_policy == "write-back"
    write_allocate = config.write_allocate
    lru = config.replacement == "lru"
    fifo = config.replacement == "fifo"
    rng = cache._set_rng
    ways = range(assoc)
    tag_l = tag_a.tolist()
    valid_l = valid_a.tolist()
    dirty_l = dirty_a.tolist()
    used_l = used_a.tolist()
    loaded_l = loaded_a.tolist()
    hits = hitmask.tolist()
    ev = evict_m.tolist()
    wb = wb_m.tolist()
    clock = base_clock
    for i, (si, tg, st) in enumerate(zip(set_ids.tolist(), tags.tolist(),
                                         stores.tolist())):
        clock += 1
        vs = valid_l[si]
        ts = tag_l[si]
        way = -1
        for w in ways:
            if vs[w] and ts[w] == tg:
                way = w
                break
        if way >= 0:
            hits[i] = True
            used_l[si][way] = clock
            if st and write_back:
                dirty_l[si][way] = True
            continue
        if st and not write_allocate:
            continue                       # bypassed store miss
        victim = -1
        for w in ways:
            if not vs[w]:
                victim = w                 # first invalid way
                break
        if victim < 0:
            if lru:
                u = used_l[si]
                victim = u.index(min(u))
            elif fifo:
                ld = loaded_l[si]
                victim = ld.index(min(ld))
            else:
                victim = rng(si).randrange(assoc)
            ev[i] = True
            if write_back and dirty_l[si][victim]:
                wb[i] = True
        ts[victim] = tg
        vs[victim] = True
        used_l[si][victim] = clock
        loaded_l[si][victim] = clock
        dirty_l[si][victim] = st and write_back
    tag_a[:] = tag_l
    valid_a[:] = valid_l
    dirty_a[:] = dirty_l
    used_a[:] = used_l
    loaded_a[:] = loaded_l
    hitmask[:] = hits
    evict_m[:] = ev
    wb_m[:] = wb
