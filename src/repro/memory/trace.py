"""Memory-access trace generators: the course's loop-nest exercises.

The caching module ends with "an interactive exercise in which two code
blocks containing nested for loops access memory in different stride
patterns" (§III-A). These generators produce the address streams those
code blocks make, so the cache simulator can quantify the difference —
plus adapters to replay traces captured from a live
:class:`~repro.clib.address_space.AddressSpace`.
"""

from __future__ import annotations

import random
from typing import Iterator

import numpy as np

from repro.clib.address_space import AddressSpace


def row_major_traversal(rows: int, cols: int, *, elem_size: int = 4,
                        base: int = 0) -> list[int]:
    """``for i: for j: a[i][j]`` over a C (row-major) 2-D array.

    This is the cache-friendly order: consecutive accesses are
    ``elem_size`` bytes apart.
    """
    idx = np.arange(rows * cols, dtype=np.int64)
    return list(base + idx * elem_size)


def column_major_traversal(rows: int, cols: int, *, elem_size: int = 4,
                           base: int = 0) -> list[int]:
    """``for j: for i: a[i][j]`` — strides through memory by a whole row."""
    i, j = np.meshgrid(np.arange(rows, dtype=np.int64),
                       np.arange(cols, dtype=np.int64), indexing="xy")
    addrs = base + (i * cols + j) * elem_size
    return list(addrs.ravel())


def stride_sweep(count: int, stride_bytes: int, *, base: int = 0,
                 repeat: int = 1) -> list[int]:
    """``count`` accesses ``stride_bytes`` apart, repeated ``repeat`` times."""
    one_pass = base + np.arange(count, dtype=np.int64) * stride_bytes
    return list(np.tile(one_pass, repeat))


def random_access(count: int, span_bytes: int, *, elem_size: int = 4,
                  base: int = 0, seed: int = 0) -> list[int]:
    """Uniformly random element accesses — the locality-free baseline."""
    rng = random.Random(seed)
    n_elems = max(1, span_bytes // elem_size)
    return [base + rng.randrange(n_elems) * elem_size for _ in range(count)]


def matrix_sum_rowwise(n: int, *, elem_size: int = 4,
                       base: int = 0) -> list[int]:
    """The 'good' code block from the in-class exercise (n×n sum by rows)."""
    return row_major_traversal(n, n, elem_size=elem_size, base=base)


def matrix_sum_columnwise(n: int, *, elem_size: int = 4,
                          base: int = 0) -> list[int]:
    """The 'bad' code block (same work, column order)."""
    return column_major_traversal(n, n, elem_size=elem_size, base=base)


def repeated_working_set(set_bytes: int, passes: int, *, elem_size: int = 4,
                         base: int = 0) -> list[int]:
    """Sweep a working set repeatedly — temporal locality knob.

    If the set fits in cache, every pass after the first hits.
    """
    n = max(1, set_bytes // elem_size)
    addrs = base + np.arange(n, dtype=np.int64) * elem_size
    return list(np.tile(addrs, passes))


def from_address_space(space: AddressSpace,
                       kinds: tuple[str, ...] = ("load", "store"),
                       ) -> list[tuple[int, str]]:
    """Adapt a recorded AddressSpace trace for the cache simulator.

    Returns (address, kind) pairs with kind in {'load','store'}; fetches
    are mapped to loads when requested.
    """
    out: list[tuple[int, str]] = []
    for acc in space.trace:
        if acc.kind in kinds:
            out.append((acc.address, acc.kind))
        elif acc.kind == "fetch" and "fetch" in kinds:
            out.append((acc.address, "load"))
    return out


def interleave(*traces: list[int]) -> Iterator[int]:
    """Round-robin merge of traces (a crude multi-thread access pattern)."""
    iters = [iter(t) for t in traces]
    alive = list(iters)
    while alive:
        next_alive = []
        for it in alive:
            try:
                yield next(it)
                next_alive.append(it)
            except StopIteration:
                pass
        alive = next_alive
