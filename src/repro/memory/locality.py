"""Locality metrics: making "temporal" and "spatial" measurable.

After the library-books exercise, the course "formalize[s] the notion of
*locality* and differentiate[s] how future access predictions might be
either temporal or spatial" (§III-A). These metrics quantify both for an
address trace: LRU reuse distances for temporal locality, block-reuse and
stride structure for spatial locality.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass


def reuse_distances(addresses: list[int], *, granularity: int = 1
                    ) -> list[int | None]:
    """LRU stack distance per access (None for first-ever touches).

    Distance k means: k distinct other items were touched since the last
    access to this one. A cache of associativity ≥ k+1 (fully associative,
    LRU) would hit. ``granularity`` coarsens addresses to blocks.
    """
    stack: list[int] = []   # most recent at the end
    out: list[int | None] = []
    for addr in addresses:
        key = addr // granularity
        try:
            pos = len(stack) - 1 - stack[::-1].index(key)
        except ValueError:
            out.append(None)
            stack.append(key)
            continue
        out.append(len(stack) - 1 - pos)
        stack.pop(pos)
        stack.append(key)
    return out


def temporal_locality_score(addresses: list[int], *, window: int = 32,
                            granularity: int = 1) -> float:
    """Fraction of accesses that re-touch something seen within ``window``
    distinct items. 1.0 = perfect temporal locality, 0.0 = none."""
    if not addresses:
        return 0.0
    dists = reuse_distances(addresses, granularity=granularity)
    good = sum(1 for d in dists if d is not None and d < window)
    return good / len(addresses)


def spatial_locality_score(addresses: list[int], *, block_size: int = 64
                           ) -> float:
    """Fraction of accesses landing in the same block as the previous one
    or an adjacent block — the course's 'nearby next' intuition."""
    if len(addresses) < 2:
        return 0.0
    good = 0
    prev_block = addresses[0] // block_size
    for addr in addresses[1:]:
        block = addr // block_size
        if abs(block - prev_block) <= 1:
            good += 1
        prev_block = block
    return good / (len(addresses) - 1)


def stride_histogram(addresses: list[int]) -> Counter:
    """Histogram of consecutive address deltas — loop structure shows up
    as a single dominant stride."""
    return Counter(b - a for a, b in zip(addresses, addresses[1:]))


def dominant_stride(addresses: list[int]) -> int | None:
    """The most common consecutive-access delta, or None if no pairs."""
    hist = stride_histogram(addresses)
    if not hist:
        return None
    return hist.most_common(1)[0][0]


@dataclass(frozen=True)
class LocalityReport:
    """Both scores plus supporting structure, for the lecture demo."""
    temporal: float
    spatial: float
    dominant_stride: int | None
    unique_blocks: int
    accesses: int

    def render(self) -> str:
        return (f"accesses={self.accesses} unique_blocks={self.unique_blocks}\n"
                f"temporal locality (window 32): {self.temporal:.3f}\n"
                f"spatial locality (64B blocks): {self.spatial:.3f}\n"
                f"dominant stride: {self.dominant_stride}")


def analyze(addresses: list[int], *, block_size: int = 64,
            window: int = 32) -> LocalityReport:
    """Compute the full locality report for a trace."""
    blocks = {a // block_size for a in addresses}
    return LocalityReport(
        temporal=temporal_locality_score(addresses, window=window),
        spatial=spatial_locality_score(addresses, block_size=block_size),
        dominant_stride=dominant_stride(addresses),
        unique_blocks=len(blocks),
        accesses=len(addresses))


def entropy_of_blocks(addresses: list[int], *, block_size: int = 64) -> float:
    """Shannon entropy (bits) of the block-touch distribution.

    Low entropy = concentrated working set (good locality); high entropy
    = scattered accesses. A second, scale-free lens on the same idea.
    """
    if not addresses:
        return 0.0
    counts = Counter(a // block_size for a in addresses)
    n = len(addresses)
    return -sum((c / n) * math.log2(c / n) for c in counts.values())
