"""Address division: tag / index / offset.

"As this is a frequent source of confusion for students, we pay
particular attention to how various cache parameters like the block size
and number of lines affect address division" (§III-A, *Caching*). This
module is that lesson as code: a :class:`AddressLayout` computed from the
cache geometry, the division itself, and a rendering that shows the bit
fields the way homework solutions draw them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import is_power_of_two, log2_exact
from repro.errors import CacheConfigError


@dataclass(frozen=True, slots=True)
class AddressParts:
    """One divided address."""
    tag: int
    index: int
    offset: int


@dataclass(frozen=True)
class AddressLayout:
    """Bit-field widths implied by a cache geometry.

    ``num_sets`` is the number of *sets* (for a direct-mapped cache, that
    equals the number of lines).
    """
    address_bits: int
    block_size: int
    num_sets: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.block_size):
            raise CacheConfigError(
                f"block size {self.block_size} must be a power of two")
        if not is_power_of_two(self.num_sets):
            raise CacheConfigError(
                f"set count {self.num_sets} must be a power of two")
        if self.offset_bits + self.index_bits > self.address_bits:
            raise CacheConfigError("cache larger than the address space")

    @property
    def offset_bits(self) -> int:
        return log2_exact(self.block_size)

    @property
    def index_bits(self) -> int:
        return log2_exact(self.num_sets)

    @property
    def tag_bits(self) -> int:
        return self.address_bits - self.index_bits - self.offset_bits

    def divide(self, address: int) -> AddressParts:
        if not 0 <= address < (1 << self.address_bits):
            raise CacheConfigError(
                f"address {address:#x} exceeds {self.address_bits} bits")
        offset = address & (self.block_size - 1)
        index = (address >> self.offset_bits) & (self.num_sets - 1)
        tag = address >> (self.offset_bits + self.index_bits)
        return AddressParts(tag, index, offset)

    def divide_many(self, addresses):
        """Vectorized :meth:`divide`: one numpy pass over a whole trace.

        ``addresses`` is any int array-like; returns ``(tags, indexes,
        offsets)`` int64 arrays. Raises on the first out-of-range
        address, like :meth:`divide` — but before returning anything.
        """
        import numpy as np
        addrs = np.asarray(addresses, dtype=np.int64)
        if addrs.size:
            bad = (addrs < 0) | (addrs >= (1 << self.address_bits))
            if bad.any():
                first = int(addrs[bad][0])
                raise CacheConfigError(
                    f"address {first:#x} exceeds {self.address_bits} bits")
        offsets = addrs & (self.block_size - 1)
        indexes = (addrs >> self.offset_bits) & (self.num_sets - 1)
        tags = addrs >> (self.offset_bits + self.index_bits)
        return tags, indexes, offsets

    def reassemble(self, parts: AddressParts) -> int:
        """Inverse of :meth:`divide` (used by the property tests)."""
        return ((parts.tag << (self.offset_bits + self.index_bits))
                | (parts.index << self.offset_bits)
                | parts.offset)

    def block_address(self, address: int) -> int:
        """The address of the block containing ``address``."""
        return address & ~(self.block_size - 1)

    def render(self, address: int) -> str:
        """The homework drawing: the address split into labelled fields."""
        parts = self.divide(address)
        tag_s = format(parts.tag, f"0{max(1, self.tag_bits)}b")
        idx_s = (format(parts.index, f"0{self.index_bits}b")
                 if self.index_bits else "")
        off_s = format(parts.offset, f"0{self.offset_bits}b")
        fields = [f"tag={tag_s}"]
        if idx_s:
            fields.append(f"index={idx_s}")
        fields.append(f"offset={off_s}")
        return (f"{address:#010x} -> " + " | ".join(fields)
                + f"  (t:{self.tag_bits} i:{self.index_bits} "
                  f"o:{self.offset_bits} bits)")
