"""Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).

The recorder's events map 1:1 onto the Trace Event Format's ``B``/``E``/
``X``/``i``/``C`` phases. Track names — ``("isa", "cpu")``,
``("memory", "L1")``, ``("threads", "core 0")`` — become numbered
pid/tid pairs with ``process_name``/``thread_name`` metadata events, so
each simulator gets its own process lane and each cache level / core /
kernel process its own thread row.

:func:`validate` checks the invariants the acceptance gate (and the CI
smoke job) cares about: every event carries ``ph``/``ts``/``pid``/
``tid``/``name``, ``X`` events carry a non-negative ``dur``, and every
``B`` has a matching ``E`` on the same track (proper nesting, names
matched on close).
"""

from __future__ import annotations

import json
from typing import IO, Any

from repro.errors import ObsError
from repro.obs.recorder import NullRecorder, TraceRecorder

#: keys every exported event must carry (the acceptance-criteria set)
REQUIRED_KEYS = ("ph", "ts", "pid", "tid", "name")

_VALID_PHASES = {"B", "E", "X", "i", "C", "M"}


def _track_numbers(events) -> tuple[dict[str, int],
                                    dict[tuple[str, str], int]]:
    """Stable pid/tid numbering in order of first appearance."""
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    for ev in events:
        if ev.pid not in pids:
            pids[ev.pid] = len(pids) + 1
        key = (ev.pid, ev.tid)
        if key not in tids:
            tids[key] = len([t for t in tids if t[0] == ev.pid]) + 1
    return pids, tids


def to_chrome(recorder: TraceRecorder | NullRecorder) -> dict[str, Any]:
    """Render the recorder's buffer as a Trace Event Format document."""
    events = recorder.events()
    pids, tids = _track_numbers(events)
    out: list[dict[str, Any]] = []
    # metadata first: name every process and thread lane
    for name, pid in pids.items():
        out.append({"ph": "M", "ts": 0, "pid": pid, "tid": 0,
                    "name": "process_name", "args": {"name": name}})
    for (pname, tname), tid in tids.items():
        out.append({"ph": "M", "ts": 0, "pid": pids[pname], "tid": tid,
                    "name": "thread_name", "args": {"name": tname}})
    for ev in events:
        rec: dict[str, Any] = {
            "ph": ev.ph, "ts": ev.ts, "name": ev.name,
            "pid": pids[ev.pid], "tid": tids[(ev.pid, ev.tid)],
        }
        if ev.ph == "X":
            rec["dur"] = ev.dur
        if ev.ph == "i":
            rec["s"] = "t"          # instant scoped to its thread
        if ev.cat is not None:
            rec["cat"] = ev.cat
        if ev.args is not None:
            rec["args"] = ev.args
        out.append(rec)
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "dropped_events": recorder.dropped,
        },
    }


def validate(doc: dict[str, Any]) -> int:
    """Check a trace document against the trace-event schema subset.

    Returns the number of events validated; raises :class:`ObsError`
    describing the first violation. This is what the CI smoke job runs
    over ``python -m repro trace`` output.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ObsError("trace document must be an object with traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ObsError("traceEvents must be an array")
    open_spans: dict[tuple[Any, Any], list[str]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ObsError(f"event #{i} is not an object")
        for key in REQUIRED_KEYS:
            if key not in ev:
                raise ObsError(f"event #{i} ({ev.get('name')!r}) "
                               f"is missing required key {key!r}")
        ph = ev["ph"]
        if ph not in _VALID_PHASES:
            raise ObsError(f"event #{i} has unknown phase {ph!r}")
        if not isinstance(ev["ts"], (int, float)):
            raise ObsError(f"event #{i} ts must be a number")
        track = (ev["pid"], ev["tid"])
        if ph == "X":
            if "dur" not in ev or not isinstance(ev["dur"], (int, float)):
                raise ObsError(f"X event #{i} ({ev['name']!r}) "
                               "needs a numeric dur")
            if ev["dur"] < 0:
                raise ObsError(f"X event #{i} has negative dur")
        elif ph == "B":
            open_spans.setdefault(track, []).append(ev["name"])
        elif ph == "E":
            stack = open_spans.get(track)
            if not stack:
                raise ObsError(f"E event #{i} ({ev['name']!r}) on track "
                               f"{track} closes nothing")
            opened = stack.pop()
            if opened != ev["name"]:
                raise ObsError(
                    f"E event #{i} closes {ev['name']!r} but "
                    f"{opened!r} is open on track {track}")
    leftovers = {t: s for t, s in open_spans.items() if s}
    if leftovers:
        track, stack = next(iter(leftovers.items()))
        raise ObsError(f"B event {stack[-1]!r} on track {track} "
                       "was never closed")
    return len(events)


def write_chrome(recorder: TraceRecorder | NullRecorder,
                 path_or_file: str | IO[str]) -> int:
    """Export, validate, and write the trace; returns the event count."""
    doc = to_chrome(recorder)
    count = validate(doc)
    if hasattr(path_or_file, "write"):
        json.dump(doc, path_or_file, indent=1)
    else:
        with open(path_or_file, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=1)
            f.write("\n")
    return count
