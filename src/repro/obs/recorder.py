"""The event recorder every simulator shares.

The course's evaluation hinges on students *seeing where time goes* —
gantt timelines of thread interleavings, cache hit/miss accounting,
context-switch overhead (§II theme 2, §IV). :class:`TraceRecorder` is
the shared substrate: a bounded ring buffer of span / instant / counter
events with logical-clock timestamps that every simulator appends to,
and that :mod:`repro.obs.chrome` / :mod:`repro.obs.report` render.

Storage is a numpy structured array, not a list of Python objects: each
event is one row of preallocated columns (phase, interned name id,
interned track id, interned category id, ts, dur, one numeric arg), and
labels live once in an id↔string table. Emitting an event writes a few
machine words; :class:`TraceEvent` objects are materialized only when
:meth:`TraceRecorder.events` is read. Hot loops skip even the per-event
call through two fast paths:

* **series handles** (:meth:`~TraceRecorder.span_series` /
  :meth:`~TraceRecorder.instant_series` /
  :meth:`~TraceRecorder.counter_series`) — the name/track/category are
  interned once and the per-event emit is a slot write or ring store;
* **bulk appends** (:meth:`~TraceRecorder.complete_run` /
  :meth:`~TraceRecorder.complete_batch` /
  :meth:`~TraceRecorder.instant_run`) — the ISA interpreter and the
  superblock JIT accumulate pending events in plain lists and land
  whole chunks with numpy slice assignments.

Per-category **policies** bound what always-on tracing costs:

* ``"all"`` — record every event (the default for uncategorised and
  timeline-shaped categories: ``isa``, ``threads``, ``heap``, ``mp``);
* ``N`` (an int) — keep 1 in every ``N`` X/i/C events of the category,
  counting the rest exactly in :attr:`~TraceRecorder.sampled_out`;
* ``"counters"`` — store nothing per event: instants fold to counts,
  spans to count + total duration, counter samples to their latest
  values, each materialized as a single event on read. This is the
  default for the high-rate counter categories ``ossim``, ``cache``
  and ``vm``.

``B``/``E`` span events bypass policies so begin/end nesting always
validates in the Chrome export.

Design rules, enforced by the oracle tests:

* recording **never** changes simulator behaviour — stats and final
  state are bit-identical with tracing on, off, or nulled;
* the disabled path is cheap: every hook guards on ``rec.enabled``
  before building event arguments, :data:`NULL_RECORDER` answers
  ``enabled = False`` to every caller (bench E15 bounds the residual
  of the *enabled* path at < 1.2× per hot loop);
* the buffer is bounded — a million-step run keeps the newest
  ``capacity`` events and counts the rest in
  :attr:`~TraceRecorder.dropped`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.errors import ObsError

#: event phases, mirroring the Chrome trace-event vocabulary
PH_BEGIN = "B"
PH_END = "E"
PH_COMPLETE = "X"
PH_INSTANT = "i"
PH_COUNTER = "C"

#: per-category policy names (ints mean "keep 1 in N")
POLICY_ALL = "all"
POLICY_COUNTERS = "counters"

#: categories whose per-event stream is counters-shaped fold by default
DEFAULT_POLICIES: dict[str, Any] = {
    "ossim": POLICY_COUNTERS,
    "cache": POLICY_COUNTERS,
    "vm": POLICY_COUNTERS,
}

_CODE = {PH_BEGIN: 0, PH_END: 1, PH_COMPLETE: 2, PH_INSTANT: 3,
         PH_COUNTER: 4}
_CHAR = "BEXiC"

# the ``akey`` column: an interned arg-key id (>= 0) pairs with the
# int64 ``aval`` column; the sentinels say "no args" / "args dict in
# the parallel object slot"
_ARGS_NONE = -1
_ARGS_OBJ = -2

#: one ring-buffer row — the whole storage story of the recorder
TRACE_DTYPE = np.dtype([
    ("ph", np.uint8),       # _CODE phase
    ("name", np.int32),     # interned event name
    ("track", np.int32),    # interned (pid, tid) pair
    ("cat", np.int32),      # interned category, -1 for None
    ("ts", np.float64),
    ("dur", np.float64),    # X events only
    ("akey", np.int32),     # interned arg key / _ARGS_NONE / _ARGS_OBJ
    ("aval", np.int64),     # numeric arg value for akey >= 0
])

# aggregate slot layout for the "counters" policy:
# [first_ts, last_ts, count, total_dur, values, counter_keys]
_A_FIRST, _A_LAST, _A_COUNT, _A_DUR, _A_VALUES, _A_KEYS = range(6)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event (phase vocabulary follows Chrome's).

    ``ts`` (and ``dur`` for complete events) are in whatever clock the
    emitting simulator runs on — simulated cycles, scheduler time units,
    or the recorder's own logical clock. Tracks are named by
    ``(pid, tid)`` pairs; the Chrome exporter maps each distinct name to
    a numbered track with a metadata label.
    """
    ph: str                      # B | E | X | i | C
    name: str
    ts: float
    pid: str = "repro"
    tid: str = "main"
    dur: float | None = None     # X events only
    cat: str | None = None
    args: dict[str, Any] | None = None


class _NullSeries:
    """The do-nothing series handle :class:`NullRecorder` hands out."""

    __slots__ = ()
    #: False → per-emit ``args`` would be discarded; hot paths may skip
    #: building the dict at all (folded and null series never store it)
    wants_args = False

    def add(self, ts, dur=1.0, args=None) -> None:
        pass

    def hit(self, ts, args=None) -> None:
        pass

    def sample(self, ts, values) -> None:
        pass


NULL_SERIES = _NullSeries()


class NullRecorder:
    """The zero-overhead recorder used when tracing is off.

    Every emitting method is a no-op and :attr:`enabled` is False, so
    instrumentation guarded by ``if rec.enabled:`` skips even building
    the event's arguments. Simulators accept ``recorder=None`` too;
    :func:`coalesce` normalises either spelling to this singleton.
    """

    enabled = False
    dropped = 0

    def now(self) -> int:
        return 0

    def instant(self, name, **kwargs) -> None:
        pass

    def begin(self, name, **kwargs) -> None:
        pass

    def end(self, name, **kwargs) -> None:
        pass

    def complete(self, name, **kwargs) -> None:
        pass

    def counter(self, name, values, **kwargs) -> None:
        pass

    def span_series(self, name, **kwargs) -> _NullSeries:
        return NULL_SERIES

    def instant_series(self, name, **kwargs) -> _NullSeries:
        return NULL_SERIES

    def counter_series(self, name, keys, **kwargs) -> _NullSeries:
        return NULL_SERIES

    def events(self) -> list[TraceEvent]:
        return []

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(())


#: the shared do-nothing recorder; ``recorder=None`` resolves to this
NULL_RECORDER = NullRecorder()


def coalesce(recorder: "TraceRecorder | NullRecorder | None"
             ) -> "TraceRecorder | NullRecorder":
    """Normalise a constructor's ``recorder`` argument (None → null)."""
    return NULL_RECORDER if recorder is None else recorder


class _RingSeries:
    """Record-all series: identity interned once, each emit one store."""

    __slots__ = ("_rec", "_nid", "_tkid", "_cid", "_obj", "_keys")
    wants_args = True

    def __init__(self, rec, nid, tkid, cid, obj, keys):
        self._rec = rec
        self._nid = nid
        self._tkid = tkid
        self._cid = cid
        self._obj = obj
        self._keys = keys

    def add(self, ts, dur=1.0, args=None) -> None:
        a = args if args is not None else self._obj
        self._rec._store(2, self._nid, self._tkid, self._cid, ts, dur,
                         _ARGS_NONE if a is None else _ARGS_OBJ, 0, a)

    def hit(self, ts, args=None) -> None:
        a = args if args is not None else self._obj
        self._rec._store(3, self._nid, self._tkid, self._cid, ts, 0.0,
                         _ARGS_NONE if a is None else _ARGS_OBJ, 0, a)

    def sample(self, ts, values) -> None:
        self._rec._store(4, self._nid, self._tkid, self._cid, ts, 0.0,
                         _ARGS_OBJ, 0, dict(zip(self._keys, values)))


class _SampledSeries(_RingSeries):
    """1-in-N series: identical to the ring series, minus skipped emits."""

    __slots__ = ("_cat", "_n")

    def __init__(self, rec, nid, tkid, cid, obj, keys, cat, n):
        super().__init__(rec, nid, tkid, cid, obj, keys)
        self._cat = cat
        self._n = n

    def add(self, ts, dur=1.0, args=None) -> None:
        if self._rec._take(self._cat, self._n):
            super().add(ts, dur, args)

    def hit(self, ts, args=None) -> None:
        if self._rec._take(self._cat, self._n):
            super().hit(ts, args)

    def sample(self, ts, values) -> None:
        if self._rec._take(self._cat, self._n):
            super().sample(ts, values)


class _FoldSpan:
    """Counters-policy span series: count + total duration, no storage."""

    __slots__ = ("_a",)
    wants_args = False

    def __init__(self, a):
        self._a = a

    def add(self, ts, dur=1.0, args=None) -> None:
        a = self._a
        if not a[2]:
            a[0] = ts
        a[1] = ts
        a[2] += 1
        a[3] += dur


class _FoldInstant:
    """Counters-policy instant series: a pure occurrence count."""

    __slots__ = ("_a",)
    wants_args = False

    def __init__(self, a):
        self._a = a

    def hit(self, ts, args=None) -> None:
        a = self._a
        if not a[2]:
            a[0] = ts
        a[1] = ts
        a[2] += 1


class _FoldCounter:
    """Counters-policy counter series: the latest cumulative values win."""

    __slots__ = ("_a",)
    wants_args = False

    def __init__(self, a):
        self._a = a

    def sample(self, ts, values) -> None:
        a = self._a
        a[1] = ts
        a[2] += 1
        a[4] = values


def _check_policy(policy) -> None:
    if policy in (POLICY_ALL, POLICY_COUNTERS):
        return
    if isinstance(policy, int) and not isinstance(policy, bool) \
            and policy >= 1:
        return
    raise ObsError(f"unknown trace policy {policy!r} "
                   "(expected 'all', 'counters', or a sample rate >= 1)")


class TraceRecorder:
    """Bounded structured-array ring of trace events with a logical clock.

    ``capacity`` bounds memory: once full, the oldest events are
    overwritten and counted in :attr:`dropped` (the newest events are
    the ones a profile wants). Timestamps are caller-supplied simulated
    time where the simulator has one; :meth:`now` hands out logical
    ticks for components that don't (the heap, memcheck).

    ``policies`` maps a category to ``"all"``, ``"counters"``, or an
    int sample rate (see the module docstring); the key ``"*"``
    replaces the built-in :data:`DEFAULT_POLICIES` as the fallback for
    every category not named explicitly.
    """

    enabled = True

    def __init__(self, *, capacity: int = 65536,
                 policies: dict[str, Any] | None = None) -> None:
        if capacity <= 0:
            raise ObsError("recorder capacity must be positive")
        self.capacity = capacity
        user = dict(policies or {})
        default = user.pop("*", None)
        if default is not None:
            _check_policy(default)
            self._default = default
            self._policies: dict[Any, Any] = user
        else:
            self._default = POLICY_ALL
            self._policies = {**DEFAULT_POLICIES, **user}
        for value in self._policies.values():
            _check_policy(value)

        buf = np.zeros(capacity, dtype=TRACE_DTYPE)
        self._buf = buf
        self._ph = buf["ph"]
        self._name = buf["name"]
        self._track = buf["track"]
        self._cat = buf["cat"]
        self._ts = buf["ts"]
        self._dur = buf["dur"]
        self._akey = buf["akey"]
        self._aval = buf["aval"]
        self._objs: list[Any] = [None] * capacity

        self._head = 0          # next write slot
        self._count = 0         # valid events in the buffer
        self._overwritten = 0   # ring-wrap losses
        self._clock = 0

        self._strings: list[str] = []
        self._sids: dict[str, int] = {}
        self._tracks: list[tuple[str, str]] = []
        self._tkids: dict[tuple[str, str], int] = {}

        self._agg: dict[tuple[int, int, int, int], list] = {}
        self._seq: dict[Any, int] = {}
        #: per-category exact count of events skipped by 1-in-N sampling
        self.sampled_out: dict[Any, int] = {}
        #: identity → handle memo for args-free series (handles are pure
        #: functions of identity, so simulators re-resolving the same
        #: series — a fresh Kernel per run, say — get the cached one)
        self._series_memo: dict = {}

    # -- accounting ---------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Events not in the buffer: ring overwrites + sampled-out."""
        skipped = self.sampled_out
        return self._overwritten + (sum(skipped.values()) if skipped else 0)

    # -- the logical clock --------------------------------------------------

    def now(self) -> int:
        """Advance and return the logical clock (for clock-less callers)."""
        self._clock += 1
        return self._clock

    # -- interning ----------------------------------------------------------

    def intern(self, s: str) -> int:
        """The id of ``s`` in the label table (stable for this recorder)."""
        i = self._sids.get(s)
        if i is None:
            i = len(self._strings)
            self._strings.append(s)
            self._sids[s] = i
        return i

    def intern_track(self, pid: str, tid: str) -> int:
        """The id of the ``(pid, tid)`` track pair."""
        key = (pid, tid)
        i = self._tkids.get(key)
        if i is None:
            i = len(self._tracks)
            self._tracks.append(key)
            self._tkids[key] = i
        return i

    def _cid(self, cat: str | None) -> int:
        return -1 if cat is None else self.intern(cat)

    # -- policies -----------------------------------------------------------

    def policy_for(self, cat: str | None):
        """The effective policy of one category."""
        return self._policies.get(cat, self._default)

    def _take(self, cat, n: int) -> bool:
        """Advance the category's sample sequence; True → record."""
        seq = self._seq.get(cat, 0)
        self._seq[cat] = seq + 1
        if seq % n:
            self.sampled_out[cat] = self.sampled_out.get(cat, 0) + 1
            return False
        return True

    def _slot(self, code: int, nid: int, tkid: int, cid: int) -> list:
        key = (code, nid, tkid, cid)
        a = self._agg.get(key)
        if a is None:
            a = [0.0, 0.0, 0, 0.0, None, None]
            self._agg[key] = a
        return a

    # -- scalar emitting ----------------------------------------------------

    def _store(self, code: int, nid: int, tkid: int, cid: int,
               ts: float, dur: float, akey: int, aval: int, obj) -> None:
        i = self._head
        self._ph[i] = code
        self._name[i] = nid
        self._track[i] = tkid
        self._cat[i] = cid
        self._ts[i] = ts
        self._dur[i] = dur
        self._akey[i] = akey
        self._aval[i] = aval
        self._objs[i] = obj
        i += 1
        self._head = 0 if i == self.capacity else i
        if self._count < self.capacity:
            self._count += 1
        else:
            self._overwritten += 1

    def instant(self, name: str, *, ts: float | None = None,
                pid: str = "repro", tid: str = "main",
                cat: str | None = None,
                args: dict | None = None) -> None:
        """A point-in-time event (a page fault, a context switch)."""
        if ts is None:
            ts = self.now()
        policy = self._policies.get(cat, self._default)
        if policy != POLICY_ALL:
            if policy == POLICY_COUNTERS:
                a = self._slot(3, self.intern(name),
                               self.intern_track(pid, tid), self._cid(cat))
                if not a[2]:
                    a[0] = ts
                a[1] = ts
                a[2] += 1
                return
            if not self._take(cat, policy):
                return
        self._store(3, self.intern(name), self.intern_track(pid, tid),
                    self._cid(cat), ts, 0.0,
                    _ARGS_NONE if args is None else _ARGS_OBJ, 0, args)

    def begin(self, name: str, *, ts: float | None = None,
              pid: str = "repro", tid: str = "main",
              cat: str | None = None, args: dict | None = None) -> None:
        """Open a span on a track; pair with :meth:`end` (same track).

        B/E events bypass sampling and folding so every opened span is
        closed in the buffer (the Chrome validator checks nesting).
        """
        self._store(0, self.intern(name), self.intern_track(pid, tid),
                    self._cid(cat), self.now() if ts is None else ts, 0.0,
                    _ARGS_NONE if args is None else _ARGS_OBJ, 0, args)

    def end(self, name: str, *, ts: float | None = None,
            pid: str = "repro", tid: str = "main",
            cat: str | None = None, args: dict | None = None) -> None:
        """Close the most recent open span with ``name`` on the track."""
        self._store(1, self.intern(name), self.intern_track(pid, tid),
                    self._cid(cat), self.now() if ts is None else ts, 0.0,
                    _ARGS_NONE if args is None else _ARGS_OBJ, 0, args)

    def complete(self, name: str, *, ts: float, dur: float,
                 pid: str = "repro", tid: str = "main",
                 cat: str | None = None, args: dict | None = None) -> None:
        """A closed span in one event (the bulk of simulator output)."""
        if dur < 0:
            raise ObsError(f"span {name!r} has negative duration {dur}")
        policy = self._policies.get(cat, self._default)
        if policy != POLICY_ALL:
            if policy == POLICY_COUNTERS:
                a = self._slot(2, self.intern(name),
                               self.intern_track(pid, tid), self._cid(cat))
                if not a[2]:
                    a[0] = ts
                a[1] = ts
                a[2] += 1
                a[3] += dur
                return
            if not self._take(cat, policy):
                return
        self._store(2, self.intern(name), self.intern_track(pid, tid),
                    self._cid(cat), ts, dur,
                    _ARGS_NONE if args is None else _ARGS_OBJ, 0, args)

    def counter(self, name: str, values: dict[str, float], *,
                ts: float | None = None, pid: str = "repro",
                tid: str = "main", cat: str | None = None) -> None:
        """A sampled counter set (hit/miss totals, live heap bytes)."""
        if ts is None:
            ts = self.now()
        policy = self._policies.get(cat, self._default)
        if policy != POLICY_ALL:
            if policy == POLICY_COUNTERS:
                a = self._slot(4, self.intern(name),
                               self.intern_track(pid, tid), self._cid(cat))
                a[1] = ts
                a[2] += 1
                a[4] = dict(values)
                return
            if not self._take(cat, policy):
                return
        self._store(4, self.intern(name), self.intern_track(pid, tid),
                    self._cid(cat), ts, 0.0, _ARGS_OBJ, 0, dict(values))

    # -- series handles (pre-resolved hot-path emitters) --------------------

    def span_series(self, name: str, *, pid: str = "repro",
                    tid: str = "main", cat: str | None = None,
                    args: dict | None = None):
        """A handle emitting X spans of one identity: ``h.add(ts, dur)``."""
        return self._series(2, name, pid, tid, cat, args, None)

    def instant_series(self, name: str, *, pid: str = "repro",
                       tid: str = "main", cat: str | None = None,
                       args: dict | None = None):
        """A handle emitting instants of one identity: ``h.hit(ts)``."""
        return self._series(3, name, pid, tid, cat, args, None)

    def counter_series(self, name: str, keys, *, pid: str = "repro",
                       tid: str = "main", cat: str | None = None):
        """A handle sampling one counter set: ``h.sample(ts, values)``
        with ``values`` a tuple aligned with ``keys``."""
        return self._series(4, name, pid, tid, cat, None, tuple(keys))

    def _series(self, code, name, pid, tid, cat, args, keys):
        memo_key = None
        if args is None:
            memo_key = (code, name, pid, tid, cat, keys)
            handle = self._series_memo.get(memo_key)
            if handle is not None:
                return handle
        policy = self._policies.get(cat, self._default)
        nid = self.intern(name)
        tkid = self.intern_track(pid, tid)
        cid = self._cid(cat)
        if policy == POLICY_COUNTERS:
            a = self._slot(code, nid, tkid, cid)
            if code == 2:
                handle = _FoldSpan(a)
            elif code == 3:
                handle = _FoldInstant(a)
            else:
                a[5] = keys
                handle = _FoldCounter(a)
        elif policy == POLICY_ALL:
            handle = _RingSeries(self, nid, tkid, cid, args, keys)
        else:
            handle = _SampledSeries(self, nid, tkid, cid, args, keys,
                                    cat, policy)
        if memo_key is not None:
            self._series_memo[memo_key] = handle
        return handle

    # -- bulk appends (the batch engines' fast path) ------------------------

    def complete_run(self, name_ids, ts0: float, *, track_id: int,
                     cat_id: int = -1, key_id: int = -1, vals=None,
                     dur: float = 1.0) -> None:
        """Append ``len(name_ids)`` X spans at consecutive timestamps.

        Span ``j`` gets name ``name_ids[j]``, ``ts = ts0 + j`` and the
        shared ``dur``; with ``key_id >= 0``, ``args = {key: vals[j]}``.
        This is the ISA interpreter's flush: one slice assignment per
        column instead of one Python object per instruction.
        """
        k = len(name_ids)
        if not k:
            return
        policy = self._policies.get(self._cat_of(cat_id), self._default)
        if policy == POLICY_COUNTERS:
            self._fold_run(2, name_ids, track_id, cat_id, ts0, dur)
            return
        nids = np.asarray(name_ids, dtype=np.int32)
        ts = ts0 + np.arange(k, dtype=np.float64)
        avals = None if vals is None else np.asarray(vals, dtype=np.int64)
        if policy != POLICY_ALL:
            mask = self._take_run(self._cat_of(cat_id), policy, k)
            nids, ts = nids[mask], ts[mask]
            if avals is not None:
                avals = avals[mask]
            if not len(ts):
                return
        self._bulk(2, nids, ts, dur, track_id, cat_id,
                   _ARGS_NONE if avals is None else key_id, avals)

    def instant_run(self, name_id: int, ts0: float, *, track_id: int,
                    cat_id: int = -1, key_id: int = -1, vals=None,
                    n: int | None = None) -> None:
        """Append ``n`` same-named instants at consecutive timestamps
        (``n`` defaults to ``len(vals)``)."""
        k = len(vals) if n is None else n
        if not k:
            return
        policy = self._policies.get(self._cat_of(cat_id), self._default)
        if policy == POLICY_COUNTERS:
            a = self._slot(3, name_id, track_id, cat_id)
            if not a[2]:
                a[0] = ts0
            a[1] = ts0 + k - 1
            a[2] += k
            return
        ts = ts0 + np.arange(k, dtype=np.float64)
        avals = None if vals is None else np.asarray(vals, dtype=np.int64)
        if policy != POLICY_ALL:
            mask = self._take_run(self._cat_of(cat_id), policy, k)
            ts = ts[mask]
            if avals is not None:
                avals = avals[mask]
            if not len(ts):
                return
        self._bulk(3, name_id, ts, 0.0, track_id, cat_id,
                   _ARGS_NONE if avals is None else key_id, avals)

    def complete_batch(self, name_ids, ts, durs, *, track_id: int,
                       cat_id: int = -1, key_id: int = -1,
                       vals=None) -> None:
        """Append X spans with explicit per-span timestamps/durations.

        The superblock JIT's flush: one entry per executed block, with
        ``vals`` (usually the per-block instruction counts) as the
        numeric arg.
        """
        k = len(name_ids)
        if not k:
            return
        policy = self._policies.get(self._cat_of(cat_id), self._default)
        if policy == POLICY_COUNTERS:
            for j in range(k):
                a = self._slot(2, name_ids[j], track_id, cat_id)
                if not a[2]:
                    a[0] = ts[j]
                a[1] = ts[j]
                a[2] += 1
                a[3] += durs[j]
            return
        nids = np.asarray(name_ids, dtype=np.int32)
        tsa = np.asarray(ts, dtype=np.float64)
        dura = np.asarray(durs, dtype=np.float64)
        avals = None if vals is None else np.asarray(vals, dtype=np.int64)
        if policy != POLICY_ALL:
            mask = self._take_run(self._cat_of(cat_id), policy, k)
            nids, tsa, dura = nids[mask], tsa[mask], dura[mask]
            if avals is not None:
                avals = avals[mask]
            if not len(tsa):
                return
        self._bulk(2, nids, tsa, dura, track_id, cat_id,
                   _ARGS_NONE if avals is None else key_id, avals)

    def _cat_of(self, cat_id: int) -> str | None:
        return None if cat_id < 0 else self._strings[cat_id]

    def _take_run(self, cat, n: int, k: int) -> np.ndarray:
        seq = self._seq.get(cat, 0)
        self._seq[cat] = seq + k
        mask = (np.arange(seq, seq + k) % n) == 0
        skipped = k - int(mask.sum())
        if skipped:
            self.sampled_out[cat] = self.sampled_out.get(cat, 0) + skipped
        return mask

    def _fold_run(self, code, name_ids, track_id, cat_id, ts0, dur) -> None:
        nids = np.asarray(name_ids, dtype=np.int32)
        uniq, first, counts = np.unique(nids, return_index=True,
                                        return_counts=True)
        last = len(nids) - 1 - np.unique(nids[::-1], return_index=True)[1]
        for nid, f, l, c in zip(uniq.tolist(), first.tolist(),
                                last.tolist(), counts.tolist()):
            a = self._slot(code, nid, track_id, cat_id)
            if not a[2]:
                a[0] = ts0 + f
            a[1] = ts0 + l
            a[2] += c
            a[3] += c * dur

    def _bulk(self, code, nids, ts, dur, tkid, cid, akey, avals) -> None:
        """Land ``len(ts)`` rows in the ring with slice assignments."""
        k = len(ts)
        cap = self.capacity
        if k >= cap:
            # only the newest ``cap`` survive; everything else is dropped
            self._overwritten += self._count + k - cap
            keep = slice(k - cap, None)
            ts = ts[keep]
            if isinstance(nids, np.ndarray):
                nids = nids[keep]
            if isinstance(dur, np.ndarray):
                dur = dur[keep]
            if avals is not None:
                avals = avals[keep]
            self._count = cap
            start = self._head = (self._head + k) % cap
            self._write(code, nids, ts, dur, tkid, cid, akey, avals,
                        start, cap)
            return
        spill = self._count + k - cap
        if spill > 0:
            self._overwritten += spill
            self._count = cap
        else:
            self._count += k
        self._write(code, nids, ts, dur, tkid, cid, akey, avals,
                    self._head, k)
        self._head = (self._head + k) % cap

    def _write(self, code, nids, ts, dur, tkid, cid, akey, avals,
               start, k) -> None:
        cap = self.capacity
        end = start + k
        if end <= cap:
            parts = ((slice(start, end), slice(0, k)),)
        else:
            split = cap - start
            parts = ((slice(start, cap), slice(0, split)),
                     (slice(0, end - cap), slice(split, k)))
        for dst, src in parts:
            self._ph[dst] = code
            self._name[dst] = nids[src] if isinstance(nids, np.ndarray) \
                else nids
            self._track[dst] = tkid
            self._cat[dst] = cid
            self._ts[dst] = ts[src]
            self._dur[dst] = dur[src] if isinstance(dur, np.ndarray) else dur
            self._akey[dst] = akey
            self._aval[dst] = 0 if avals is None else avals[src]

    # -- reading ------------------------------------------------------------

    def events(self) -> list[TraceEvent]:
        """Buffered events oldest first, then one event per folded series."""
        out: list[TraceEvent] = []
        count = self._count
        cap = self.capacity
        strings = self._strings
        tracks = self._tracks
        if count:
            start = (self._head - count) % cap
            idx = np.arange(start, start + count) % cap
            ph_, name_, track_ = self._ph, self._name, self._track
            cat_, ts_, dur_ = self._cat, self._ts, self._dur
            akey_, aval_, objs = self._akey, self._aval, self._objs
            for i in idx.tolist():
                code = ph_[i]
                akey = akey_[i]
                if akey == _ARGS_NONE:
                    args = None
                elif akey == _ARGS_OBJ:
                    args = objs[i]
                else:
                    args = {strings[akey]: int(aval_[i])}
                cid = cat_[i]
                pid, tid = tracks[track_[i]]
                out.append(TraceEvent(
                    _CHAR[code], strings[name_[i]], float(ts_[i]), pid, tid,
                    float(dur_[i]) if code == 2 else None,
                    strings[cid] if cid >= 0 else None, args))
        for (code, nid, tkid, cid), a in self._agg.items():
            if not a[2]:
                continue
            name = strings[nid]
            pid, tid = tracks[tkid]
            cat = strings[cid] if cid >= 0 else None
            if code == 4:
                values = a[4]
                if not isinstance(values, dict):
                    values = dict(zip(a[5], values))
                out.append(TraceEvent(PH_COUNTER, name, a[1], pid, tid,
                                      None, cat, dict(values)))
            elif code == 3:
                out.append(TraceEvent(PH_INSTANT, name, a[1], pid, tid,
                                      None, cat, {"count": a[2]}))
            else:
                out.append(TraceEvent(PH_COMPLETE, name, a[0], pid, tid,
                                      a[3], cat, {"count": a[2]}))
        return out

    def __len__(self) -> int:
        return self._count + sum(1 for a in self._agg.values() if a[2])

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def clear(self) -> None:
        """Drop everything recorded so far (capacity unchanged)."""
        self._head = 0
        self._count = 0
        self._overwritten = 0
        self._objs = [None] * self.capacity
        self._seq.clear()
        self.sampled_out.clear()
        for a in self._agg.values():
            # reset in place — live series handles keep their slots
            a[0] = a[1] = 0.0
            a[2] = 0
            a[3] = 0.0
            a[4] = None
