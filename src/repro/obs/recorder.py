"""The event recorder every simulator shares.

The course's evaluation hinges on students *seeing where time goes* —
gantt timelines of thread interleavings, cache hit/miss accounting,
context-switch overhead (§II theme 2, §IV). Before this module each
simulator grew its own ad-hoc instrumentation (``core.timeline`` only
knew :class:`~repro.core.machine.SimMachine`, ``OverheadBreakdown``
only the multiprocessing backend). :class:`TraceRecorder` is the shared
substrate: a bounded ring buffer of span / instant / counter events with
logical-clock timestamps that every simulator can append to, and that
:mod:`repro.obs.chrome` / :mod:`repro.obs.report` render.

Design rules, enforced by the oracle tests:

* recording **never** changes simulator behaviour — stats and final
  state are bit-identical with tracing on, off, or nulled;
* the disabled path is cheap: every hook guards on ``rec.enabled``
  before building event arguments, :data:`NULL_RECORDER` answers
  ``enabled = False`` to every caller, and the ISA hot loop resolves
  the choice once outside the loop (bench E15 bounds the residual);
* the buffer is bounded — a million-step run keeps the newest
  ``capacity`` events and counts the rest in :attr:`~TraceRecorder.dropped`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ObsError

#: event phases, mirroring the Chrome trace-event vocabulary
PH_BEGIN = "B"
PH_END = "E"
PH_COMPLETE = "X"
PH_INSTANT = "i"
PH_COUNTER = "C"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event (phase vocabulary follows Chrome's).

    ``ts`` (and ``dur`` for complete events) are in whatever clock the
    emitting simulator runs on — simulated cycles, scheduler time units,
    or the recorder's own logical clock. Tracks are named by
    ``(pid, tid)`` pairs; the Chrome exporter maps each distinct name to
    a numbered track with a metadata label.
    """
    ph: str                      # B | E | X | i | C
    name: str
    ts: float
    pid: str = "repro"
    tid: str = "main"
    dur: float | None = None     # X events only
    cat: str | None = None
    args: dict[str, Any] | None = None


class NullRecorder:
    """The zero-overhead recorder used when tracing is off.

    Every emitting method is a no-op and :attr:`enabled` is False, so
    instrumentation guarded by ``if rec.enabled:`` skips even building
    the event's arguments. Simulators accept ``recorder=None`` too;
    :func:`coalesce` normalises either spelling to this singleton.
    """

    enabled = False
    dropped = 0

    def now(self) -> int:
        return 0

    def instant(self, name, **kwargs) -> None:
        pass

    def begin(self, name, **kwargs) -> None:
        pass

    def end(self, name, **kwargs) -> None:
        pass

    def complete(self, name, **kwargs) -> None:
        pass

    def counter(self, name, values, **kwargs) -> None:
        pass

    def events(self) -> list[TraceEvent]:
        return []

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(())


#: the shared do-nothing recorder; ``recorder=None`` resolves to this
NULL_RECORDER = NullRecorder()


def coalesce(recorder: "TraceRecorder | NullRecorder | None"
             ) -> "TraceRecorder | NullRecorder":
    """Normalise a constructor's ``recorder`` argument (None → null)."""
    return NULL_RECORDER if recorder is None else recorder


class TraceRecorder:
    """Bounded ring buffer of trace events with a logical clock.

    ``capacity`` bounds memory: once full, the oldest events are
    overwritten and counted in :attr:`dropped` (the newest events are
    the ones a profile wants). Timestamps are caller-supplied simulated
    time where the simulator has one; :meth:`now` hands out logical
    ticks for components that don't (the heap, memcheck).
    """

    enabled = True

    def __init__(self, *, capacity: int = 65536) -> None:
        if capacity <= 0:
            raise ObsError("recorder capacity must be positive")
        self.capacity = capacity
        self._buf: list[TraceEvent | None] = [None] * capacity
        self._head = 0          # next write slot
        self._count = 0         # valid events in the buffer
        self.dropped = 0
        self._clock = 0

    # -- the logical clock --------------------------------------------------

    def now(self) -> int:
        """Advance and return the logical clock (for clock-less callers)."""
        self._clock += 1
        return self._clock

    # -- emitting -----------------------------------------------------------

    def _push(self, event: TraceEvent) -> None:
        self._buf[self._head] = event
        self._head = (self._head + 1) % self.capacity
        if self._count < self.capacity:
            self._count += 1
        else:
            self.dropped += 1

    def instant(self, name: str, *, ts: float | None = None,
                pid: str = "repro", tid: str = "main",
                cat: str | None = None,
                args: dict | None = None) -> None:
        """A point-in-time event (a page fault, a context switch)."""
        self._push(TraceEvent(PH_INSTANT, name,
                              self.now() if ts is None else ts,
                              pid, tid, None, cat, args))

    def begin(self, name: str, *, ts: float | None = None,
              pid: str = "repro", tid: str = "main",
              cat: str | None = None, args: dict | None = None) -> None:
        """Open a span on a track; pair with :meth:`end` (same track)."""
        self._push(TraceEvent(PH_BEGIN, name,
                              self.now() if ts is None else ts,
                              pid, tid, None, cat, args))

    def end(self, name: str, *, ts: float | None = None,
            pid: str = "repro", tid: str = "main",
            cat: str | None = None, args: dict | None = None) -> None:
        """Close the most recent open span with ``name`` on the track."""
        self._push(TraceEvent(PH_END, name,
                              self.now() if ts is None else ts,
                              pid, tid, None, cat, args))

    def complete(self, name: str, *, ts: float, dur: float,
                 pid: str = "repro", tid: str = "main",
                 cat: str | None = None, args: dict | None = None) -> None:
        """A closed span in one event (the bulk of simulator output)."""
        if dur < 0:
            raise ObsError(f"span {name!r} has negative duration {dur}")
        self._push(TraceEvent(PH_COMPLETE, name, ts, pid, tid, dur,
                              cat, args))

    def counter(self, name: str, values: dict[str, float], *,
                ts: float | None = None, pid: str = "repro",
                tid: str = "main", cat: str | None = None) -> None:
        """A sampled counter set (hit/miss totals, live heap bytes)."""
        self._push(TraceEvent(PH_COUNTER, name,
                              self.now() if ts is None else ts,
                              pid, tid, None, cat, dict(values)))

    # -- reading ------------------------------------------------------------

    def events(self) -> list[TraceEvent]:
        """Buffered events, oldest first."""
        if self._count < self.capacity:
            return [e for e in self._buf[:self._count] if e is not None]
        return ([e for e in self._buf[self._head:] if e is not None]
                + [e for e in self._buf[:self._head] if e is not None])

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events())

    def clear(self) -> None:
        """Drop everything recorded so far (capacity unchanged)."""
        self._buf = [None] * self.capacity
        self._head = 0
        self._count = 0
        self.dropped = 0


@dataclass
class TrackStats:
    """Aggregate of one (pid, tid) track, used by the report renderer."""
    events: int = 0
    spans: int = 0
    span_cycles: float = 0.0
    names: dict = field(default_factory=dict)
