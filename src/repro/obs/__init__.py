"""Unified observability: event tracing shared by every simulator.

Every simulator in the library accepts a ``recorder=`` keyword; pass one
:class:`TraceRecorder` to several of them and their events interleave on
a common timeline — per-instruction ISA spans next to kernel context
switches next to cache-miss counters. The trace renders two ways:

* :func:`to_chrome` / :func:`write_chrome` — Chrome trace-event JSON,
  loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``,
  one named track per ``(pid, tid)`` pair;
* :func:`profile_report` — a plain-text profile (hot instructions,
  span latencies, miss attribution) built on the same tables the rest
  of the library prints.

Tracing never changes simulator behaviour (the oracle tests pin
traced == untraced, bit for bit), and the disabled path is bounded by
bench E15: pass ``recorder=None`` (or nothing) and every hook reduces
to one attribute check against :data:`NULL_RECORDER`.

Try it from the shell::

    python -m repro trace all --chrome trace.json
"""

from repro.obs.chrome import to_chrome, validate, write_chrome
from repro.obs.recorder import (
    DEFAULT_POLICIES,
    NULL_RECORDER,
    POLICY_ALL,
    POLICY_COUNTERS,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
    coalesce,
)
from repro.obs.report import (
    final_counters,
    hot_instructions,
    instant_counts,
    miss_attribution,
    profile_report,
    span_latency,
)

__all__ = [
    "DEFAULT_POLICIES",
    "NULL_RECORDER",
    "POLICY_ALL",
    "POLICY_COUNTERS",
    "NullRecorder",
    "TraceEvent",
    "TraceRecorder",
    "coalesce",
    "final_counters",
    "hot_instructions",
    "instant_counts",
    "miss_attribution",
    "profile_report",
    "span_latency",
    "to_chrome",
    "validate",
    "write_chrome",
]
