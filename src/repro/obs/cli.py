"""``python -m repro trace`` — trace a demo workload and profile it.

Each demo drives one simulator with a shared :class:`TraceRecorder`
attached; ``all`` runs every demo into a single recorder so the tracks
sit side by side in the viewer. The profile report always prints;
``--chrome OUT.json`` additionally writes a validated Chrome trace::

    python -m repro trace isa
    python -m repro trace all --chrome trace.json --top 5
"""

from __future__ import annotations

from typing import Callable

from repro.obs.chrome import write_chrome
from repro.obs.recorder import TraceRecorder
from repro.obs.report import profile_report

USAGE = """\
usage: python -m repro trace DEMO [--chrome OUT.json] [--top N]
                                  [--sample N] [--counters-only]
                                  [--capacity K]

demos: {demos}

Runs the demo with a trace recorder attached to every simulator it
touches, prints the text profile, and (with --chrome) writes a
Perfetto-loadable Chrome trace-event JSON file.

Recording policy (see repro.obs.recorder):
  --sample N        keep 1 in N events per category (exact dropped
                    accounting; durable B/E nesting always kept)
  --counters-only   fold every category into aggregate counters —
                    near-zero storage, final values still exact
  --capacity K      ring-buffer capacity in events (default 65536)"""


# -- demo workloads (each returns a one-line summary) -----------------------

def _demo_isa(rec: TraceRecorder) -> str:
    from repro.isa import Machine, assemble
    src = """
    main:
      movl $0, %eax
      movl $20, %ecx
    loop:
      addl %ecx, %eax
      subl $1, %ecx
      cmpl $0, %ecx
      jne loop
      ret
    """
    result = Machine(assemble(src), recorder=rec).run()
    return f"isa: sum 1..20 = {result}"


def _demo_kernel(rec: TraceRecorder) -> str:
    from repro.ossim.kernel import Kernel
    from repro.ossim.programs import Compute, Exit, Fork, Print, Wait

    kernel = Kernel(timeslice=2, recorder=rec)
    prog = [Print("A"),
            Fork(child=[Compute(3), Print("c"), Exit(0)],
                 parent=[Compute(1), Wait()]),
            Print("B"), Exit(0)]
    kernel.spawn("demo", prog)
    kernel.run()
    text = "".join(t for _, t in kernel.output)
    return (f"kernel: output {text!r}, "
            f"{kernel.stats.context_switches} context switches")


def _demo_threads(rec: TraceRecorder) -> str:
    from repro.core import Lock, Mutex, SimMachine, Unlock, Work

    machine = SimMachine(num_cores=2, recorder=rec)
    mutex = Mutex("counter")

    def worker(rounds):
        for _ in range(rounds):
            yield Work(20)
            yield Lock(mutex)
            yield Work(5)
            yield Unlock(mutex)

    for i in range(3):
        machine.spawn(worker, 2, name=f"worker-{i}")
    makespan = machine.run()
    return f"threads: 3 workers on 2 cores, makespan {makespan:.0f} cycles"


def _demo_memory(rec: TraceRecorder) -> str:
    from repro.memory.cache import CacheConfig
    from repro.memory.multilevel import CacheHierarchy

    hierarchy = CacheHierarchy(
        [CacheConfig(num_lines=4, block_size=16, associativity=2),
         CacheConfig(num_lines=16, block_size=16, associativity=4)],
        recorder=rec)
    # a strided sweep plus a rescan: misses, then L1/L2 hits
    trace = [i * 16 for i in range(12)] * 2
    for addr in trace:
        hierarchy.access(addr)
    rates = ", ".join(f"{r:.0%}" for r in hierarchy.local_hit_rates())
    return f"memory: {len(trace)} accesses, local hit rates {rates}"


def _demo_vm(rec: TraceRecorder) -> str:
    from repro.vm.mmu import MMU
    from repro.vm.physical import PhysicalMemory

    mmu = MMU(PhysicalMemory(4, 256), page_size=256,
              tlb_entries=4, recorder=rec)
    mmu.create_process(1, 8)
    mmu.create_process(2, 8)
    for pid in (1, 2, 1):
        mmu.context_switch(pid)
        for vpn in range(3):
            mmu.access(vpn * 256 + 16)
            mmu.access(vpn * 256 + 32)   # same page: a TLB hit
    s = mmu.stats
    return (f"vm: {s.accesses} accesses, {s.page_faults} page faults, "
            f"TLB hit rate {mmu.tlb.stats.hit_rate:.0%}")


def _demo_heap(rec: TraceRecorder) -> str:
    from repro.clib.address_space import AddressSpace
    from repro.clib.memcheck import Memcheck

    mc = Memcheck(AddressSpace.standard(heap_size=4096), recorder=rec)
    a = mc.malloc(64)
    b = mc.malloc(32)
    mc.space.write(a, bytes(range(64)))
    mc.space.read(a, 16)
    mc.space.read(b, 4)          # uninitialised read
    mc.free(a)
    mc.free(a)                   # double free
    return (f"heap: {mc.heap.total_allocated} allocs, "
            f"{len(mc.all_findings())} memcheck findings")


DEMOS: dict[str, Callable[[TraceRecorder], str]] = {
    "isa": _demo_isa,
    "kernel": _demo_kernel,
    "threads": _demo_threads,
    "memory": _demo_memory,
    "vm": _demo_vm,
    "heap": _demo_heap,
}


def run(argv: list[str]) -> int:
    usage = USAGE.format(demos=", ".join([*DEMOS, "all"]))
    demo = None
    chrome_path = None
    top = 10
    sample = None
    counters_only = False
    capacity = 65536
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg in ("-h", "--help"):
            print(usage)
            return 0
        if arg == "--chrome":
            if not args:
                print("error: --chrome needs a file path")
                return 2
            chrome_path = args.pop(0)
        elif arg == "--top":
            if not args or not args[0].lstrip("-").isdigit():
                print("error: --top needs an integer")
                return 2
            top = int(args.pop(0))
        elif arg == "--sample":
            if not args or not args[0].isdigit() or int(args[0]) < 2:
                print("error: --sample needs an integer >= 2")
                return 2
            sample = int(args.pop(0))
        elif arg == "--counters-only":
            counters_only = True
        elif arg == "--capacity":
            if not args or not args[0].isdigit() or int(args[0]) < 1:
                print("error: --capacity needs a positive integer")
                return 2
            capacity = int(args.pop(0))
        elif arg.startswith("-"):
            print(f"error: unknown option {arg!r}\n{usage}")
            return 2
        elif demo is None:
            demo = arg
        else:
            print(f"error: unexpected argument {arg!r}\n{usage}")
            return 2
    if demo is None:
        print(usage)
        return 2
    if demo != "all" and demo not in DEMOS:
        print(f"error: unknown demo {demo!r}\n{usage}")
        return 2

    if counters_only and sample is not None:
        print("error: --sample and --counters-only are exclusive")
        return 2
    policies = None
    if counters_only:
        policies = {"*": "counters"}
    elif sample is not None:
        policies = {"*": sample}
    recorder = TraceRecorder(capacity=capacity, policies=policies)
    names = list(DEMOS) if demo == "all" else [demo]
    for name in names:
        print(DEMOS[name](recorder))
    print()
    print(profile_report(recorder, top=top))
    if chrome_path is not None:
        count = write_chrome(recorder, chrome_path)
        print(f"\nwrote {count} Chrome trace events to {chrome_path} "
              "(load in https://ui.perfetto.dev)")
    return 0
