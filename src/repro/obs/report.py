"""Text profile reports over a recorded trace.

The terminal-friendly rendering of what Perfetto would show: where the
simulated time went. Three lenses, all built on
:func:`~repro._util.format_table` like every bench harness:

* **hot spots** — top-N instruction addresses by executed count (the
  ISA machine's per-instruction spans carry their ``eip``);
* **span latency** — per event name: count, total and mean duration
  (context switches, syscalls, lock holds, worker dispatch…);
* **counters** — final value of every counter series (cache hit/miss
  totals, TLB accounting, live heap bytes) with miss attribution.

Events folded by the recorder's ``"counters"`` policy arrive as one
synthetic event per series whose ``args["count"]`` carries how many
emits it stands for; the span/instant tables weight by it so the
profile reads the same whether a category was stored or folded.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro._util import format_table
from repro.obs.recorder import NullRecorder, TraceRecorder


def hot_instructions(recorder: TraceRecorder | NullRecorder,
                     top: int = 10) -> list[tuple[int, str, int]]:
    """(eip, mnemonic, count) rows for the most-executed instructions."""
    counts: Counter[tuple[int, str]] = Counter()
    for ev in recorder.events():
        if ev.ph == "X" and ev.args and "eip" in ev.args:
            counts[(ev.args["eip"], ev.name)] += 1
    return [(eip, name, n)
            for (eip, name), n in counts.most_common(top)]


def span_latency(recorder: TraceRecorder | NullRecorder
                 ) -> list[tuple[str, str, int, float, float]]:
    """(track, name, count, total dur, mean dur) per span name."""
    totals: dict[tuple[str, str], list[float]] = defaultdict(list)
    weights: Counter[tuple[str, str]] = Counter()
    for ev in recorder.events():
        if ev.ph == "X":
            key = (f"{ev.pid}/{ev.tid}", ev.name)
            totals[key].append(ev.dur or 0.0)
            weights[key] += ev.args.get("count", 1) if ev.args else 1
    rows = []
    for (track, name), durs in sorted(totals.items()):
        total = sum(durs)
        count = weights[(track, name)]
        rows.append((track, name, count, total, total / count))
    rows.sort(key=lambda r: -r[3])
    return rows


def instant_counts(recorder: TraceRecorder | NullRecorder
                   ) -> list[tuple[str, str, int]]:
    """(track, name, count) for instants — faults, switches, signals."""
    counts: Counter[tuple[str, str]] = Counter()
    for ev in recorder.events():
        if ev.ph == "i":
            counts[(f"{ev.pid}/{ev.tid}", ev.name)] += \
                ev.args.get("count", 1) if ev.args else 1
    return [(track, name, n)
            for (track, name), n in counts.most_common()]


def final_counters(recorder: TraceRecorder | NullRecorder
                   ) -> dict[tuple[str, str], dict[str, float]]:
    """The last sampled value of every counter series, by (track, name)."""
    finals: dict[tuple[str, str], dict[str, float]] = {}
    for ev in recorder.events():
        if ev.ph == "C" and ev.args is not None:
            finals[(f"{ev.pid}/{ev.tid}", ev.name)] = dict(ev.args)
    return finals


def miss_attribution(recorder: TraceRecorder | NullRecorder
                     ) -> list[tuple[str, float, float, float]]:
    """(series, hits, misses, miss share) across all hit/miss counters.

    The "where do the misses come from" table: every counter series
    carrying ``hits``/``misses`` keys (caches, TLB) contributes a row;
    the share column attributes the total misses across series.
    """
    rows = []
    for (track, name), values in sorted(final_counters(recorder).items()):
        if "hits" in values and "misses" in values:
            rows.append((f"{track}:{name}",
                         float(values["hits"]), float(values["misses"])))
    total_misses = sum(r[2] for r in rows)
    return [(series, hits, misses,
             misses / total_misses if total_misses else 0.0)
            for series, hits, misses in rows]


def profile_report(recorder: TraceRecorder | NullRecorder, *,
                   top: int = 10) -> str:
    """The full text profile: hot spots, latencies, misses, instants."""
    sections = [f"trace profile — {len(recorder)} events buffered, "
                f"{recorder.dropped} dropped"]

    hot = hot_instructions(recorder, top)
    if hot:
        sections.append("hot instructions (by eip):")
        sections.append(format_table(
            ["eip", "mnemonic", "count"],
            [(f"{eip:#010x}", name, n) for eip, name, n in hot],
            align_right=[False, False, True]))

    spans = span_latency(recorder)
    if spans:
        sections.append("span latency:")
        sections.append(format_table(
            ["track", "span", "count", "total", "mean"],
            [(t, n, c, f"{tot:g}", f"{mean:.3g}")
             for t, n, c, tot, mean in spans[:top]],
            align_right=[False, False, True, True, True]))

    misses = miss_attribution(recorder)
    if misses:
        sections.append("miss attribution:")
        sections.append(format_table(
            ["series", "hits", "misses", "miss share"],
            [(s, f"{h:g}", f"{m:g}", f"{share:.1%}")
             for s, h, m, share in misses],
            align_right=[False, True, True, True]))

    instants = instant_counts(recorder)
    if instants:
        sections.append("instants:")
        sections.append(format_table(
            ["track", "event", "count"], instants[:top],
            align_right=[False, False, True]))

    return "\n\n".join(sections)
