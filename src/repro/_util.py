"""Small shared helpers used across subsystems."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_exact(n: int) -> int:
    """Return ``k`` such that ``2**k == n``; raise ValueError otherwise."""
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a power of two")
    return n.bit_length() - 1


def mask(width: int) -> int:
    """Bit mask of ``width`` low bits (``mask(8) == 0xFF``)."""
    if width < 0:
        raise ValueError("width must be non-negative")
    return (1 << width) - 1


def chunked(seq: Sequence, size: int) -> Iterator[Sequence]:
    """Yield consecutive slices of ``seq`` of at most ``size`` elements."""
    if size <= 0:
        raise ValueError("chunk size must be positive")
    for i in range(0, len(seq), size):
        yield seq[i:i + size]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 *, align_right: Sequence[bool] | None = None) -> str:
    """Render a plain-text table, the format every bench harness prints.

    ``align_right[i]`` right-justifies column *i* (defaults to left for
    strings and is typically set for numeric columns by callers).
    """
    str_rows = [[str(c) for c in row] for row in rows]
    cols = len(headers)
    for r in str_rows:
        if len(r) != cols:
            raise ValueError("row width does not match headers")
    widths = [len(h) for h in headers]
    for r in str_rows:
        for i, cell in enumerate(r):
            widths[i] = max(widths[i], len(cell))
    if align_right is None:
        align_right = [False] * cols

    def fmt(cells: Sequence[str]) -> str:
        out = []
        for i, cell in enumerate(cells):
            out.append(cell.rjust(widths[i]) if align_right[i] else cell.ljust(widths[i]))
        return "  ".join(out).rstrip()

    lines = [fmt(headers), "  ".join("-" * w for w in widths)]
    lines.extend(fmt(r) for r in str_rows)
    return "\n".join(lines)
