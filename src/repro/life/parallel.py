"""Lab 10: parallel Game of Life with pthreads-style threads.

"Students extend their lab 6 simulation to execute on multiple threads
in parallel using pthreads. Their solutions must partition the game grid
vertically or horizontally ... They use barriers to synchronize threads
between rounds and a mutex to protect shared state." (§III-B)

:class:`ParallelLife` is that program on the simulated machine: each
thread owns a strip of the grid, pays cycles proportional to its cells,
computes its strip into the next buffer, and meets the others at two
barriers per round (compute-done, swap-done). A mutex protects the
shared population counter. Knobs exist to *remove* the barrier (the
race-condition demo) and to vary lock granularity (bench E9's ablation).

A multiprocessing variant provides real parallel execution of the same
partitioned computation for wall-clock measurements (bench E3).
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Literal

import numpy as np

from repro.core.machine import (
    Access,
    BarrierWait,
    GilConfig,
    Lock,
    SimMachine,
    SyncCosts,
    Unlock,
    Work,
)
from repro.core.partition import GridRegion, partition_grid
from repro.core.sync import Barrier, Mutex
from repro.errors import ReproError
from repro.life.serial import EdgeMode, neighbor_counts, step, step_band

#: simulated cycles to compute one cell for one round
CELL_CYCLES = 1.0

StatLocking = Literal["none", "per-round", "per-row"]


def step_region(grid: np.ndarray, out: np.ndarray, region: GridRegion,
                mode: EdgeMode = "torus") -> int:
    """Compute one round for ``region`` into ``out``; returns live count.

    Reads the whole ``grid`` (neighbours cross region boundaries) but
    writes only its own cells — the Lab 10 kernel.
    """
    counts = neighbor_counts(grid, mode)[region.row_start:region.row_end,
                                         region.col_start:region.col_end]
    band = grid[region.row_start:region.row_end,
                region.col_start:region.col_end]
    result = (((band == 0) & (counts == 3))
              | ((band == 1) & ((counts == 2) | (counts == 3)))
              ).astype(np.uint8)
    out[region.row_start:region.row_end,
        region.col_start:region.col_end] = result
    return int(result.sum())


@dataclass
class RoundStats:
    """Shared state the mutex protects (population per round)."""
    population: int = 0


class ParallelLife:
    """The Lab 10 program, parameterised for the paper's experiments."""

    def __init__(self, grid: np.ndarray, *, threads: int,
                 num_cores: int | None = None,
                 orientation: str = "row",
                 mode: EdgeMode = "torus",
                 use_barrier: bool = True,
                 stat_locking: StatLocking = "per-round",
                 sync_costs: SyncCosts | None = None,
                 gil: GilConfig | None = None,
                 race_detector=None) -> None:
        if threads < 1:
            raise ReproError("need at least one thread")
        if stat_locking not in ("none", "per-round", "per-row"):
            raise ReproError(f"unknown stat locking {stat_locking!r}")
        self.current = grid.astype(np.uint8).copy()
        self.next = np.zeros_like(self.current)
        self.threads = threads
        self.mode: EdgeMode = mode
        self.use_barrier = use_barrier
        self.stat_locking: StatLocking = stat_locking
        self.regions = partition_grid(grid.shape[0], grid.shape[1],
                                      threads, orientation)
        # gil=GilConfig(...) runs the same program under the simulated
        # interpreter lock — the E19 ablation's "what if Lab 10 were
        # written in GIL-ful Python" arm; gil=None is the pthreads model
        self.machine = SimMachine(num_cores or threads,
                                  costs=sync_costs, gil=gil,
                                  race_detector=race_detector)
        self.barrier = Barrier(threads, name="round-barrier")
        self.stats_mutex = Mutex("stats.mutex")
        self.round_populations: list[int] = []
        self._round_stats = RoundStats()

    # -- the thread body ---------------------------------------------------------

    def _worker(self, index: int, region: GridRegion, rounds: int):
        leader = index == 0
        for _ in range(rounds):
            # compute my strip (cycles proportional to my cells)
            yield Work(region.cell_count * CELL_CYCLES)
            yield Access("grid", "read")
            live = step_region(self.current, self.next, region, self.mode)
            # each thread writes a disjoint strip: model as distinct vars
            yield Access(f"next-grid[{index}]", "write")

            # update the shared population under the chosen locking
            if self.stat_locking == "per-round":
                yield Lock(self.stats_mutex)
                self._round_stats.population += live
                yield Access("round-stats", "write")
                yield Unlock(self.stats_mutex)
            elif self.stat_locking == "per-row":
                rows = region.row_end - region.row_start
                per_row = live / max(1, rows)
                for _row in range(rows):
                    yield Lock(self.stats_mutex)
                    self._round_stats.population += per_row
                    yield Access("round-stats", "write")
                    yield Unlock(self.stats_mutex)

            if self.use_barrier:
                yield BarrierWait(self.barrier)     # everyone computed
            if leader:
                self.current, self.next = self.next, self.current
                if self.stat_locking == "none":
                    self._round_stats.population = int(self.current.sum())
                self.round_populations.append(
                    int(round(self._round_stats.population)))
                self._round_stats.population = 0
                yield Access("grid", "write")
            if self.use_barrier:
                yield BarrierWait(self.barrier)     # swap visible to all

    # -- driving --------------------------------------------------------------------

    def run(self, rounds: int) -> np.ndarray:
        """Run ``rounds`` with ``threads`` threads; returns the final grid."""
        if rounds < 0:
            raise ReproError("rounds cannot be negative")
        for i, region in enumerate(self.regions):
            self.machine.spawn(self._worker, i, region, rounds,
                               name=f"life-{i}")
        self.machine.run()
        return self.current

    @property
    def makespan(self) -> float:
        return self.machine.makespan


def run_serial_cycles(grid: np.ndarray, rounds: int) -> float:
    """Simulated cycles a one-thread run takes (the speedup baseline)."""
    return float(grid.size) * CELL_CYCLES * rounds


def simulated_scaling(grid: np.ndarray, rounds: int,
                      thread_counts: list[int], *,
                      orientation: str = "row",
                      sync_costs: SyncCosts | None = None,
                      gil: GilConfig | None = None
                      ) -> dict[int, float]:
    """Makespan at each thread count (cores == threads, the lab setup).

    Pass ``gil=GilConfig(...)`` for the interpreter-lock arm of the E19
    ablation: the same curve flattens at ~1× because only one thread
    computes at a time.
    """
    times: dict[int, float] = {}
    for k in thread_counts:
        game = ParallelLife(grid, threads=k, orientation=orientation,
                            sync_costs=sync_costs, gil=gil)
        game.run(rounds)
        times[k] = game.makespan
    return times


# ---------------------------------------------------------------------------
# Real parallelism: multiprocessing backends
# ---------------------------------------------------------------------------
#
# Two implementations of the same row-partitioned computation:
#
# * ``pickled`` — the naive port: a pool maps over bands, re-pickling
#   the full grid to every worker every generation. Kept as the E12
#   baseline; its speedup is dominated by serialization.
# * ``shared`` (default) — zero-copy: two grid-sized buffers live in
#   ``multiprocessing.shared_memory``; workers attach numpy views once
#   and step their row strips in place for all generations, alternating
#   which buffer is "current" by round parity and meeting at two
#   barriers per round (compute-done, swap-visible — mirroring the
#   simulated engine). Nothing grid-sized crosses a process boundary
#   after startup.

#: generous ceilings so a crashed worker turns into an error, not a hang
_BARRIER_TIMEOUT = 300.0
_JOIN_TIMEOUT = 600.0


def _run_serial(grid: np.ndarray, rounds: int, mode: EdgeMode) -> np.ndarray:
    current = grid.astype(np.uint8).copy()
    for _ in range(rounds):
        current = step(current, mode)
    return current


def _mp_band(args: tuple) -> tuple[int, np.ndarray]:
    grid, row_start, row_end, mode = args
    counts = neighbor_counts(grid, mode)[row_start:row_end]
    band = grid[row_start:row_end]
    result = (((band == 0) & (counts == 3))
              | ((band == 1) & ((counts == 2) | (counts == 3)))
              ).astype(np.uint8)
    return row_start, result


def run_parallel_pickled(grid: np.ndarray, rounds: int, *,
                         workers: int, mode: EdgeMode = "torus"
                         ) -> np.ndarray:
    """Row-partitioned rounds on a pool, re-pickling the grid per round.

    Semantically identical to the serial engine; wall-clock speedup is
    bounded by physical cores *and* by serializing the whole grid to
    every worker every generation — the overhead the shared-memory
    variant removes.
    """
    if workers < 1:
        raise ReproError("need at least one worker")
    if workers == 1:
        return _run_serial(grid, rounds, mode)
    current = grid.astype(np.uint8).copy()
    bands = partition_grid(grid.shape[0], grid.shape[1], workers, "row")
    pool = mp.Pool(processes=workers)
    try:
        for _ in range(rounds):
            tasks = [(current, b.row_start, b.row_end, mode)
                     for b in bands if b.row_end > b.row_start]
            out = np.zeros_like(current)
            for row_start, result in pool.map(_mp_band, tasks):
                out[row_start:row_start + result.shape[0]] = result
            current = out
        pool.close()
    except BaseException:
        pool.terminate()
        raise
    finally:
        pool.join()
    return current


# Top-level so it works under the "spawn" start method too.
def _shm_worker(names: tuple[str, str], shape: tuple[int, int],
                row_start: int, row_end: int, rounds: int,
                mode: EdgeMode, barrier) -> None:
    shm_a = shared_memory.SharedMemory(name=names[0])
    shm_b = shared_memory.SharedMemory(name=names[1])
    try:
        _shm_step_rounds(shm_a.buf, shm_b.buf, shape, row_start, row_end,
                         rounds, mode, barrier)
    finally:
        # the numpy views are scoped to the helper, so the buffers have
        # no exported pointers left and close() cannot raise BufferError
        shm_a.close()
        shm_b.close()


def _shm_step_rounds(buf_a, buf_b, shape, row_start, row_end, rounds,
                     mode, barrier) -> None:
    buffers = (np.ndarray(shape, dtype=np.uint8, buffer=buf_a),
               np.ndarray(shape, dtype=np.uint8, buffer=buf_b))
    for r in range(rounds):
        current = buffers[r % 2]
        nxt = buffers[(r + 1) % 2]
        step_band(current, nxt, row_start, row_end, mode)
        # two syncs per round, mirroring the simulated engine: after the
        # first, every strip of ``nxt`` is written; the second marks the
        # role swap (here just round parity) visible to everyone
        barrier.wait(_BARRIER_TIMEOUT)   # everyone computed
        barrier.wait(_BARRIER_TIMEOUT)   # swap visible to all


def run_parallel_shm(grid: np.ndarray, rounds: int, *,
                     workers: int, mode: EdgeMode = "torus") -> np.ndarray:
    """Zero-copy rounds: workers step shared-memory strips in place.

    Double-buffered grids in :mod:`multiprocessing.shared_memory`;
    each worker attaches once, then runs all generations over its rows
    with the O(band) :func:`~repro.life.serial.step_band` kernel and two
    barrier syncs per round. No per-generation pickling at all.

    The parent owns both segments and always ``close()``es and
    ``unlink()``s them, even on worker failure. Bit-identical to the
    serial engine (asserted by tests against every library pattern).
    """
    if workers < 1:
        raise ReproError("need at least one worker")
    if rounds < 0:
        raise ReproError("rounds cannot be negative")
    if mode not in ("torus", "bounded"):
        # fail fast in the parent: a worker raising this instead would
        # leave its siblings blocked at the barrier until timeout
        raise ReproError(f"unknown edge mode {mode!r}")
    seed = grid.astype(np.uint8)
    if rounds == 0:
        return seed.copy()
    bands = [b for b in partition_grid(grid.shape[0], grid.shape[1],
                                       workers, "row")
             if b.row_end > b.row_start]
    if workers == 1 or len(bands) == 1:
        return _run_serial(seed, rounds, mode)

    ctx = mp.get_context()
    barrier = ctx.Barrier(len(bands))
    shm_a = shared_memory.SharedMemory(create=True, size=seed.nbytes)
    shm_b = shared_memory.SharedMemory(create=True, size=seed.nbytes)
    procs: list = []
    buffers: tuple | None = None
    try:
        buffers = (np.ndarray(seed.shape, dtype=np.uint8, buffer=shm_a.buf),
                   np.ndarray(seed.shape, dtype=np.uint8, buffer=shm_b.buf))
        buffers[0][:] = seed
        buffers[1][:] = 0
        for i, b in enumerate(bands):
            p = ctx.Process(target=_shm_worker,
                            args=((shm_a.name, shm_b.name), seed.shape,
                                  b.row_start, b.row_end, rounds, mode,
                                  barrier),
                            name=f"life-shm-{i}")
            p.start()
            procs.append(p)
        for p in procs:
            p.join(_JOIN_TIMEOUT)
        if any(p.is_alive() or p.exitcode != 0 for p in procs):
            raise ReproError("shared-memory life worker failed")
        return buffers[rounds % 2].copy()
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
            p.join()
        # drop the numpy views before close(): a buffer with exported
        # pointers cannot be unmapped
        buffers = None
        shm_a.close()
        shm_a.unlink()
        shm_b.close()
        shm_b.unlink()


def run_parallel_backend(grid: np.ndarray, rounds: int, *,
                         workers: int, backend: str = "process",
                         mode: EdgeMode = "torus",
                         strict: bool = False) -> np.ndarray:
    """Row-partitioned rounds on a named executor backend.

    The same per-round band computation as :func:`run_parallel_pickled`,
    but the mapping runs on any :mod:`repro.core.backends` executor —
    ``serial`` / ``thread`` / ``process`` / ``subinterpreter`` — so E19
    can put the identical workload on every backend the host supports.
    The ``thread`` arm shares the grid by reference (no pickling), yet
    on a GIL-ful build still shows speedup ≈ 1 for this CPU-bound
    kernel: that contrast with ``process`` is the measured counterpart
    of the simulated-GIL ablation. Unavailable backends fall back per
    :func:`~repro.core.backends.get_backend` unless ``strict``.
    """
    from repro.core.backends import get_backend
    if workers < 1:
        raise ReproError("need at least one worker")
    if rounds < 0:
        raise ReproError("rounds cannot be negative")
    current = grid.astype(np.uint8).copy()
    if rounds == 0:
        return current
    bands = [b for b in partition_grid(grid.shape[0], grid.shape[1],
                                       workers, "row")
             if b.row_end > b.row_start]
    with get_backend(backend, workers, strict=strict) as chosen:
        for _ in range(rounds):
            tasks = [(current, b.row_start, b.row_end, mode)
                     for b in bands]
            out = np.zeros_like(current)
            for row_start, result in chosen.map(_mp_band, tasks):
                out[row_start:row_start + result.shape[0]] = result
            current = out
    return current


def run_parallel_mp(grid: np.ndarray, rounds: int, *,
                    workers: int, mode: EdgeMode = "torus",
                    method: str = "shared") -> np.ndarray:
    """Row-partitioned rounds with real OS-level parallelism.

    ``method="shared"`` (default) is the zero-copy shared-memory engine;
    ``method="pickled"`` is the per-round pool baseline; ``method=
    "thread"`` runs the same bands on a thread pool (GIL-bound on stock
    CPython — the negative control). All are semantically identical to
    the serial engine; wall-clock speedup is bounded by physical cores
    and, for threads, by the interpreter lock.
    """
    if method not in ("shared", "pickled", "thread"):
        raise ReproError(f"unknown method {method!r}; "
                         "valid methods: shared, pickled, thread")
    if method == "shared":
        return run_parallel_shm(grid, rounds, workers=workers, mode=mode)
    if method == "thread":
        return run_parallel_backend(grid, rounds, workers=workers,
                                    backend="thread", mode=mode)
    return run_parallel_pickled(grid, rounds, workers=workers, mode=mode)
