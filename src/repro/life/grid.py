"""The Game of Life grid and its lab file format.

Lab 6 "introduces students to more complex memory allocation in the form
of two-dimensional arrays for the game's grid. It also requires them to
read game parameters and an initial grid state from a file" (§III-B).

File format (the lab's layout)::

    rows
    cols
    iterations
    num_live_pairs
    r c          # one live-cell coordinate pair per line
    ...

Grids are numpy uint8 arrays (0 dead, 1 alive); both torus (wrap-around)
and bounded edge semantics are supported by the engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import ReproError


@dataclass
class LifeConfig:
    """Parsed game parameters from a lab input file."""
    rows: int
    cols: int
    iterations: int
    live_cells: list[tuple[int, int]]

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ReproError("grid dimensions must be positive")
        if self.iterations < 0:
            raise ReproError("iterations cannot be negative")
        for r, c in self.live_cells:
            if not (0 <= r < self.rows and 0 <= c < self.cols):
                raise ReproError(f"live cell ({r}, {c}) outside the grid")

    def make_grid(self) -> np.ndarray:
        grid = np.zeros((self.rows, self.cols), dtype=np.uint8)
        for r, c in self.live_cells:
            grid[r, c] = 1
        return grid


def parse_config(text: str) -> LifeConfig:
    """Parse the lab file format (comments with '#' are allowed)."""
    values: list[str] = []
    for line in text.splitlines():
        line = line.split("#", 1)[0].strip()
        if line:
            values.extend(line.split())
    if len(values) < 4:
        raise ReproError("life file needs rows, cols, iterations, count")
    try:
        rows, cols, iters, count = (int(v) for v in values[:4])
        coords = [int(v) for v in values[4:]]
    except ValueError as exc:
        raise ReproError(f"bad integer in life file: {exc}") from None
    if len(coords) != 2 * count:
        raise ReproError(
            f"expected {count} coordinate pairs, got {len(coords) // 2}")
    pairs = [(coords[2 * i], coords[2 * i + 1]) for i in range(count)]
    return LifeConfig(rows, cols, iters, pairs)


def load_config(path: str | Path) -> LifeConfig:
    """Read and parse a lab input file from disk."""
    return parse_config(Path(path).read_text())


def save_config(config: LifeConfig, path: str | Path) -> None:
    """Write a config back out in the lab file format."""
    lines = [str(config.rows), str(config.cols), str(config.iterations),
             str(len(config.live_cells))]
    lines += [f"{r} {c}" for r, c in config.live_cells]
    Path(path).write_text("\n".join(lines) + "\n")


def config_from_grid(grid: np.ndarray, iterations: int) -> LifeConfig:
    """Capture a live grid as a config (for saving checkpoints)."""
    rows, cols = grid.shape
    live = [(int(r), int(c)) for r, c in zip(*np.nonzero(grid))]
    return LifeConfig(rows, cols, iterations, live)


def random_grid(rows: int, cols: int, *, density: float = 0.3,
                seed: int = 0) -> np.ndarray:
    """A seeded random soup (the lab's stress-test input)."""
    if not 0.0 <= density <= 1.0:
        raise ReproError("density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    return (rng.random((rows, cols)) < density).astype(np.uint8)


def population(grid: np.ndarray) -> int:
    """Number of live cells."""
    return int(grid.sum())


def grids_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Exact cell-for-cell equality (shape included)."""
    return a.shape == b.shape and bool(np.array_equal(a, b))
