"""Lab 6: the serial Game of Life engine.

Two implementations: a vectorised numpy engine (the one everything else
uses — the HPC guides' "vectorize your loops") and a straightforward
pure-Python nested-loop version kept as the readable reference and
differential-test oracle, exactly the relationship between a student's
first C version and the optimised one.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.errors import ReproError

EdgeMode = Literal["torus", "bounded"]


def neighbor_counts(grid: np.ndarray, mode: EdgeMode = "torus"
                    ) -> np.ndarray:
    """Count the eight neighbours of every cell, vectorised."""
    if mode == "torus":
        total = np.zeros_like(grid, dtype=np.int32)
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                if dr == 0 and dc == 0:
                    continue
                total += np.roll(np.roll(grid, dr, axis=0), dc, axis=1)
        return total
    if mode == "bounded":
        padded = np.zeros((grid.shape[0] + 2, grid.shape[1] + 2),
                          dtype=np.int32)
        padded[1:-1, 1:-1] = grid
        total = np.zeros_like(grid, dtype=np.int32)
        for dr in (0, 1, 2):
            for dc in (0, 1, 2):
                if dr == 1 and dc == 1:
                    continue
                total += padded[dr:dr + grid.shape[0],
                                dc:dc + grid.shape[1]]
        return total
    raise ReproError(f"unknown edge mode {mode!r}")


def step(grid: np.ndarray, mode: EdgeMode = "torus") -> np.ndarray:
    """One synchronous round of Conway's rules (B3/S23)."""
    n = neighbor_counts(grid, mode)
    born = (grid == 0) & (n == 3)
    survives = (grid == 1) & ((n == 2) | (n == 3))
    return (born | survives).astype(np.uint8)


def band_neighbor_counts(grid: np.ndarray, row_start: int, row_end: int,
                         mode: EdgeMode = "torus") -> np.ndarray:
    """Neighbour counts for rows [row_start, row_end) only.

    Touches just the band plus one halo row each side, so a parallel
    worker pays O(band) instead of the O(grid) a full
    :func:`neighbor_counts` would cost it — the difference between a
    partitioned kernel and one that secretly redoes everyone's work.
    Agrees exactly with ``neighbor_counts(grid, mode)[row_start:row_end]``.
    """
    rows, cols = grid.shape
    if not 0 <= row_start <= row_end <= rows:
        raise ReproError("band rows out of range")
    height = row_end - row_start
    if height == 0:
        return np.zeros((0, cols), dtype=np.int32)
    padded = np.zeros((height + 2, cols + 2), dtype=np.int32)
    if mode == "torus":
        halo_rows = np.arange(row_start - 1, row_end + 1) % rows
        padded[:, 1:-1] = grid[halo_rows]
        padded[:, 0] = padded[:, -2]
        padded[:, -1] = padded[:, 1]
    elif mode == "bounded":
        lo = max(0, row_start - 1)
        hi = min(rows, row_end + 1)
        padded[lo - (row_start - 1):hi - (row_start - 1), 1:-1] = grid[lo:hi]
    else:
        raise ReproError(f"unknown edge mode {mode!r}")
    total = np.zeros((height, cols), dtype=np.int32)
    for dr in (0, 1, 2):
        for dc in (0, 1, 2):
            if dr == 1 and dc == 1:
                continue
            total += padded[dr:dr + height, dc:dc + cols]
    return total


def step_band(grid: np.ndarray, out: np.ndarray, row_start: int,
              row_end: int, mode: EdgeMode = "torus") -> None:
    """One round for rows [row_start, row_end) into ``out``, O(band).

    The strip-view kernel the shared-memory workers run in place every
    generation: reads the band plus its halo rows from ``grid``, writes
    only its own rows of ``out``, allocates nothing grid-sized.
    """
    n = band_neighbor_counts(grid, row_start, row_end, mode)
    band = grid[row_start:row_end]
    out[row_start:row_end] = (((band == 0) & (n == 3))
                              | ((band == 1) & ((n == 2) | (n == 3))
                                 )).astype(np.uint8)


def step_rows(grid: np.ndarray, out: np.ndarray, row_start: int,
              row_end: int, mode: EdgeMode = "torus") -> None:
    """Compute one round for rows [row_start, row_end) into ``out``.

    This is the kernel a Lab 10 thread runs on its region: it reads the
    neighbouring rows across its boundaries but writes only its own rows.
    """
    step_band(grid, out, row_start, row_end, mode)


def step_reference(grid: np.ndarray, mode: EdgeMode = "torus"
                   ) -> np.ndarray:
    """Nested-loop implementation — the differential-testing oracle."""
    rows, cols = grid.shape
    out = np.zeros_like(grid)
    for r in range(rows):
        for c in range(cols):
            live = 0
            for dr in (-1, 0, 1):
                for dc in (-1, 0, 1):
                    if dr == 0 and dc == 0:
                        continue
                    rr, cc = r + dr, c + dc
                    if mode == "torus":
                        live += grid[rr % rows, cc % cols]
                    elif 0 <= rr < rows and 0 <= cc < cols:
                        live += grid[rr, cc]
            if grid[r, c] == 1:
                out[r, c] = 1 if live in (2, 3) else 0
            else:
                out[r, c] = 1 if live == 3 else 0
    return out


def find_cycle(grid: np.ndarray, *, mode: EdgeMode = "torus",
               max_rounds: int = 1000) -> tuple[int, int] | None:
    """Detect when the simulation becomes periodic.

    Returns ``(start, period)`` — the first round at which a previously
    seen state recurs and the cycle length — or None if no repeat shows
    up within ``max_rounds``. Still lifes report period 1; a blinker
    (0, 2); a glider on a torus eventually cycles through translations.
    """
    seen: dict[bytes, int] = {}
    current = grid.astype(np.uint8)
    for round_no in range(max_rounds + 1):
        key = current.tobytes()
        if key in seen:
            first = seen[key]
            return first, round_no - first
        seen[key] = round_no
        current = step(current, mode)
    return None


class GameOfLife:
    """The Lab 6 simulation driver: rounds, population history."""

    def __init__(self, grid: np.ndarray, *, mode: EdgeMode = "torus") -> None:
        if grid.ndim != 2:
            raise ReproError("life grid must be 2-D")
        self.grid = grid.astype(np.uint8)
        self.mode: EdgeMode = mode
        self.round = 0
        self.population_history = [int(self.grid.sum())]

    def run(self, rounds: int) -> np.ndarray:
        for _ in range(rounds):
            self.grid = step(self.grid, self.mode)
            self.round += 1
            self.population_history.append(int(self.grid.sum()))
        return self.grid

    @property
    def population(self) -> int:
        return int(self.grid.sum())

    def is_extinct(self) -> bool:
        return self.population == 0
