"""Conway's Game of Life labs (CS 31 §III-B, Labs 6 and 10).

Grid + the lab input file format, a pattern library, the serial engine
(numpy, with a pure-Python oracle), the pthreads-style parallel engine
on the simulated multicore machine (barriers + mutex, with the
missing-barrier race demo and lock-granularity knobs), a real
multiprocessing variant, and the ParaVis-style terminal visualizer.
"""

from repro.life.grid import (
    LifeConfig,
    config_from_grid,
    grids_equal,
    load_config,
    parse_config,
    population,
    random_grid,
    save_config,
)
from repro.life.patterns import (
    make,
    pattern_cells,
    pattern_displacement,
    pattern_names,
    pattern_period,
    place,
)
from repro.life.serial import (
    GameOfLife,
    band_neighbor_counts,
    find_cycle,
    neighbor_counts,
    step,
    step_band,
    step_reference,
    step_rows,
)
from repro.life.parallel import (
    CELL_CYCLES,
    ParallelLife,
    run_parallel_backend,
    run_parallel_mp,
    run_parallel_pickled,
    run_parallel_shm,
    run_serial_cycles,
    simulated_scaling,
    step_region,
)
from repro.life.paravis import (
    animate,
    frame_sequence,
    population_sparkline,
    render,
    render_regions,
)

__all__ = [
    "LifeConfig", "parse_config", "load_config", "save_config",
    "config_from_grid", "random_grid", "population", "grids_equal",
    "pattern_names", "pattern_cells", "pattern_period",
    "pattern_displacement", "place", "make",
    "GameOfLife", "step", "step_reference", "step_rows", "step_band",
    "neighbor_counts", "band_neighbor_counts", "find_cycle",
    "ParallelLife", "step_region", "run_parallel_mp", "run_parallel_shm",
    "run_parallel_pickled", "run_parallel_backend", "simulated_scaling",
    "run_serial_cycles", "CELL_CYCLES",
    "render", "render_regions", "animate", "frame_sequence",
    "population_sparkline",
]
