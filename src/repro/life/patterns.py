"""Canonical Game of Life patterns for tests and demos.

Oscillators and spaceships with known periods let tests assert exact
behaviour (a blinker must return to itself after 2 rounds; a glider must
translate by (1, 1) every 4 rounds on a torus).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

#: name → (cells as (row, col) offsets, period, displacement per period)
_PATTERNS: dict[str, tuple[list[tuple[int, int]], int, tuple[int, int]]] = {
    "block": ([(0, 0), (0, 1), (1, 0), (1, 1)], 1, (0, 0)),
    "beehive": ([(0, 1), (0, 2), (1, 0), (1, 3), (2, 1), (2, 2)], 1, (0, 0)),
    "blinker": ([(0, 0), (0, 1), (0, 2)], 2, (0, 0)),
    "toad": ([(0, 1), (0, 2), (0, 3), (1, 0), (1, 1), (1, 2)], 2, (0, 0)),
    "beacon": ([(0, 0), (0, 1), (1, 0), (2, 3), (3, 2), (3, 3)], 2, (0, 0)),
    "glider": ([(0, 1), (1, 2), (2, 0), (2, 1), (2, 2)], 4, (1, 1)),
    "lwss": ([(0, 1), (0, 4), (1, 0), (2, 0), (2, 4),
              (3, 0), (3, 1), (3, 2), (3, 3)], 4, (0, -2)),
    "r-pentomino": ([(0, 1), (0, 2), (1, 0), (1, 1), (2, 1)], 0, (0, 0)),
}


def pattern_names() -> list[str]:
    """All registered pattern names, sorted."""
    return sorted(_PATTERNS)


def pattern_cells(name: str) -> list[tuple[int, int]]:
    """The (row, col) offsets of a pattern's live cells."""
    try:
        return list(_PATTERNS[name][0])
    except KeyError:
        raise ReproError(f"unknown pattern {name!r}") from None


def pattern_period(name: str) -> int:
    """Oscillator/spaceship period (0 = not periodic/chaotic)."""
    if name not in _PATTERNS:
        raise ReproError(f"unknown pattern {name!r}")
    return _PATTERNS[name][1]


def pattern_displacement(name: str) -> tuple[int, int]:
    """(rows, cols) the pattern moves per period (spaceships)."""
    if name not in _PATTERNS:
        raise ReproError(f"unknown pattern {name!r}")
    return _PATTERNS[name][2]


def place(grid: np.ndarray, name: str, top: int, left: int) -> np.ndarray:
    """Stamp a pattern onto a copy of ``grid`` at (top, left)."""
    out = grid.copy()
    rows, cols = grid.shape
    for dr, dc in pattern_cells(name):
        r, c = top + dr, left + dc
        if not (0 <= r < rows and 0 <= c < cols):
            raise ReproError(f"pattern {name!r} does not fit at "
                             f"({top}, {left})")
        out[r, c] = 1
    return out


def make(name: str, *, margin: int = 2) -> np.ndarray:
    """A minimal grid containing just the pattern, with a margin."""
    cells = pattern_cells(name)
    height = max(r for r, _ in cells) + 1
    width = max(c for _, c in cells) + 1
    grid = np.zeros((height + 2 * margin, width + 2 * margin),
                    dtype=np.uint8)
    return place(grid, name, margin, margin)
