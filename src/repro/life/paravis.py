"""ParaVis: visualizing the simulation, with thread regions in colour.

"We use the ParaVis [6] library to visualize the simulation, this time
showing the thread regions in different colors. Visualizing the
assignment in this way helps students to debug thread partitioning
problems." (§III-B, Lab 10)

This is the terminal edition: ASCII/ANSI frames of the grid, with each
thread's region tinted a distinct colour, plus a frame-sequence animator
that examples can print.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.core.partition import GridRegion
from repro.errors import ReproError
from repro.life.serial import EdgeMode, step

#: ANSI 256-colour codes, one per thread, recycled as needed
_REGION_COLORS = (196, 46, 21, 226, 201, 51, 208, 93,
                  118, 27, 199, 190, 45, 214, 165, 87)

LIVE_CHAR = "@"
DEAD_CHAR = "."


def render(grid: np.ndarray, *, live: str = LIVE_CHAR,
           dead: str = DEAD_CHAR) -> str:
    """Plain-text frame (the Lab 6 console output)."""
    if grid.ndim != 2:
        raise ReproError("can only render 2-D grids")
    return "\n".join("".join(live if cell else dead for cell in row)
                     for row in grid)


def _region_index(regions: list[GridRegion], r: int, c: int) -> int | None:
    for i, reg in enumerate(regions):
        if (reg.row_start <= r < reg.row_end
                and reg.col_start <= c < reg.col_end):
            return i
    return None


def render_regions(grid: np.ndarray, regions: list[GridRegion], *,
                   color: bool = True) -> str:
    """Frame with per-thread colouring (or digits when color=False).

    Without colour, each live cell shows the owning thread's index
    (mod 10) — still enough to spot a bad partition in a test.
    """
    if grid.ndim != 2:
        raise ReproError("can only render 2-D grids")
    lines = []
    for r in range(grid.shape[0]):
        parts = []
        for c in range(grid.shape[1]):
            owner = _region_index(regions, r, c)
            if grid[r, c]:
                ch = LIVE_CHAR if color else str((owner or 0) % 10)
                if color and owner is not None:
                    code = _REGION_COLORS[owner % len(_REGION_COLORS)]
                    ch = f"\x1b[38;5;{code}m{LIVE_CHAR}\x1b[0m"
                parts.append(ch)
            else:
                parts.append(DEAD_CHAR)
        lines.append("".join(parts))
    return "\n".join(lines)


def animate(grid: np.ndarray, rounds: int, *,
            mode: EdgeMode = "torus",
            regions: list[GridRegion] | None = None,
            color: bool = False) -> Iterator[str]:
    """Yield one rendered frame per round (frame 0 = initial state)."""
    current = grid.copy()
    for _ in range(rounds + 1):
        if regions is not None:
            yield render_regions(current, regions, color=color)
        else:
            yield render(current)
        current = step(current, mode)


def frame_sequence(frames: Iterable[str], *, separator: str = "\n---\n"
                   ) -> str:
    """Join frames for non-interactive output (tests, logs)."""
    return separator.join(frames)


def population_sparkline(history: list[int], *, width: int = 60) -> str:
    """A tiny population-over-time chart for the console."""
    if not history:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    hi = max(history) or 1
    sampled = history if len(history) <= width else [
        history[i * len(history) // width] for i in range(width)]
    return "".join(blocks[min(8, int(9 * v / (hi + 1)))] for v in sampled)
